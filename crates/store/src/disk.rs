//! Disk backend: one directory per namespace, one per snapshot, one framed
//! log per partition — the shape of the authors' HDFS layout, plus the
//! durability guarantees HDFS actually provides and a flat directory copy
//! does not.
//!
//! ```text
//! <root>/
//!   angellist__companies/
//!     snap-0000/
//!       COMMITTED            <- written before the dir is renamed in
//!       part-000.log         <- length+CRC32-framed records (frame.rs)
//!       part-001.log
//!       part-001.quarantine  <- checksum-failed payloads, never dropped
//!     .tmp-snap-0001/        <- uncommitted; removed at recovery
//! ```
//!
//! Durability protocol:
//!
//! * **Records** are framed (`frame::encode`) and written through the
//!   [`Vfs`] seam with no userspace buffering; [`DiskBackend::flush`]
//!   fsyncs every open handle. A crash can tear at most the last record
//!   of each partition file.
//! * **Snapshots** are committed by building `.tmp-snap-NNNN/` with a
//!   `COMMITTED` marker inside and atomically renaming it into place,
//!   then fsyncing the namespace directory. A snapshot either exists
//!   fully or not at all; ids are derived from the maximum committed id,
//!   never from directory counts.
//! * **Recovery** runs at every open (and on demand via
//!   [`DiskBackend::recover`]): uncommitted temp dirs are deleted,
//!   marker-less `snap-*` dirs are quarantined, and every partition log is
//!   scanned — torn tails truncated, checksum-failed records moved to a
//!   `.quarantine` sidecar (counted, never silently dropped). Cached
//!   writers for any repaired file are invalidated so post-recovery
//!   appends never go through a stale handle.

use crate::frame;
use crate::vfs::{RealFs, Vfs, VfsFile};
use parking_lot::Mutex;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Commit marker filename inside every committed snapshot directory.
const COMMITTED: &str = "COMMITTED";

/// Cumulative counts of what recovery found and repaired (the source of
/// the `store.recovery.*` telemetry counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Full recovery scans performed (one per open / explicit recover).
    pub scans: u64,
    /// Partition files scanned across all recoveries.
    pub partitions: u64,
    /// Checksum-clean records seen by recovery scans.
    pub records_ok: u64,
    /// Torn tails truncated.
    pub torn_tails: u64,
    /// Bytes removed by torn-tail truncation.
    pub torn_bytes: u64,
    /// Records (or unparseable remainders) moved to quarantine sidecars.
    pub quarantined_records: u64,
    /// Uncommitted snapshot dirs removed + marker-less dirs quarantined.
    pub uncommitted_snapshots: u64,
    /// Cached write handles invalidated because their file was repaired.
    pub writer_invalidations: u64,
}

struct Writers {
    open: HashMap<PathBuf, Box<dyn VfsFile>>,
    /// Files whose last append errored: the on-disk tail is suspect and
    /// must be repaired before the next append.
    poisoned: HashSet<PathBuf>,
}

/// Filesystem-backed framed-log store. All I/O goes through the [`Vfs`]
/// seam; see the module docs for the on-disk protocol.
pub struct DiskBackend {
    root: PathBuf,
    partitions: usize,
    vfs: Arc<dyn Vfs>,
    writers: Mutex<Writers>,
    /// Serializes snapshot commits (the temp-dir + rename protocol is not
    /// idempotent under races).
    commit_lock: Mutex<()>,
    recovery: Mutex<RecoveryStats>,
}

/// `/` is the namespace separator but not a legal path component.
fn encode_ns(ns: &str) -> String {
    ns.replace('/', "__")
}

/// Parse `snap-NNNN` into its id; anything else (temp dirs, quarantine
/// dirs, junk) is `None`.
fn parse_snap_id(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("snap-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Outcome of repairing one partition file.
#[derive(Default)]
struct FileRepair {
    records_ok: u64,
    quarantined: u64,
    torn_tail: bool,
    torn_bytes: u64,
    modified: bool,
}

impl DiskBackend {
    /// Open (creating if needed) a store rooted at `root` on the real
    /// filesystem, running recovery over any existing state.
    pub fn open(root: impl Into<PathBuf>, partitions: usize) -> io::Result<Self> {
        Self::open_with_vfs(root, partitions, Arc::new(RealFs))
    }

    /// Open on an explicit [`Vfs`] — the entry point fault-injection tests
    /// and the `--fail-at-op` CLI use.
    pub fn open_with_vfs(
        root: impl Into<PathBuf>,
        partitions: usize,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<Self> {
        let root = root.into();
        vfs.create_dir_all(&root)?;
        let backend = DiskBackend {
            root,
            partitions: partitions.max(1),
            vfs,
            writers: Mutex::new(Writers { open: HashMap::new(), poisoned: HashSet::new() }),
            commit_lock: Mutex::new(()),
            recovery: Mutex::new(RecoveryStats::default()),
        };
        backend.recover()?;
        Ok(backend)
    }

    fn ns_dir(&self, ns: &str) -> PathBuf {
        self.root.join(encode_ns(ns))
    }

    fn snap_dir(&self, ns: &str, snapshot: u32) -> PathBuf {
        self.ns_dir(ns).join(format!("snap-{snapshot:04}"))
    }

    fn part_path(&self, ns: &str, snapshot: u32, partition: usize) -> PathBuf {
        self.snap_dir(ns, snapshot)
            .join(format!("part-{:03}.log", partition % self.partitions))
    }

    /// Is this snapshot directory committed (exists with its marker)?
    fn is_committed(&self, ns: &str, snapshot: u32) -> bool {
        self.vfs.exists(&self.snap_dir(ns, snapshot).join(COMMITTED))
    }

    /// Committed snapshot ids of a namespace, sorted. `None` if the
    /// namespace directory does not exist.
    fn committed_ids(&self, ns: &str) -> Option<Vec<u32>> {
        let names = self.vfs.list_dir(&self.ns_dir(ns)).ok()?;
        let mut ids: Vec<u32> = names
            .iter()
            .filter_map(|n| parse_snap_id(n))
            .filter(|&id| self.is_committed(ns, id))
            .collect();
        ids.sort_unstable();
        Some(ids)
    }

    /// Commit one snapshot directory: temp dir + marker + atomic rename +
    /// directory fsync. Idempotent for already-committed ids.
    fn commit_snapshot(&self, ns: &str, id: u32) -> io::Result<()> {
        let _guard = self.commit_lock.lock();
        if self.is_committed(ns, id) {
            return Ok(());
        }
        let ns_dir = self.ns_dir(ns);
        self.vfs.create_dir_all(&ns_dir)?;
        let tmp = ns_dir.join(format!(".tmp-snap-{id:04}"));
        self.vfs.create_dir_all(&tmp)?;
        self.vfs.write_file(&tmp.join(COMMITTED), format!("{id}\n").as_bytes())?;
        self.vfs.rename(&tmp, &self.snap_dir(ns, id))?;
        self.vfs.sync_dir(&ns_dir)
    }

    /// Create namespace dir and snapshot 0 if absent.
    pub fn ensure_namespace(&self, ns: &str) -> io::Result<()> {
        self.commit_snapshot(ns, 0)
    }

    /// Open a fresh snapshot; returns its id — the max committed id plus
    /// one, so temp dirs, quarantined dirs and id gaps never skew it.
    pub fn new_snapshot(&self, ns: &str) -> io::Result<u32> {
        let next = self
            .committed_ids(ns)
            .and_then(|ids| ids.last().map(|&m| m + 1))
            .unwrap_or(0);
        self.commit_snapshot(ns, next)?;
        Ok(next)
    }

    /// Latest committed snapshot id, if the namespace has any.
    pub fn latest_snapshot(&self, ns: &str) -> Option<u32> {
        self.committed_ids(ns).and_then(|ids| ids.last().copied())
    }

    /// All committed snapshot ids in the namespace, sorted.
    pub fn snapshots(&self, ns: &str) -> Vec<u32> {
        self.committed_ids(ns).unwrap_or_default()
    }

    /// Append one record to a partition log (creating the namespace and
    /// snapshot 0 on demand; later snapshots must already be committed).
    /// Returns `Ok(false)` if the target snapshot does not exist.
    pub fn append(&self, ns: &str, snapshot: u32, partition: usize, line: &str) -> io::Result<bool> {
        if !self.is_committed(ns, snapshot) {
            if snapshot != 0 {
                return Ok(false);
            }
            self.commit_snapshot(ns, 0)?;
        }
        let path = self.part_path(ns, snapshot, partition);
        let framed = frame::encode(line.as_bytes());
        let mut writers = self.writers.lock();
        if writers.poisoned.contains(&path) {
            // A previous append to this file errored: its tail is suspect.
            // Repair (truncate the torn record) before writing anything
            // after it.
            let repair = self.repair_file(&path)?;
            let mut stats = self.recovery.lock();
            stats.partitions += 1;
            stats.records_ok += repair.records_ok;
            stats.torn_tails += u64::from(repair.torn_tail);
            stats.torn_bytes += repair.torn_bytes;
            stats.quarantined_records += repair.quarantined;
            drop(stats);
            writers.poisoned.remove(&path);
        }
        let handle = match writers.open.entry(path.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let opened = self.vfs.open_append(e.key())?;
                e.insert(opened)
            }
        };
        match handle.append(&framed) {
            Ok(()) => Ok(true),
            Err(e) => {
                // The write may have torn: drop the handle and poison the
                // path so the next append repairs before proceeding.
                writers.open.remove(&path);
                writers.poisoned.insert(path);
                Err(e)
            }
        }
    }

    /// Fsync every open partition handle (called before every read).
    pub fn flush(&self) -> io::Result<()> {
        let mut writers = self.writers.lock();
        let mut failed = Vec::new();
        let mut first_err = None;
        for (path, handle) in writers.open.iter_mut() {
            if let Err(e) = handle.sync() {
                failed.push(path.clone());
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        for path in failed {
            writers.open.remove(&path);
            writers.poisoned.insert(path);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Read every record of one partition. `None` if the snapshot is not
    /// committed; an absent partition file reads as empty. Tolerant of
    /// in-flight damage: stops at a torn tail, skips checksum-failed
    /// records (recovery, not reads, accounts for them).
    pub fn read_partition(
        &self,
        ns: &str,
        snapshot: u32,
        partition: usize,
    ) -> io::Result<Option<Vec<String>>> {
        self.flush()?;
        if !self.is_committed(ns, snapshot) {
            return Ok(None);
        }
        let path = self.part_path(ns, snapshot, partition);
        if !self.vfs.exists(&path) {
            return Ok(Some(Vec::new()));
        }
        let bytes = self.vfs.read(&path)?;
        let mut lines = Vec::new();
        let mut offset = 0;
        loop {
            match frame::step(&bytes, offset) {
                frame::Step::Ok { payload, next } => {
                    lines.push(String::from_utf8_lossy(&bytes[payload]).into_owned());
                    offset = next;
                }
                frame::Step::Corrupt { next, .. } => offset = next,
                frame::Step::Torn | frame::Step::Broken | frame::Step::End => break,
            }
        }
        Ok(Some(lines))
    }

    /// Partition count per snapshot.
    pub fn partition_count(&self) -> usize {
        self.partitions
    }

    /// All namespaces (decoded), sorted.
    pub fn namespaces(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for name in self.vfs.list_dir(&self.root)? {
            if name.starts_with('.') {
                continue;
            }
            if self.vfs.is_dir(&self.root.join(&name)) {
                out.push(name.replace("__", "/"));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Root directory (for diagnostics).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The [`Vfs`] this backend performs all I/O through — shared with
    /// derived on-disk structures (the column projection) so they inherit
    /// the same fault-injection seam.
    pub fn vfs_handle(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// Path of one partition's log file. Derived structures use its byte
    /// length as a staleness probe (the log is append-only, so content
    /// and length move together).
    pub fn partition_log_path(&self, ns: &str, snapshot: u32, partition: usize) -> PathBuf {
        self.part_path(ns, snapshot, partition)
    }

    /// Cumulative recovery statistics since this backend was constructed.
    pub fn recovery_stats(&self) -> RecoveryStats {
        *self.recovery.lock()
    }

    /// Run a full recovery scan: remove uncommitted temp snapshots,
    /// quarantine marker-less snapshot dirs, truncate torn partition
    /// tails, quarantine checksum-failed records, and invalidate any
    /// cached writer whose file was repaired. Safe (and cheap) on a clean
    /// store; runs automatically at open.
    pub fn recover(&self) -> io::Result<()> {
        let mut stats = RecoveryStats { scans: 1, ..RecoveryStats::default() };
        let mut repaired_files: Vec<PathBuf> = Vec::new();
        for ns_name in self.vfs.list_dir(&self.root)? {
            let ns_dir = self.root.join(&ns_name);
            if !self.vfs.is_dir(&ns_dir) {
                continue;
            }
            for entry in self.vfs.list_dir(&ns_dir)? {
                let entry_path = ns_dir.join(&entry);
                if entry.starts_with(".tmp-snap-") {
                    // A snapshot commit that never reached its rename.
                    self.vfs.remove_dir_all(&entry_path)?;
                    stats.uncommitted_snapshots += 1;
                    continue;
                }
                let Some(_id) = parse_snap_id(&entry) else { continue };
                if !self.vfs.exists(&entry_path.join(COMMITTED)) {
                    // A snap-* dir without its marker cannot have come from
                    // our commit protocol: quarantine rather than trust or
                    // delete it.
                    self.vfs.rename(&entry_path, &ns_dir.join(format!("quarantine-{entry}")))?;
                    self.vfs.sync_dir(&ns_dir)?;
                    stats.uncommitted_snapshots += 1;
                    continue;
                }
                for file in self.vfs.list_dir(&entry_path)? {
                    if !(file.starts_with("part-") && file.ends_with(".log")) {
                        continue;
                    }
                    let path = entry_path.join(&file);
                    let repair = self.repair_file(&path)?;
                    stats.partitions += 1;
                    stats.records_ok += repair.records_ok;
                    stats.torn_tails += u64::from(repair.torn_tail);
                    stats.torn_bytes += repair.torn_bytes;
                    stats.quarantined_records += repair.quarantined;
                    if repair.modified {
                        repaired_files.push(path);
                    }
                }
            }
        }
        // Post-recovery appends must not go through handles whose file
        // changed under them.
        let mut writers = self.writers.lock();
        for path in repaired_files {
            if writers.open.remove(&path).is_some() {
                stats.writer_invalidations += 1;
            }
            writers.poisoned.remove(&path);
        }
        drop(writers);
        let mut total = self.recovery.lock();
        total.scans += stats.scans;
        total.partitions += stats.partitions;
        total.records_ok += stats.records_ok;
        total.torn_tails += stats.torn_tails;
        total.torn_bytes += stats.torn_bytes;
        total.quarantined_records += stats.quarantined_records;
        total.uncommitted_snapshots += stats.uncommitted_snapshots;
        total.writer_invalidations += stats.writer_invalidations;
        Ok(())
    }

    /// Scan one partition file, truncating a torn tail and moving
    /// checksum-failed payloads to the `.quarantine` sidecar. Returns what
    /// it found; `modified` is set if the file's bytes changed.
    fn repair_file(&self, path: &Path) -> io::Result<FileRepair> {
        let mut out = FileRepair::default();
        if !self.vfs.exists(path) {
            return Ok(out);
        }
        let bytes = self.vfs.read(path)?;
        let mut clean: Vec<u8> = Vec::with_capacity(bytes.len());
        let mut quarantine: Vec<u8> = Vec::new();
        let mut offset = 0;
        loop {
            match frame::step(&bytes, offset) {
                frame::Step::Ok { next, .. } => {
                    clean.extend_from_slice(&bytes[offset..next]);
                    out.records_ok += 1;
                    offset = next;
                }
                frame::Step::Corrupt { payload, next } => {
                    quarantine.extend_from_slice(&bytes[payload]);
                    quarantine.push(b'\n');
                    out.quarantined += 1;
                    offset = next;
                }
                frame::Step::Torn => {
                    out.torn_tail = true;
                    out.torn_bytes += (bytes.len() - offset) as u64;
                    break;
                }
                frame::Step::Broken => {
                    // Framing is untrusted from here on: preserve the
                    // remainder in quarantine rather than guess at record
                    // boundaries.
                    quarantine.extend_from_slice(&bytes[offset..]);
                    quarantine.push(b'\n');
                    out.quarantined += 1;
                    break;
                }
                frame::Step::End => break,
            }
        }
        if !quarantine.is_empty() {
            let qpath = path.with_extension("quarantine");
            let mut handle = self.vfs.open_append(&qpath)?;
            handle.append(&quarantine)?;
            handle.sync()?;
        }
        if clean.len() != bytes.len() {
            out.modified = true;
            if bytes.starts_with(&clean) {
                // Pure tail damage: truncate in place.
                self.vfs.truncate(path, clean.len() as u64)?;
            } else {
                // Mid-file records were removed: rewrite atomically.
                let tmp = path.with_extension("log.rewrite");
                self.vfs.write_file(&tmp, &clean)?;
                self.vfs.rename(&tmp, path)?;
                if let Some(parent) = path.parent() {
                    self.vfs.sync_dir(parent)?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemFs;

    fn mem_backend(partitions: usize) -> (Arc<MemFs>, DiskBackend) {
        let fs = Arc::new(MemFs::new());
        let b = DiskBackend::open_with_vfs("/store", partitions, Arc::clone(&fs) as Arc<dyn Vfs>)
            .unwrap();
        (fs, b)
    }

    #[test]
    fn append_flush_read() {
        let (_fs, b) = mem_backend(2);
        assert!(b.append("a/b", 0, 0, "l1").unwrap());
        assert!(b.append("a/b", 0, 0, "l2").unwrap());
        assert!(b.append("a/b", 0, 1, "l3").unwrap());
        assert_eq!(b.read_partition("a/b", 0, 0).unwrap().unwrap(), vec!["l1", "l2"]);
        assert_eq!(b.read_partition("a/b", 0, 1).unwrap().unwrap(), vec!["l3"]);
    }

    #[test]
    fn missing_namespace_reads_none() {
        let (_fs, b) = mem_backend(2);
        assert!(b.read_partition("nope", 0, 0).unwrap().is_none());
        assert_eq!(b.latest_snapshot("nope"), None);
    }

    #[test]
    fn snapshot_lifecycle() {
        let (_fs, b) = mem_backend(1);
        b.append("ns", 0, 0, "v0").unwrap();
        assert_eq!(b.latest_snapshot("ns"), Some(0));
        let s1 = b.new_snapshot("ns").unwrap();
        assert_eq!(s1, 1);
        b.append("ns", 1, 0, "v1").unwrap();
        assert_eq!(b.read_partition("ns", 0, 0).unwrap().unwrap(), vec!["v0"]);
        assert_eq!(b.read_partition("ns", 1, 0).unwrap().unwrap(), vec!["v1"]);
        assert_eq!(b.snapshots("ns"), vec![0, 1]);
        // Appending to a snapshot that was never created is refused.
        assert!(!b.append("ns", 7, 0, "x").unwrap());
    }

    #[test]
    fn namespaces_decode_slashes() {
        let (_fs, b) = mem_backend(1);
        b.append("angellist/companies", 0, 0, "x").unwrap();
        b.append("twitter/profiles", 0, 0, "y").unwrap();
        assert_eq!(b.namespaces().unwrap(), vec!["angellist/companies", "twitter/profiles"]);
    }

    #[test]
    fn reopen_sees_existing_data() {
        let fs = Arc::new(MemFs::new());
        {
            let b = DiskBackend::open_with_vfs("/r", 2, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
            b.append("ns", 0, 0, "persisted").unwrap();
            b.flush().unwrap();
        }
        let b2 = DiskBackend::open_with_vfs("/r", 2, fs as Arc<dyn Vfs>).unwrap();
        assert_eq!(b2.read_partition("ns", 0, 0).unwrap().unwrap(), vec!["persisted"]);
    }

    #[test]
    fn real_fs_roundtrip_and_reopen() {
        let root = std::env::temp_dir()
            .join(format!("crowdnet-store-realfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let b = DiskBackend::open(&root, 2).unwrap();
            b.append("ns", 0, 0, "on real disk").unwrap();
            b.flush().unwrap();
            assert_eq!(
                b.read_partition("ns", 0, 0).unwrap().unwrap(),
                vec!["on real disk"]
            );
        }
        let b2 = DiskBackend::open(&root, 2).unwrap();
        assert_eq!(b2.read_partition("ns", 0, 0).unwrap().unwrap(), vec!["on real disk"]);
        assert_eq!(b2.recovery_stats().scans, 1);
        assert_eq!(b2.recovery_stats().torn_tails, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_ids_ignore_temp_quarantine_and_junk_dirs() {
        // The regression for `snapshot_count`: any `snap-*`-looking entry
        // used to count, so temp/quarantine dirs and gaps skewed new ids.
        let (fs, b) = mem_backend(1);
        b.append("ns", 0, 0, "x").unwrap();
        let ns_dir = Path::new("/store/ns");
        fs.create_dir_all(&ns_dir.join(".tmp-snap-0005")).unwrap();
        fs.create_dir_all(&ns_dir.join("quarantine-snap-0007")).unwrap();
        fs.create_dir_all(&ns_dir.join("snap-junk")).unwrap();
        assert_eq!(b.snapshots("ns"), vec![0]);
        assert_eq!(b.latest_snapshot("ns"), Some(0));
        assert_eq!(b.new_snapshot("ns").unwrap(), 1);
        // A committed id gap: next id is max+1, not count.
        b.commit_snapshot("ns", 5).unwrap();
        assert_eq!(b.new_snapshot("ns").unwrap(), 6);
        assert_eq!(b.snapshots("ns"), vec![0, 1, 5, 6]);
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let fs = Arc::new(MemFs::new());
        let part = Path::new("/r/ns/snap-0000/part-000.log");
        {
            let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
            b.append("ns", 0, 0, "keep-1").unwrap();
            b.append("ns", 0, 0, "keep-2").unwrap();
        }
        // Tear the tail: a half-written third record.
        let mut bytes = fs.bytes(part).unwrap();
        let torn = frame::encode(b"half-written-record");
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        fs.set_bytes(part, bytes.clone());

        let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
        let stats = b.recovery_stats();
        assert_eq!(stats.torn_tails, 1);
        assert_eq!(stats.torn_bytes, (torn.len() / 2) as u64);
        assert_eq!(stats.records_ok, 2);
        assert_eq!(stats.quarantined_records, 0);
        assert_eq!(b.read_partition("ns", 0, 0).unwrap().unwrap(), vec!["keep-1", "keep-2"]);
        // The file itself is clean again: appends work and a further
        // reopen finds nothing to repair.
        b.append("ns", 0, 0, "keep-3").unwrap();
        drop(b);
        let b2 = DiskBackend::open_with_vfs("/r", 1, fs as Arc<dyn Vfs>).unwrap();
        assert_eq!(b2.recovery_stats().torn_tails, 0);
        assert_eq!(
            b2.read_partition("ns", 0, 0).unwrap().unwrap(),
            vec!["keep-1", "keep-2", "keep-3"]
        );
    }

    #[test]
    fn recovery_quarantines_corrupt_records_never_drops_them() {
        let fs = Arc::new(MemFs::new());
        let part = Path::new("/r/ns/snap-0000/part-000.log");
        {
            let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
            b.append("ns", 0, 0, "good-1").unwrap();
            b.append("ns", 0, 0, "rot-me").unwrap();
            b.append("ns", 0, 0, "good-2").unwrap();
        }
        // Flip one payload byte of the middle record.
        let mut bytes = fs.bytes(part).unwrap();
        let first_len = frame::encode(b"good-1").len();
        bytes[first_len + frame::HEADER_LEN] ^= 0x01;
        fs.set_bytes(part, bytes);

        let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
        let stats = b.recovery_stats();
        assert_eq!(stats.quarantined_records, 1);
        assert_eq!(stats.records_ok, 2);
        assert_eq!(b.read_partition("ns", 0, 0).unwrap().unwrap(), vec!["good-1", "good-2"]);
        // The damaged payload survives in the sidecar.
        let q = fs.bytes(Path::new("/r/ns/snap-0000/part-000.quarantine")).unwrap();
        assert_eq!(q, b"sot-me\n");
    }

    #[test]
    fn recovery_removes_uncommitted_and_quarantines_markerless_snapshots() {
        let fs = Arc::new(MemFs::new());
        {
            let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
            b.append("ns", 0, 0, "x").unwrap();
        }
        // A commit that died before its rename, and a foreign marker-less dir.
        fs.create_dir_all(Path::new("/r/ns/.tmp-snap-0001")).unwrap();
        fs.write_file(Path::new("/r/ns/.tmp-snap-0001/COMMITTED"), b"1\n").unwrap();
        fs.create_dir_all(Path::new("/r/ns/snap-0002")).unwrap();
        fs.write_file(Path::new("/r/ns/snap-0002/part-000.log"), b"??").unwrap();

        let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
        assert_eq!(b.recovery_stats().uncommitted_snapshots, 2);
        assert!(!fs.exists(Path::new("/r/ns/.tmp-snap-0001")));
        assert!(!fs.exists(Path::new("/r/ns/snap-0002")));
        assert!(fs.is_dir(Path::new("/r/ns/quarantine-snap-0002")));
        assert_eq!(b.snapshots("ns"), vec![0]);
        // New ids continue from the committed max, not the junk.
        assert_eq!(b.new_snapshot("ns").unwrap(), 1);
    }

    #[test]
    fn live_recover_invalidates_cached_writers() {
        let fs = Arc::new(MemFs::new());
        let part = Path::new("/r/ns/snap-0000/part-000.log");
        let b = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&fs) as Arc<dyn Vfs>).unwrap();
        b.append("ns", 0, 0, "before").unwrap(); // caches a writer
        // Damage the file behind the cached handle's back.
        let mut bytes = fs.bytes(part).unwrap();
        bytes.extend_from_slice(b"0000");
        fs.set_bytes(part, bytes);
        b.recover().unwrap();
        let stats = b.recovery_stats();
        assert_eq!(stats.scans, 2); // open + explicit
        assert_eq!(stats.torn_tails, 1);
        assert_eq!(stats.writer_invalidations, 1);
        // Post-recovery append goes through a fresh handle at the repaired
        // offset: both records read back clean.
        b.append("ns", 0, 0, "after").unwrap();
        assert_eq!(b.read_partition("ns", 0, 0).unwrap().unwrap(), vec!["before", "after"]);
    }

    #[test]
    fn failed_append_poisons_then_self_repairs() {
        use crate::vfs::{FailpointFs, FaultPlan};
        let mem = Arc::new(MemFs::new());
        // Seed the store fault-free, then reopen through a vfs where every
        // write tears.
        let plan = FaultPlan { torn_write: 1.0, ..FaultPlan::none(3) };
        let clean = DiskBackend::open_with_vfs("/r", 1, Arc::clone(&mem) as Arc<dyn Vfs>).unwrap();
        clean.append("ns", 0, 0, "acked-before-fault").unwrap();
        drop(clean);
        let faulty: Arc<dyn Vfs> =
            Arc::new(FailpointFs::new(Arc::clone(&mem) as Arc<dyn Vfs>, plan));
        let b = DiskBackend::open_with_vfs("/r", 1, faulty).unwrap();
        // Every append tears; each error poisons, each retry repairs first.
        let mut failures = 0;
        for i in 0..5 {
            if b.append("ns", 0, 0, &format!("attempt-{i}")).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 5);
        // All torn tails were repaired before the next write: the acked
        // record is intact and nothing half-written is visible.
        drop(b);
        let b2 = DiskBackend::open_with_vfs("/r", 1, mem as Arc<dyn Vfs>).unwrap();
        assert_eq!(
            b2.read_partition("ns", 0, 0).unwrap().unwrap(),
            vec!["acked-before-fault"]
        );
        assert_eq!(b2.recovery_stats().quarantined_records, 0);
    }

    #[test]
    fn parse_snap_id_rejects_lookalikes() {
        assert_eq!(parse_snap_id("snap-0000"), Some(0));
        assert_eq!(parse_snap_id("snap-0123"), Some(123));
        assert_eq!(parse_snap_id("snap-12345"), Some(12345));
        assert_eq!(parse_snap_id(".tmp-snap-0001"), None);
        assert_eq!(parse_snap_id("quarantine-snap-0001"), None);
        assert_eq!(parse_snap_id("snap-"), None);
        assert_eq!(parse_snap_id("snap-junk"), None);
        assert_eq!(parse_snap_id("snapshot-1"), None);
    }
}
