//! The filesystem seam: every byte `DiskBackend` reads or writes goes
//! through the [`Vfs`] trait, so durability logic can be exercised against
//! a deterministic fault injector instead of hoping real disks fail on cue.
//!
//! Two production implementations:
//!
//! * [`RealFs`] — thin delegation to `std::fs`, with directory fsyncs for
//!   the rename-commit protocol.
//! * [`FailpointFs`] — wraps another `Vfs` and injects faults on a schedule
//!   derived purely from a seed and a monotonically increasing operation
//!   counter: torn writes (a prefix of the buffer lands, then the write
//!   errors), short reads (the file reads back truncated), `ENOSPC`
//!   (nothing lands), and a crash-point (after operation `k`, every
//!   further operation fails — the process is "dead" until [`FailpointFs::revive`]
//!   models a restart over the same on-disk state). Same seed →
//!   byte-identical fault schedule, which is what lets the recovery tests
//!   assert exact outcomes.
//!
//! [`MemFs`] backs tests that want fault injection without touching a real
//! disk. A lint rule (`vfs-only-io`) keeps the rest of `crates/store` from
//! bypassing the seam with direct `std::fs` mutation.

use parking_lot::Mutex;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open append handle. Implementations must write through on every
/// [`VfsFile::append`] (no hidden buffering) so the fault injector can
/// reason about exactly which bytes reached the "device".
pub trait VfsFile: Send {
    /// Append `buf` at the end of the file. On success all of `buf` is in
    /// the OS page cache; on error an arbitrary *prefix* may have landed
    /// (torn write).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file contents to stable storage (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem operations `DiskBackend` is allowed to perform.
///
/// Deliberately narrow: append-only file writes, whole-file reads, atomic
/// renames, directory listing/creation/removal, truncation. Anything the
/// store cannot express through this trait it must not do.
pub trait Vfs: Send + Sync {
    /// `mkdir -p`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Open `path` for appending, creating it (and nothing else) if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create/replace `path` with `contents` and sync it — used only for
    /// tiny commit markers and checkpoint blobs, never for record data.
    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Atomically rename `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncate `path` to `len` bytes and sync.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Remove one file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Remove a directory tree.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Sorted names of the entries directly under `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Sync the directory itself so renames/creations within it are durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Does the path exist (any kind)?
    fn exists(&self, path: &Path) -> bool;
    /// Is the path a directory?
    fn is_dir(&self, path: &Path) -> bool;
    /// Current length of the file in bytes. The column projection uses
    /// this as its cheap staleness probe against the JSON log, so it must
    /// reflect every byte `open_append` handles have written. The default
    /// reads the whole file; implementations override with a metadata
    /// lookup where one exists.
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.read(path).map(|b| b.len() as u64)
    }
}

/// `std::fs`-backed [`Vfs`]. This module is the one sanctioned home of
/// direct filesystem mutation inside `crates/store`.
pub struct RealFs;

struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(contents)?;
        f.sync_data()
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync is how POSIX makes a rename durable; platforms
        // where opening a directory fails get best-effort.
        match std::fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        std::fs::metadata(path).map(|m| m.len())
    }
}

/// Which faults a [`FailpointFs`] injects, and how often.
///
/// Probabilities are per *eligible* operation (writes for `torn_write` /
/// `enospc`, whole-file reads for `short_read`), drawn from an xorshift
/// stream seeded by `seed` — two plans with equal fields produce identical
/// schedules. `crash_at_op` kills the filesystem after that many
/// operations of any kind have started: the op itself may partially
/// apply, and everything after it errors until [`FailpointFs::revive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a write lands only a prefix and errors.
    pub torn_write: f64,
    /// Probability a read returns only a prefix of the file.
    pub short_read: f64,
    /// Probability a write fails with "no space" before any byte lands.
    pub enospc: f64,
    /// Operation index at which the simulated process dies, if any.
    pub crash_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base to tweak).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan { seed, torn_write: 0.0, short_read: 0.0, enospc: 0.0, crash_at_op: None }
    }

    /// A plan that only crashes at operation `k`.
    pub fn crash_at(seed: u64, k: u64) -> FaultPlan {
        FaultPlan { crash_at_op: Some(k), ..FaultPlan::none(seed) }
    }
}

/// Counts of every fault actually injected — the ground truth the
/// `store.recovery.*` counters are checked against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Writes that landed a strict prefix then errored (including the
    /// write interrupted by the crash-point, if any).
    pub torn_writes: u64,
    /// Reads that returned a strict prefix of the file.
    pub short_reads: u64,
    /// Writes rejected with no-space before any byte landed.
    pub enospc: u64,
    /// Whether the crash-point fired.
    pub crashed: bool,
    /// Operations refused because the crash-point had already fired.
    pub ops_after_crash: u64,
}

struct FailState {
    op: u64,
    rng: u64,
    crashed: bool,
    injected: InjectedFaults,
}

/// Plan + mutable schedule state, shared between the [`FailpointFs`] and
/// every file handle it has opened (handles consume the same op stream as
/// directory operations — the device doesn't care who issued the I/O).
struct FailCore {
    plan: FaultPlan,
    state: Mutex<FailState>,
}

impl FailCore {
    /// Advance the schedule by one operation. Returns `(roll, crash_now)`
    /// where `roll` is a uniform sample in `[0, 1)`.
    fn tick(&self) -> io::Result<(f64, bool)> {
        let mut s = self.state.lock();
        if s.crashed {
            s.injected.ops_after_crash += 1;
            return Err(fault_err("operation after simulated crash"));
        }
        // xorshift64*: cheap, deterministic, good enough for scheduling.
        s.rng ^= s.rng << 13;
        s.rng ^= s.rng >> 7;
        s.rng ^= s.rng << 17;
        let roll =
            (s.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let crash_now = self.plan.crash_at_op == Some(s.op);
        s.op += 1;
        if crash_now {
            s.crashed = true;
            s.injected.crashed = true;
        }
        Ok((roll, crash_now))
    }

    fn note(&self, f: impl FnOnce(&mut InjectedFaults)) {
        f(&mut self.state.lock().injected)
    }

    /// Deterministic cut point for a torn write/short read of `len` bytes:
    /// a strict prefix, derived from the same roll that triggered the
    /// fault (re-hashed so it is independent of the threshold comparison).
    fn cut(roll: f64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let scaled = (roll * 7919.0).fract();
        ((scaled * len as f64) as usize).min(len - 1)
    }
}

/// Marker in fault errors so tests (and the CLI) can tell injected faults
/// from real I/O problems.
pub const FAULT_MARKER: &str = "[failpoint]";

fn fault_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Other, format!("{FAULT_MARKER} {what}"))
}

/// Is this error one a [`FailpointFs`] injected (as opposed to a real one)?
pub fn is_injected_fault(e: &io::Error) -> bool {
    e.to_string().contains(FAULT_MARKER)
}

/// Deterministic fault-injecting [`Vfs`] wrapper. See [`FaultPlan`].
pub struct FailpointFs {
    inner: Arc<dyn Vfs>,
    core: Arc<FailCore>,
}

impl FailpointFs {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> FailpointFs {
        FailpointFs {
            inner,
            core: Arc::new(FailCore {
                plan,
                state: Mutex::new(FailState {
                    op: 0,
                    // SplitMix64 scramble so nearby seeds give unrelated
                    // streams; force odd to avoid the all-zero fixpoint.
                    rng: plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                    crashed: false,
                    injected: InjectedFaults::default(),
                }),
            }),
        }
    }

    /// Convenience: wrap the real filesystem.
    pub fn over_real(plan: FaultPlan) -> FailpointFs {
        FailpointFs::new(Arc::new(RealFs), plan)
    }

    /// Everything injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.core.state.lock().injected
    }

    /// Operations observed so far (for choosing crash points).
    pub fn ops(&self) -> u64 {
        self.core.state.lock().op
    }

    /// Has the simulated crash-point fired?
    pub fn crashed(&self) -> bool {
        self.core.state.lock().crashed
    }

    /// Clear the crashed flag — models the process restarting over the
    /// same on-disk state. The op counter and fault stream continue, but
    /// the crash-point does not re-fire.
    pub fn revive(&self) {
        self.core.state.lock().crashed = false;
    }
}

struct FailFile {
    inner: Box<dyn VfsFile>,
    core: Arc<FailCore>,
}

impl VfsFile for FailFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let (roll, crash_now) = self.core.tick()?;
        let plan = self.core.plan;
        if crash_now {
            // The crash interrupts this very write: a prefix lands.
            let cut = FailCore::cut(roll, buf.len());
            let _ = self.inner.append(&buf[..cut]);
            self.core.note(|i| i.torn_writes += 1);
            return Err(fault_err("crash during write"));
        }
        if roll < plan.enospc {
            self.core.note(|i| i.enospc += 1);
            return Err(fault_err("no space left on device"));
        }
        if roll < plan.enospc + plan.torn_write {
            let cut = FailCore::cut(roll, buf.len());
            self.inner.append(&buf[..cut])?;
            self.core.note(|i| i.torn_writes += 1);
            return Err(fault_err("torn write"));
        }
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during fsync"));
        }
        self.inner.sync()
    }
}

impl Vfs for FailpointFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during create_dir_all"));
        }
        self.inner.create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during open"));
        }
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FailFile { inner, core: Arc::clone(&self.core) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let (roll, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during read"));
        }
        let data = self.inner.read(path)?;
        if roll < self.core.plan.short_read && !data.is_empty() {
            let cut = FailCore::cut(roll, data.len());
            self.core.note(|i| i.short_reads += 1);
            return Ok(data[..cut].to_vec());
        }
        Ok(data)
    }

    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let (roll, crash_now) = self.core.tick()?;
        if crash_now {
            // Marker writes are tiny; model the crash as all-or-nothing
            // chosen by the roll (a real small write usually lands whole,
            // but recovery must not depend on that).
            if roll < 0.5 {
                let _ = self.inner.write_file(path, contents);
            }
            return Err(fault_err("crash during write_file"));
        }
        if roll < self.core.plan.enospc {
            self.core.note(|i| i.enospc += 1);
            return Err(fault_err("no space left on device"));
        }
        self.inner.write_file(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (roll, crash_now) = self.core.tick()?;
        if crash_now {
            // Rename is atomic: it either happened or it did not.
            if roll < 0.5 {
                let _ = self.inner.rename(from, to);
            }
            return Err(fault_err("crash during rename"));
        }
        self.inner.rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during truncate"));
        }
        self.inner.truncate(path, len)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during remove_file"));
        }
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during remove_dir_all"));
        }
        self.inner.remove_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during list_dir"));
        }
        self.inner.list_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during sync_dir"));
        }
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        // Metadata probes don't consume schedule slots: charging them
        // would make fault schedules depend on incidental checks. A dead
        // process sees nothing.
        !self.core.state.lock().crashed && self.inner.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        !self.core.state.lock().crashed && self.inner.is_dir(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let (_, crash_now) = self.core.tick()?;
        if crash_now {
            return Err(fault_err("crash during file_len"));
        }
        self.inner.file_len(path)
    }
}

/// In-memory [`Vfs`] for tests: a plain tree of directories and byte
/// vectors, no real disk involved. Renames are atomic under one lock.
pub struct MemFs {
    tree: Arc<Mutex<MemTree>>,
}

#[derive(Default)]
struct MemTree {
    dirs: std::collections::BTreeSet<PathBuf>,
    files: std::collections::BTreeMap<PathBuf, Vec<u8>>,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// Fresh empty filesystem.
    pub fn new() -> MemFs {
        MemFs { tree: Arc::new(Mutex::new(MemTree::default())) }
    }

    /// Raw bytes of one file (test inspection).
    pub fn bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.tree.lock().files.get(path).cloned()
    }

    /// Overwrite raw bytes (test corruption injection).
    pub fn set_bytes(&self, path: &Path, bytes: Vec<u8>) {
        self.tree.lock().files.insert(path.to_path_buf(), bytes);
    }
}

struct MemFile {
    tree: Arc<Mutex<MemTree>>,
    path: PathBuf,
}

impl VfsFile for MemFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut t = self.tree.lock();
        match t.files.get_mut(&self.path) {
            Some(v) => {
                v.extend_from_slice(buf);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "file removed")),
        }
    }
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Vfs for MemFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut t = self.tree.lock();
        let mut p = path.to_path_buf();
        loop {
            t.dirs.insert(p.clone());
            match p.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => p = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut t = self.tree.lock();
        t.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(MemFile { tree: Arc::clone(&self.tree), path: path.to_path_buf() }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.tree
            .lock()
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }
    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        self.tree.lock().files.insert(path.to_path_buf(), contents.to_vec());
        Ok(())
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut t = self.tree.lock();
        if t.dirs.contains(from) {
            // Move the directory and everything under it.
            let moved_dirs: Vec<PathBuf> =
                t.dirs.iter().filter(|d| d.starts_with(from)).cloned().collect();
            for d in &moved_dirs {
                t.dirs.remove(d);
            }
            for d in moved_dirs {
                let suffix = d.strip_prefix(from).map_err(io_other)?;
                t.dirs.insert(to.join(suffix));
            }
            let keys: Vec<PathBuf> =
                t.files.keys().filter(|f| f.starts_with(from)).cloned().collect();
            for k in keys {
                if let Some(v) = t.files.remove(&k) {
                    let suffix = k.strip_prefix(from).map_err(io_other)?;
                    t.files.insert(to.join(suffix), v);
                }
            }
            Ok(())
        } else if let Some(v) = t.files.remove(from) {
            t.files.insert(to.to_path_buf(), v);
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::NotFound, "rename source missing"))
        }
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut t = self.tree.lock();
        match t.files.get_mut(path) {
            Some(v) => {
                v.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.tree
            .lock()
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut t = self.tree.lock();
        t.dirs.retain(|d| !d.starts_with(path));
        t.files.retain(|f, _| !f.starts_with(path));
        Ok(())
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let t = self.tree.lock();
        if !t.dirs.contains(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such dir"));
        }
        let mut names: Vec<String> = t
            .dirs
            .iter()
            .filter(|d| d.parent() == Some(path))
            .chain(t.files.keys().filter(|f| f.parent() == Some(path)))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        names.dedup();
        Ok(names)
    }
    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
    fn exists(&self, path: &Path) -> bool {
        let t = self.tree.lock();
        t.dirs.contains(path) || t.files.contains_key(path)
    }
    fn is_dir(&self, path: &Path) -> bool {
        self.tree.lock().dirs.contains(path)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.tree
            .lock()
            .files
            .get(path)
            .map(|v| v.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }
}

fn io_other(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::Other, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_ops(plan: FaultPlan, n: usize) -> Vec<String> {
        // Drive an identical op sequence and record what happened.
        let mem = Arc::new(MemFs::new());
        mem.create_dir_all(Path::new("/r")).unwrap();
        let fs = FailpointFs::new(mem, plan);
        let mut log = Vec::new();
        let mut file = None;
        for i in 0..n {
            let r: io::Result<()> = match i % 3 {
                0 => {
                    if file.is_none() {
                        match fs.open_append(Path::new("/r/f.log")) {
                            Ok(f) => {
                                file = Some(f);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    } else {
                        file.as_mut().unwrap().append(format!("rec-{i}-padding-padding").as_bytes())
                    }
                }
                1 => file.as_mut().map(|f| f.append(b"xyzzy-abcde-01234")).unwrap_or(Ok(())),
                _ => fs.read(Path::new("/r/f.log")).map(|_| ()),
            };
            log.push(match r {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("err:{e}"),
            });
        }
        log
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            seed: 77,
            torn_write: 0.3,
            short_read: 0.3,
            enospc: 0.1,
            crash_at_op: Some(20),
        };
        assert_eq!(plan_ops(plan, 40), plan_ops(plan, 40));
        // And a different seed differs somewhere.
        let other = FaultPlan { seed: 78, ..plan };
        assert_ne!(plan_ops(other, 40), plan_ops(plan, 40));
    }

    #[test]
    fn crash_point_kills_all_later_ops() {
        let mem = Arc::new(MemFs::new());
        mem.create_dir_all(Path::new("/r")).unwrap();
        let fs = FailpointFs::new(mem, FaultPlan::crash_at(1, 2));
        fs.create_dir_all(Path::new("/r/a")).unwrap(); // op 0
        fs.create_dir_all(Path::new("/r/b")).unwrap(); // op 1
        assert!(fs.create_dir_all(Path::new("/r/c")).is_err()); // op 2: crash
        assert!(fs.crashed());
        let e = fs.read(Path::new("/r/x")).unwrap_err();
        assert!(is_injected_fault(&e));
        assert!(fs.injected().crashed);
        assert!(fs.injected().ops_after_crash >= 1);
        // Revival restores service over the same state.
        fs.revive();
        assert!(fs.is_dir(Path::new("/r/b")));
    }

    #[test]
    fn torn_write_lands_a_strict_prefix() {
        let mem = Arc::new(MemFs::new());
        mem.create_dir_all(Path::new("/r")).unwrap();
        let mem2 = Arc::clone(&mem);
        let fs = FailpointFs::new(mem, FaultPlan { torn_write: 1.0, ..FaultPlan::none(5) });
        let mut f = fs.open_append(Path::new("/r/f")).unwrap();
        let payload = b"0123456789abcdef0123456789abcdef";
        let e = f.append(payload).unwrap_err();
        assert!(is_injected_fault(&e));
        let landed = mem2.bytes(Path::new("/r/f")).unwrap();
        assert!(landed.len() < payload.len());
        assert_eq!(&payload[..landed.len()], &landed[..]);
        assert_eq!(fs.injected().torn_writes, 1);
    }

    #[test]
    fn enospc_lands_nothing() {
        let mem = Arc::new(MemFs::new());
        mem.create_dir_all(Path::new("/r")).unwrap();
        let mem2 = Arc::clone(&mem);
        let fs = FailpointFs::new(mem, FaultPlan { enospc: 1.0, ..FaultPlan::none(5) });
        let mut f = fs.open_append(Path::new("/r/f")).unwrap();
        assert!(f.append(b"should not land").is_err());
        assert_eq!(mem2.bytes(Path::new("/r/f")).unwrap(), Vec::<u8>::new());
        assert_eq!(fs.injected().enospc, 1);
    }

    #[test]
    fn short_read_returns_prefix() {
        let mem = Arc::new(MemFs::new());
        mem.create_dir_all(Path::new("/r")).unwrap();
        mem.set_bytes(Path::new("/r/f"), b"full file contents here".to_vec());
        let fs = FailpointFs::new(mem, FaultPlan { short_read: 1.0, ..FaultPlan::none(9) });
        let got = fs.read(Path::new("/r/f")).unwrap();
        assert!(got.len() < 23);
        assert_eq!(&b"full file contents here"[..got.len()], &got[..]);
        assert_eq!(fs.injected().short_reads, 1);
    }

    #[test]
    fn memfs_rename_moves_trees_atomically() {
        let fs = MemFs::new();
        fs.create_dir_all(Path::new("/r/.tmp-snap-0001")).unwrap();
        fs.write_file(Path::new("/r/.tmp-snap-0001/part-000.log"), b"data").unwrap();
        fs.rename(Path::new("/r/.tmp-snap-0001"), Path::new("/r/snap-0001")).unwrap();
        assert!(fs.is_dir(Path::new("/r/snap-0001")));
        assert!(!fs.exists(Path::new("/r/.tmp-snap-0001")));
        assert_eq!(fs.read(Path::new("/r/snap-0001/part-000.log")).unwrap(), b"data");
        assert_eq!(fs.list_dir(Path::new("/r/snap-0001")).unwrap(), vec!["part-000.log"]);
    }
}
