//! Record framing for the partition logs: `LLLLLLLL CCCCCCCC payload\n`.
//!
//! Every record in a partition file is one line carrying an 18-byte header
//! — the payload length and its CRC32 (IEEE), both as fixed-width lowercase
//! hex — followed by the payload bytes and a terminating newline. The
//! redundancy makes three failure classes distinguishable at scan time:
//!
//! * **torn tail** — the file ends mid-record (header incomplete, payload
//!   shorter than the declared length, or the final newline missing):
//!   the crash interrupted the last append; everything before the torn
//!   record is intact and the tail is safe to truncate.
//! * **corrupt record** — the frame structure is intact (length matches,
//!   newline where expected) but the CRC does not: bytes rotted in place;
//!   the record is quarantined and the scan continues at the next frame.
//! * **broken framing** — the header is not hex or the declared length
//!   points past a non-newline byte: offsets after this point cannot be
//!   trusted, so the remainder is quarantined wholesale and the file
//!   truncated at the last good frame boundary.
//!
//! The distinction matters because only the first class is expected under
//! a clean crash model (a torn final `write`); the other two indicate
//! external corruption and are counted separately by recovery.

/// Header bytes preceding every payload: 8 hex (len) + space + 8 hex (crc)
/// + space.
pub const HEADER_LEN: usize = 18;

/// CRC32 (IEEE 802.3, reflected) over `bytes` — the checksum HDFS uses per
/// block, here applied per record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frame one payload: header + payload + newline, ready to append.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 1);
    out.extend_from_slice(format!("{:08x} {:08x} ", payload.len(), crc32(payload)).as_bytes());
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// One step of a frame walk over `buf` starting at `offset`.
#[derive(Debug, PartialEq, Eq)]
pub enum Step {
    /// A checksum-clean record: payload byte range and the next offset.
    Ok {
        /// Payload byte range within the buffer.
        payload: std::ops::Range<usize>,
        /// Offset of the next frame.
        next: usize,
    },
    /// Structurally intact frame whose CRC does not match: quarantine the
    /// payload range and continue at `next`.
    Corrupt {
        /// Payload byte range within the buffer.
        payload: std::ops::Range<usize>,
        /// Offset of the next frame.
        next: usize,
    },
    /// The buffer ends mid-record (torn final append): truncate at
    /// `offset` and stop.
    Torn,
    /// The header is not a valid frame header or the declared length does
    /// not land on a newline: offsets beyond this point are untrusted.
    Broken,
    /// Clean end of buffer.
    End,
}

fn parse_hex8(bytes: &[u8]) -> Option<u32> {
    if bytes.len() != 8 {
        return None;
    }
    let mut v: u32 = 0;
    for &b in bytes {
        let d = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            _ => return None,
        };
        v = (v << 4) | u32::from(d);
    }
    Some(v)
}

/// Classify the frame starting at `offset`.
pub fn step(buf: &[u8], offset: usize) -> Step {
    if offset >= buf.len() {
        return Step::End;
    }
    let rest = &buf[offset..];
    if rest.len() < HEADER_LEN {
        // Not even a full header: if what is there could still be a header
        // prefix (hex/space in the right positions) it is a torn append;
        // otherwise the framing is broken.
        return if header_prefix_plausible(rest) {
            Step::Torn
        } else {
            Step::Broken
        };
    }
    let (len, crc) = match (
        parse_hex8(&rest[0..8]),
        rest[8] == b' ',
        parse_hex8(&rest[9..17]),
        rest[17] == b' ',
    ) {
        (Some(len), true, Some(crc), true) => (len as usize, crc),
        _ => return Step::Broken,
    };
    let payload_start = offset + HEADER_LEN;
    let payload_end = match payload_start.checked_add(len) {
        Some(end) if end < usize::MAX => end,
        _ => return Step::Broken,
    };
    if payload_end + 1 > buf.len() {
        // Payload (or its newline) missing: torn final append.
        return Step::Torn;
    }
    if buf[payload_end] != b'\n' {
        return Step::Broken;
    }
    let payload = payload_start..payload_end;
    if crc32(&buf[payload.clone()]) == crc {
        Step::Ok { payload, next: payload_end + 1 }
    } else {
        Step::Corrupt { payload, next: payload_end + 1 }
    }
}

/// Could `rest` (shorter than a header) be the prefix of a valid header?
fn header_prefix_plausible(rest: &[u8]) -> bool {
    rest.iter().enumerate().all(|(i, &b)| match i {
        8 | 17 => b == b' ',
        _ => b.is_ascii_hexdigit() && !b.is_ascii_uppercase(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_then_step_roundtrips() {
        let mut buf = encode(b"hello");
        buf.extend(encode(b"")); // empty payloads frame fine
        buf.extend(encode("snowman \u{2603}".as_bytes()));
        let mut offset = 0;
        let mut seen = Vec::new();
        loop {
            match step(&buf, offset) {
                Step::Ok { payload, next } => {
                    seen.push(buf[payload].to_vec());
                    offset = next;
                }
                Step::End => break,
                other => panic!("unexpected step: {other:?}"),
            }
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], b"hello");
        assert_eq!(seen[1], b"");
        assert_eq!(seen[2], "snowman \u{2603}".as_bytes());
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut_point() {
        let mut buf = encode(b"first");
        let second = encode(b"second record");
        let start = buf.len();
        buf.extend(&second);
        // Cutting anywhere inside the second record must classify as Torn
        // (never Ok, never silently End). A cut at exactly `start` is a
        // clean end — no bytes of the second record ever landed.
        for cut in start + 1..buf.len() {
            let torn = &buf[..cut];
            match step(torn, start) {
                Step::Torn => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
            // The first record stays readable.
            assert!(matches!(step(torn, 0), Step::Ok { .. }));
        }
    }

    #[test]
    fn bit_rot_is_corrupt_not_torn() {
        let mut buf = encode(b"payload-here");
        let flip = HEADER_LEN + 3;
        buf[flip] ^= 0x40;
        match step(&buf, 0) {
            Step::Corrupt { payload, next } => {
                assert_eq!(payload, HEADER_LEN..HEADER_LEN + 12);
                assert_eq!(next, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_header_is_broken() {
        assert_eq!(step(b"not a frame header at all..\n", 0), Step::Broken);
        // A corrupted length that points past a non-newline byte.
        let mut buf = encode(b"abcdef");
        buf[0] = b'0';
        buf[7] = b'1'; // len now wrong -> newline check fails
        assert!(matches!(step(&buf, 0), Step::Broken | Step::Corrupt { .. }));
    }

    #[test]
    fn payload_with_newlines_survives_framing() {
        let payload = b"line1\nline2\n";
        let buf = encode(payload);
        match step(&buf, 0) {
            Step::Ok { payload: range, next } => {
                assert_eq!(&buf[range], payload);
                assert_eq!(next, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }
}
