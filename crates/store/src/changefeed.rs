//! Bounded changefeed over store appends.
//!
//! A [`Subscription`] delivers every committed write — one
//! [`ChangeEvent`] per appended document or opened snapshot, stamped
//! with the [`Store::version`](crate::Store::version) the write
//! produced — to an incremental consumer (the ingest tier's artifact
//! maintainers) without the consumer polling `version()` and rescanning.
//!
//! # Overflow policy (the contract)
//!
//! Each subscription owns a queue bounded at the capacity it asked for.
//! When a publish finds the queue full, the feed **clears the whole
//! queue and discards the new event too**, recording how many events
//! vanished. The next [`Subscription::poll`] then reports
//! [`FeedPoll::Lagged`] *before* any event published after the gap, so
//! a consumer can never silently apply a post-gap delta to pre-gap
//! state. A lagged consumer recovers by a **catch-up scan**: rebuild
//! derived state from [`Store::scan_partitions`](crate::Store::scan_partitions)
//! at the current version, then resume draining, skipping events at or
//! below the rebuilt version. Memory is therefore bounded by
//! `capacity × subscribers` regardless of how far a consumer falls
//! behind — the feed never buffers unboundedly and never blocks a
//! writer.
//!
//! Events carry the version assigned by the triggering write. With a
//! single writer they arrive in strictly increasing version order;
//! concurrent writers may interleave publishes, so consumers treat the
//! version stamp, not arrival order, as authoritative (the ingest
//! engine skips any event at or below its applied version).

use crate::doc::Document;
use crate::store::SnapshotId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What changed in the store.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangePayload {
    /// A document was appended to `snapshot`.
    Append(Document),
    /// A fresh snapshot was opened (subsequent appends target it).
    NewSnapshot,
}

/// One committed store mutation, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeEvent {
    /// The store version this write produced (see [`crate::Store::version`]).
    pub version: u64,
    /// Namespace the write targeted.
    pub namespace: String,
    /// Snapshot the write targeted (for [`ChangePayload::NewSnapshot`],
    /// the id of the snapshot that was opened).
    pub snapshot: SnapshotId,
    /// The mutation itself.
    pub payload: ChangePayload,
}

/// Result of one [`Subscription::poll`].
#[derive(Debug, Clone, PartialEq)]
pub enum FeedPoll {
    /// The next buffered event.
    Event(ChangeEvent),
    /// The queue overflowed since the last poll: `dropped` events were
    /// discarded. The consumer must perform a catch-up scan before
    /// applying any further events.
    Lagged {
        /// Number of events discarded by the overflow policy.
        dropped: u64,
    },
    /// Nothing buffered.
    Empty,
}

struct SubQueue {
    events: VecDeque<ChangeEvent>,
    /// Events discarded since the last `Lagged` delivery; reported (and
    /// reset) by the next poll before any post-gap event.
    pending_lag: u64,
}

struct SubShared {
    queue: Mutex<SubQueue>,
    capacity: usize,
    closed: AtomicBool,
    dropped_total: AtomicU64,
}

/// A bounded subscription to a store's changefeed.
///
/// Obtained from [`crate::Store::subscribe`]; dropping it detaches the
/// consumer (the publisher garbage-collects closed subscriptions on the
/// next write).
pub struct Subscription {
    shared: Arc<SubShared>,
}

impl Subscription {
    /// Take the next item without blocking.
    pub fn poll(&self) -> FeedPoll {
        let mut q = self.shared.queue.lock();
        if q.pending_lag > 0 {
            let dropped = q.pending_lag;
            q.pending_lag = 0;
            return FeedPoll::Lagged { dropped };
        }
        match q.events.pop_front() {
            Some(ev) => FeedPoll::Event(ev),
            None => FeedPoll::Empty,
        }
    }

    /// Events currently buffered and not yet polled — the consumer's lag.
    pub fn lag(&self) -> usize {
        self.shared.queue.lock().events.len()
    }

    /// Total events discarded by the overflow policy over the
    /// subscription's lifetime.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped_total.load(Ordering::Relaxed)
    }

    /// The bound this subscription was opened with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

/// Publisher side of the feed, owned by the [`crate::Store`].
pub(crate) struct FeedHub {
    subs: Mutex<Vec<Arc<SubShared>>>,
}

impl FeedHub {
    pub(crate) fn new() -> FeedHub {
        FeedHub {
            subs: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn subscribe(&self, capacity: usize) -> Subscription {
        let shared = Arc::new(SubShared {
            queue: Mutex::new(SubQueue {
                events: VecDeque::with_capacity(capacity.max(1)),
                pending_lag: 0,
            }),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            dropped_total: AtomicU64::new(0),
        });
        self.subs.lock().push(Arc::clone(&shared));
        Subscription { shared }
    }

    /// Cheap check so writers skip the event clone when nobody listens.
    pub(crate) fn has_subscribers(&self) -> bool {
        !self.subs.lock().is_empty()
    }

    /// Deliver `event` to every live subscription, applying the
    /// overflow policy per subscriber.
    pub(crate) fn publish(&self, event: ChangeEvent) {
        let mut subs = self.subs.lock();
        subs.retain(|s| !s.closed.load(Ordering::Acquire));
        for shared in subs.iter() {
            let mut q = shared.queue.lock();
            if q.events.len() >= shared.capacity {
                let discarded = q.events.len() as u64 + 1;
                q.events.clear();
                q.pending_lag += discarded;
                shared.dropped_total.fetch_add(discarded, Ordering::Relaxed);
            } else {
                q.events.push_back(event.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Store;
    use crowdnet_json::obj;

    fn doc(i: usize) -> Document {
        Document::new(format!("k:{i}"), obj! {"i" => i})
    }

    #[test]
    fn events_carry_versions_namespaces_and_docs() {
        let s = Store::memory(2);
        let sub = s.subscribe(16);
        s.put("ns", doc(1)).unwrap();
        let snap = s.new_snapshot("ns").unwrap();
        s.put("ns", doc(2)).unwrap();
        match sub.poll() {
            FeedPoll::Event(ev) => {
                assert_eq!(ev.version, 1);
                assert_eq!(ev.namespace, "ns");
                assert_eq!(ev.snapshot, SnapshotId(0));
                assert_eq!(ev.payload, ChangePayload::Append(doc(1)));
            }
            other => panic!("expected append event, got {other:?}"),
        }
        match sub.poll() {
            FeedPoll::Event(ev) => {
                assert_eq!(ev.version, 2);
                assert_eq!(ev.snapshot, snap);
                assert_eq!(ev.payload, ChangePayload::NewSnapshot);
            }
            other => panic!("expected snapshot event, got {other:?}"),
        }
        match sub.poll() {
            FeedPoll::Event(ev) => {
                assert_eq!(ev.version, 3);
                assert_eq!(ev.snapshot, snap);
            }
            other => panic!("expected append event, got {other:?}"),
        }
        assert_eq!(sub.poll(), FeedPoll::Empty);
    }

    #[test]
    fn overflow_clears_queue_and_reports_lag_before_new_events() {
        let s = Store::memory(2);
        let sub = s.subscribe(4);
        for i in 0..5 {
            s.put("ns", doc(i)).unwrap(); // fifth write overflows
        }
        s.put("ns", doc(99)).unwrap(); // post-gap event
        assert_eq!(sub.lag(), 1, "queue holds only the post-gap event");
        assert_eq!(sub.poll(), FeedPoll::Lagged { dropped: 5 });
        match sub.poll() {
            FeedPoll::Event(ev) => assert_eq!(ev.version, 6),
            other => panic!("expected post-gap event, got {other:?}"),
        }
        assert_eq!(sub.dropped(), 5);
    }

    #[test]
    fn lag_counts_buffered_events_and_drop_detaches() {
        let s = Store::memory(2);
        let sub = s.subscribe(8);
        s.put("ns", doc(1)).unwrap();
        s.put("ns", doc(2)).unwrap();
        assert_eq!(sub.lag(), 2);
        drop(sub);
        // Publishing after the subscriber is gone reaps it.
        s.put("ns", doc(3)).unwrap();
        assert!(!s.feed_has_subscribers());
    }

    #[test]
    fn failed_writes_publish_nothing() {
        let s = Store::memory(2);
        let sub = s.subscribe(8);
        s.put("ns", doc(0)).unwrap();
        assert!(s.put_snapshot("ns", SnapshotId(9), doc(1)).is_err());
        assert!(matches!(sub.poll(), FeedPoll::Event(_)));
        assert_eq!(sub.poll(), FeedPoll::Empty);
    }
}
