//! Store error type.

use crowdnet_json::ParseError;
use std::fmt;
use std::io;

/// Everything that can go wrong talking to a [`crate::Store`].
#[derive(Debug)]
pub enum StoreError {
    /// The namespace has never been written.
    NamespaceNotFound(String),
    /// The requested snapshot does not exist in the namespace.
    SnapshotNotFound { namespace: String, snapshot: u32 },
    /// A stored line failed to parse back as JSON (corruption).
    Corrupt {
        namespace: String,
        line: usize,
        cause: ParseError,
    },
    /// A stored line parsed but is not a valid document envelope.
    BadEnvelope { namespace: String, line: usize },
    /// Underlying filesystem failure (disk backend only).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NamespaceNotFound(ns) => write!(f, "namespace not found: {ns}"),
            StoreError::SnapshotNotFound { namespace, snapshot } => {
                write!(f, "snapshot {snapshot} not found in namespace {namespace}")
            }
            StoreError::Corrupt { namespace, line, cause } => {
                write!(f, "corrupt document in {namespace} at line {line}: {cause}")
            }
            StoreError::BadEnvelope { namespace, line } => {
                write!(f, "invalid document envelope in {namespace} at line {line}")
            }
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Corrupt { cause, .. } => Some(cause),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
