//! The per-shard backend: one store, one changefeed, one ingest engine,
//! one executor thread.
//!
//! [`ShardBackend`] is the seam between the [`Router`](crate::Router) and
//! a shard's physical home. The trait surface is a set of **serializable
//! leg methods** — `epoch_meta`, `scan_partitions`, `entity_docs`,
//! `investor_edges`, `company_edges`, `top_k_prefix`, `shard_stats`,
//! `submit`, `recover` — every one a plain request/response exchange over
//! owned data, so the same seam is implemented by the in-process
//! [`LocalShard`] and by `crowdnet-shardnet`'s `RemoteShard`, which puts
//! each leg on the wire as a length-prefixed JSON frame. The router never
//! touches a shard's `Store` directly.
//!
//! The in-process [`LocalShard`] owns:
//!
//! * an `Arc<Store>` (memory, or disk behind the `Vfs` seam so fault
//!   injection reaches every shard file);
//! * an [`IngestEngine`] subscribed to that store's changefeed, drained
//!   lazily to publish per-shard [`ShardEpoch`]s — the immutable
//!   graph + entity view the read legs answer from;
//! * a persistent executor thread fed by a **bounded** channel
//!   ([`ShardBackend::offload`]), so N shards give a fan-out query N-way
//!   parallelism without per-request thread spawns (when the queue is
//!   full, the router runs the job inline instead of blocking — the same
//!   never-wait discipline as the serve worker pool).
//!
//! Health is a tri-state flag ([`ShardHealth`]): the router skips shards
//! that are `Down` or `Recovering` and flags the response partial;
//! [`ShardBackend::recover`] replays the store's recovery path, catches
//! the engine up and republishes a fresh epoch.

use crate::error::ShardError;
use crowdnet_graph::fxhash::FxHashMap;
use crowdnet_graph::BipartiteGraph;
use crowdnet_ingest::{IngestConfig, IngestEngine};
use crowdnet_json::Value;
use crowdnet_store::store::NamespaceStats;
use crowdnet_store::{Document, SnapshotId, Store, Vfs};
use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Work unit for a shard's executor thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Executor queue bound: jobs a shard may have waiting before the router
/// falls back to running them inline.
const EXEC_QUEUE: usize = 128;

/// A shard's availability, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Mid-recovery: skipped by fan-outs, answers flagged partial.
    Recovering,
    /// Unavailable (crash, kill switch): skipped by fan-outs.
    Down,
}

impl ShardHealth {
    /// Stable wire name (`/healthz` per-shard array).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Down => "down",
        }
    }

    /// Decode from the atomic health byte (inverse of [`as_u8`](Self::as_u8)).
    pub fn from_u8(v: u8) -> ShardHealth {
        match v {
            1 => ShardHealth::Recovering,
            2 => ShardHealth::Down,
            _ => ShardHealth::Healthy,
        }
    }

    /// Encode for the atomic health byte backends store their state in.
    pub fn as_u8(self) -> u8 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Recovering => 1,
            ShardHealth::Down => 2,
        }
    }
}

/// An immutable per-shard view at one store version: the shard's slice of
/// the investment graph plus its entity documents. Cheap to share
/// (`Arc`), replaced wholesale when the shard's store moves.
pub struct ShardEpoch {
    /// Store version the epoch is consistent at.
    pub version: u64,
    /// This shard's investors and their full edge sets (co-location
    /// contract: an investor's edges never span shards).
    pub graph: BipartiteGraph,
    /// `"company:{id}"` / `"user:{id}"` → document body.
    pub entities: FxHashMap<String, Value>,
}

/// Summary of a shard's current epoch: the `epoch_meta` leg's reply, and
/// the health probe's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochMeta {
    /// The shard's position in the set (sanity-checked by remote clients).
    pub index: usize,
    /// Store version the epoch is consistent at.
    pub version: u64,
    /// Store partition count (identical across the set by construction).
    pub partitions: usize,
    /// Investors in the shard's graph slice.
    pub investors: usize,
    /// Companies in the shard's graph slice.
    pub companies: usize,
    /// Entity documents in the epoch.
    pub entities: usize,
}

/// One logical write, routed to a shard by the set. Serializable: the
/// remote backend ships it as a JSON frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Append a document to the namespace's latest snapshot.
    Put {
        /// Target namespace.
        ns: String,
        /// The document.
        doc: Document,
    },
    /// Roll a new snapshot (creates the namespace at snapshot 0 when new).
    NewSnapshot {
        /// Target namespace.
        ns: String,
    },
    /// Create the namespace at snapshot 0 iff it does not exist yet.
    EnsureNamespace {
        /// Target namespace.
        ns: String,
    },
}

/// Reply to a [`WriteOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Latest snapshot id after the op (0 for a plain put on snapshot 0).
    pub snapshot: u32,
    /// Whether `EnsureNamespace` actually created the namespace.
    pub created: bool,
}

/// What the router needs from a shard, wherever it lives: serializable
/// request/response legs plus local health bookkeeping. Implemented
/// in-process by [`LocalShard`] and over the wire by
/// `crowdnet-shardnet::RemoteShard`.
pub trait ShardBackend: Send + Sync {
    /// Position in the shard set (also the partitioner's output domain).
    fn index(&self) -> usize;
    /// Current availability (tracked caller-side; never a remote call).
    fn health(&self) -> ShardHealth;
    /// Flip availability (recovery transitions, test kill switches).
    fn set_health(&self, health: ShardHealth);
    /// Leg: current epoch summary. Doubles as the health probe.
    fn epoch_meta(&self) -> Result<EpochMeta, ShardError>;
    /// Leg: the shard's slice of every partition of `ns` at `snapshot`,
    /// in partition order with per-partition append order preserved.
    fn scan_partitions(
        &self,
        ns: &str,
        snapshot: SnapshotId,
    ) -> Result<Vec<Vec<Document>>, ShardError>;
    /// Leg: entity bodies for `keys`, positionally (`None` = not here).
    fn entity_docs(&self, keys: &[String]) -> Result<Vec<Option<Value>>, ShardError>;
    /// Leg: company ids investor `id` holds, in edge order (`None` = the
    /// investor does not live on this shard).
    fn investor_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError>;
    /// Leg: investor ids of company `id` on this shard, in edge order
    /// (`None` = the company is unknown here).
    fn company_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError>;
    /// Leg: the shard-local degree ranking, descending, ties by ascending
    /// id, truncated to `k`.
    fn top_k_prefix(&self, k: usize) -> Result<Vec<(u32, f64)>, ShardError>;
    /// Leg: per-namespace store stats.
    fn shard_stats(&self) -> Result<Vec<NamespaceStats>, ShardError>;
    /// Leg: apply one write.
    fn submit(&self, op: &WriteOp) -> Result<WriteAck, ShardError>;
    /// Hand a job to the shard's executor. Returns the job back when it
    /// cannot be queued (bounded queue full, executor gone) — the caller
    /// decides whether to run it inline.
    fn offload(&self, job: Job) -> Result<(), Job>;
    /// Leg: recover the shard — replay the store's recovery path, catch
    /// the ingest engine up, republish the epoch, mark healthy.
    fn recover(&self) -> Result<(), ShardError>;
}

/// In-process shard: store + changefeed + ingest engine + executor.
pub struct LocalShard {
    index: usize,
    store: Arc<Store>,
    engine: Mutex<IngestEngine>,
    epoch: RwLock<Arc<ShardEpoch>>,
    health: AtomicU8,
    exec_tx: Mutex<Option<SyncSender<Job>>>,
    exec_thread: Mutex<Option<JoinHandle<()>>>,
    refreshes: Counter,
}

impl LocalShard {
    /// Open an in-memory shard (tests, benches, `repro serve --shards`).
    pub fn open_memory(
        index: usize,
        partitions: usize,
        telemetry: &Telemetry,
    ) -> Result<LocalShard, ShardError> {
        let store = Arc::new(Store::memory(partitions).with_telemetry(telemetry));
        LocalShard::wrap(index, store, telemetry)
    }

    /// Open a durable shard rooted at `root`, on an explicit [`Vfs`] so
    /// fault injection and recovery reach every shard file.
    pub fn open_with_vfs(
        index: usize,
        root: &Path,
        partitions: usize,
        vfs: Arc<dyn Vfs>,
        telemetry: &Telemetry,
    ) -> Result<LocalShard, ShardError> {
        let store = Store::open_with_vfs(root, partitions, vfs)
            .map_err(crowdnet_store::StoreError::Io)?;
        LocalShard::wrap(index, Arc::new(store.with_telemetry(telemetry)), telemetry)
    }

    /// Wrap an already-open store: subscribe the ingest engine (catching
    /// up on existing content), publish the first epoch, start the
    /// executor thread.
    pub fn wrap(
        index: usize,
        store: Arc<Store>,
        telemetry: &Telemetry,
    ) -> Result<LocalShard, ShardError> {
        let engine = IngestEngine::new(
            Arc::clone(&store),
            IngestConfig::default(),
            telemetry.clone(),
        )?;
        let epoch = Arc::new(snapshot_epoch(&engine));
        let (tx, rx) = sync_channel::<Job>(EXEC_QUEUE);
        let thread = std::thread::Builder::new()
            .name(format!("shard-exec-{index}"))
            .spawn(move || {
                // Single consumer owns the receiver; exits on disconnect.
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .map_err(crowdnet_store::StoreError::Io)?;
        Ok(LocalShard {
            index,
            store,
            engine: Mutex::new(engine),
            epoch: RwLock::new(epoch),
            health: AtomicU8::new(ShardHealth::Healthy.as_u8()),
            exec_tx: Mutex::new(Some(tx)),
            exec_thread: Mutex::new(Some(thread)),
            refreshes: telemetry.counter(&format!("shard.{index}.refreshes")),
        })
    }

    /// The shard's store. Inherent (not on the trait): the store never
    /// crosses the backend seam — the router and set speak legs only.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The current epoch, refreshed first if the store has moved past it.
    pub fn epoch(&self) -> Result<Arc<ShardEpoch>, ShardError> {
        let current = self.store.version();
        {
            let epoch = self.epoch.read();
            if epoch.version == current {
                return Ok(Arc::clone(&epoch));
            }
        }
        // Stale: drain the changefeed and republish. The engine lock
        // serializes refreshes; the epoch RwLock hands the fresh view to
        // concurrent readers without blocking them on the drain.
        let mut engine = self.engine.lock();
        engine.drain()?;
        let fresh = Arc::new(snapshot_epoch(&engine));
        *self.epoch.write() = Arc::clone(&fresh);
        self.refreshes.inc();
        Ok(fresh)
    }
}

/// Freeze the engine's maintained state into an immutable epoch.
fn snapshot_epoch(engine: &IngestEngine) -> ShardEpoch {
    ShardEpoch {
        version: engine.applied_version(),
        graph: engine.graph().graph().clone(),
        entities: engine.entities().clone_map(),
    }
}

impl ShardBackend for LocalShard {
    fn index(&self) -> usize {
        self.index
    }

    fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    fn set_health(&self, health: ShardHealth) {
        self.health.store(health.as_u8(), Ordering::Release);
    }

    fn epoch_meta(&self) -> Result<EpochMeta, ShardError> {
        let epoch = self.epoch()?;
        Ok(EpochMeta {
            index: self.index,
            version: epoch.version,
            partitions: self.store.partitions(),
            investors: epoch.graph.investor_count(),
            companies: epoch.graph.company_count(),
            entities: epoch.entities.len(),
        })
    }

    fn scan_partitions(
        &self,
        ns: &str,
        snapshot: SnapshotId,
    ) -> Result<Vec<Vec<Document>>, ShardError> {
        Ok(self.store.scan_partitions(ns, snapshot)?)
    }

    fn entity_docs(&self, keys: &[String]) -> Result<Vec<Option<Value>>, ShardError> {
        let epoch = self.epoch()?;
        Ok(keys
            .iter()
            .map(|k| epoch.entities.get(k).cloned())
            .collect())
    }

    fn investor_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError> {
        let epoch = self.epoch()?;
        Ok(epoch.graph.investor_index(id).map(|i| {
            epoch
                .graph
                .companies_of(i)
                .iter()
                .map(|&c| epoch.graph.company_id(c))
                .collect()
        }))
    }

    fn company_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError> {
        let epoch = self.epoch()?;
        Ok(epoch.graph.company_index(id).map(|c| {
            epoch
                .graph
                .investors_of(c)
                .iter()
                .map(|&i| epoch.graph.investor_id(i))
                .collect()
        }))
    }

    fn top_k_prefix(&self, k: usize) -> Result<Vec<(u32, f64)>, ShardError> {
        let epoch = self.epoch()?;
        let mut ranked: Vec<(u32, f64)> = epoch
            .graph
            .investor_degrees()
            .into_iter()
            .enumerate()
            .map(|(i, d)| (epoch.graph.investor_id(i as u32), d as f64))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        Ok(ranked)
    }

    fn shard_stats(&self) -> Result<Vec<NamespaceStats>, ShardError> {
        Ok(self.store.stats()?)
    }

    fn submit(&self, op: &WriteOp) -> Result<WriteAck, ShardError> {
        match op {
            WriteOp::Put { ns, doc } => {
                self.store.put(ns, doc.clone())?;
                Ok(WriteAck {
                    snapshot: self.store.latest_snapshot(ns)?.0,
                    created: false,
                })
            }
            WriteOp::NewSnapshot { ns } => {
                let id = self.store.new_snapshot(ns)?;
                Ok(WriteAck {
                    snapshot: id.0,
                    created: false,
                })
            }
            WriteOp::EnsureNamespace { ns } => {
                if self.store.snapshots(ns).is_empty() {
                    let id = self.store.new_snapshot(ns)?;
                    Ok(WriteAck {
                        snapshot: id.0,
                        created: true,
                    })
                } else {
                    Ok(WriteAck {
                        snapshot: self.store.latest_snapshot(ns)?.0,
                        created: false,
                    })
                }
            }
        }
    }

    fn offload(&self, job: Job) -> Result<(), Job> {
        // Clone the sender out of the lock so the channel op runs with no
        // lock held.
        let tx = match self.exec_tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(job),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => Err(job),
        }
    }

    fn recover(&self) -> Result<(), ShardError> {
        self.set_health(ShardHealth::Recovering);
        self.store.recover()?;
        let mut engine = self.engine.lock();
        engine.catch_up()?;
        let fresh = Arc::new(snapshot_epoch(&engine));
        *self.epoch.write() = fresh;
        drop(engine);
        self.set_health(ShardHealth::Healthy);
        Ok(())
    }
}

impl Drop for LocalShard {
    fn drop(&mut self) {
        // Drop the sender to disconnect the executor, then join it.
        self.exec_tx.lock().take();
        if let Some(thread) = self.exec_thread.lock().take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_json::obj;
    use crowdnet_store::Document;

    #[test]
    fn epoch_refreshes_lazily_on_version_change() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(0, 2, &t).unwrap();
        let first = shard.epoch().unwrap();
        assert_eq!(first.version, 0);
        shard
            .store()
            .put(
                "angellist/users",
                Document::new(
                    "user:7",
                    obj! {"id" => 7u64, "role" => "investor", "investments" => Value::Arr(vec![Value::from(1u64)])},
                ),
            )
            .unwrap();
        let fresh = shard.epoch().unwrap();
        assert_eq!(fresh.version, shard.store().version());
        assert_eq!(fresh.graph.investor_count(), 1);
        assert!(fresh.entities.contains_key("user:7"));
        assert_eq!(t.counter("shard.0.refreshes").value(), 1);
        // Unchanged store: the same Arc comes back, no refresh.
        let again = shard.epoch().unwrap();
        assert!(Arc::ptr_eq(&fresh, &again));
        assert_eq!(t.counter("shard.0.refreshes").value(), 1);
    }

    #[test]
    fn leg_methods_answer_from_the_epoch() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(0, 2, &t).unwrap();
        shard
            .submit(&WriteOp::Put {
                ns: "angellist/users".into(),
                doc: Document::new(
                    "user:7",
                    obj! {"id" => 7u64, "role" => "investor", "investments" => Value::Arr(vec![Value::from(1u64), Value::from(3u64)])},
                ),
            })
            .unwrap();
        let meta = shard.epoch_meta().unwrap();
        assert_eq!(meta.index, 0);
        assert_eq!(meta.partitions, 2);
        assert_eq!(meta.investors, 1);
        assert_eq!(meta.entities, 1);
        assert_eq!(meta.version, shard.store().version());
        let docs = shard
            .entity_docs(&["user:7".to_string(), "user:8".to_string()])
            .unwrap();
        assert!(docs[0].is_some());
        assert!(docs[1].is_none());
        assert_eq!(shard.investor_edges(7).unwrap(), Some(vec![1, 3]));
        assert_eq!(shard.investor_edges(8).unwrap(), None);
        assert_eq!(shard.company_edges(1).unwrap(), Some(vec![7]));
        assert_eq!(shard.company_edges(99).unwrap(), None);
        assert_eq!(shard.top_k_prefix(5).unwrap(), vec![(7, 2.0)]);
        let stats = shard.shard_stats().unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].documents, 1);
    }

    #[test]
    fn write_ops_roll_snapshots_and_report_creation() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(0, 2, &t).unwrap();
        let ns = "journal/daily".to_string();
        let ack = shard
            .submit(&WriteOp::EnsureNamespace { ns: ns.clone() })
            .unwrap();
        assert!(ack.created);
        assert_eq!(ack.snapshot, 0);
        let ack = shard
            .submit(&WriteOp::EnsureNamespace { ns: ns.clone() })
            .unwrap();
        assert!(!ack.created);
        let ack = shard.submit(&WriteOp::NewSnapshot { ns }).unwrap();
        assert_eq!(ack.snapshot, 1);
    }

    #[test]
    fn executor_runs_submitted_jobs() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(1, 2, &t).unwrap();
        let (tx, rx) = sync_channel::<u32>(1);
        shard
            .offload(Box::new(move || {
                let _ = tx.send(42);
            }))
            .unwrap_or_else(|job| job());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn health_round_trips_and_kill_is_reversible() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(2, 2, &t).unwrap();
        assert_eq!(shard.health(), ShardHealth::Healthy);
        shard.set_health(ShardHealth::Down);
        assert_eq!(shard.health(), ShardHealth::Down);
        shard.recover().unwrap();
        assert_eq!(shard.health(), ShardHealth::Healthy);
    }

    #[test]
    fn offload_after_drop_sender_returns_job() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(3, 2, &t).unwrap();
        shard.exec_tx.lock().take();
        let job: Job = Box::new(|| {});
        assert!(shard.offload(job).is_err());
    }
}
