//! The per-shard backend: one store, one changefeed, one ingest engine,
//! one executor thread.
//!
//! [`ShardBackend`] is the seam between the [`Router`](crate::Router) and
//! a shard's physical home. The in-process [`LocalShard`] owns:
//!
//! * an `Arc<Store>` (memory, or disk behind the `Vfs` seam so fault
//!   injection reaches every shard file);
//! * an [`IngestEngine`] subscribed to that store's changefeed, drained
//!   lazily to publish per-shard [`ShardEpoch`]s — the immutable
//!   graph + entity view scatter queries answer from;
//! * a persistent executor thread fed by a **bounded** channel, so N
//!   shards give a fan-out query N-way parallelism without per-request
//!   thread spawns (when the queue is full, the router runs the job
//!   inline instead of blocking — the same never-wait discipline as the
//!   serve worker pool).
//!
//! Health is a tri-state flag ([`ShardHealth`]): the router skips shards
//! that are `Down` or `Recovering` and flags the response partial;
//! [`ShardBackend::recover`] replays the store's recovery path, catches
//! the engine up and republishes a fresh epoch.

use crate::error::ShardError;
use crowdnet_graph::fxhash::FxHashMap;
use crowdnet_graph::BipartiteGraph;
use crowdnet_ingest::{IngestConfig, IngestEngine};
use crowdnet_json::Value;
use crowdnet_store::{Store, Vfs};
use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Work unit for a shard's executor thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Executor queue bound: jobs a shard may have waiting before the router
/// falls back to running them inline.
const EXEC_QUEUE: usize = 128;

/// A shard's availability, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Mid-recovery: skipped by fan-outs, answers flagged partial.
    Recovering,
    /// Unavailable (crash, kill switch): skipped by fan-outs.
    Down,
}

impl ShardHealth {
    /// Stable wire name (`/healthz` per-shard array).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Down => "down",
        }
    }

    fn from_u8(v: u8) -> ShardHealth {
        match v {
            1 => ShardHealth::Recovering,
            2 => ShardHealth::Down,
            _ => ShardHealth::Healthy,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Recovering => 1,
            ShardHealth::Down => 2,
        }
    }
}

/// An immutable per-shard view at one store version: the shard's slice of
/// the investment graph plus its entity documents. Cheap to share
/// (`Arc`), replaced wholesale when the shard's store moves.
pub struct ShardEpoch {
    /// Store version the epoch is consistent at.
    pub version: u64,
    /// This shard's investors and their full edge sets (co-location
    /// contract: an investor's edges never span shards).
    pub graph: BipartiteGraph,
    /// `"company:{id}"` / `"user:{id}"` → document body.
    pub entities: FxHashMap<String, Value>,
}

/// What the router needs from a shard, wherever it lives. Today's only
/// implementation is the in-process [`LocalShard`]; the trait is the seam
/// a remote/process-per-shard backend would implement.
pub trait ShardBackend: Send + Sync {
    /// Position in the shard set (also the partitioner's output domain).
    fn index(&self) -> usize;
    /// The shard's store.
    fn store(&self) -> &Arc<Store>;
    /// Current availability.
    fn health(&self) -> ShardHealth;
    /// Flip availability (recovery transitions, test kill switches).
    fn set_health(&self, health: ShardHealth);
    /// The current epoch, refreshed first if the store has moved past it.
    fn epoch(&self) -> Result<Arc<ShardEpoch>, ShardError>;
    /// Hand a job to the shard's executor. Returns the job back when it
    /// cannot be queued (bounded queue full, executor gone) — the caller
    /// decides whether to run it inline.
    fn submit(&self, job: Job) -> Result<(), Job>;
    /// Recover the shard: replay the store's recovery path, catch the
    /// ingest engine up, republish the epoch, mark healthy.
    fn recover(&self) -> Result<(), ShardError>;
}

/// In-process shard: store + changefeed + ingest engine + executor.
pub struct LocalShard {
    index: usize,
    store: Arc<Store>,
    engine: Mutex<IngestEngine>,
    epoch: RwLock<Arc<ShardEpoch>>,
    health: AtomicU8,
    exec_tx: Mutex<Option<SyncSender<Job>>>,
    exec_thread: Mutex<Option<JoinHandle<()>>>,
    refreshes: Counter,
}

impl LocalShard {
    /// Open an in-memory shard (tests, benches, `repro serve --shards`).
    pub fn open_memory(
        index: usize,
        partitions: usize,
        telemetry: &Telemetry,
    ) -> Result<LocalShard, ShardError> {
        let store = Arc::new(Store::memory(partitions).with_telemetry(telemetry));
        LocalShard::wrap(index, store, telemetry)
    }

    /// Open a durable shard rooted at `root`, on an explicit [`Vfs`] so
    /// fault injection and recovery reach every shard file.
    pub fn open_with_vfs(
        index: usize,
        root: &Path,
        partitions: usize,
        vfs: Arc<dyn Vfs>,
        telemetry: &Telemetry,
    ) -> Result<LocalShard, ShardError> {
        let store = Store::open_with_vfs(root, partitions, vfs)
            .map_err(crowdnet_store::StoreError::Io)?;
        LocalShard::wrap(index, Arc::new(store.with_telemetry(telemetry)), telemetry)
    }

    /// Wrap an already-open store: subscribe the ingest engine (catching
    /// up on existing content), publish the first epoch, start the
    /// executor thread.
    pub fn wrap(
        index: usize,
        store: Arc<Store>,
        telemetry: &Telemetry,
    ) -> Result<LocalShard, ShardError> {
        let engine = IngestEngine::new(
            Arc::clone(&store),
            IngestConfig::default(),
            telemetry.clone(),
        )?;
        let epoch = Arc::new(snapshot_epoch(&engine));
        let (tx, rx) = sync_channel::<Job>(EXEC_QUEUE);
        let thread = std::thread::Builder::new()
            .name(format!("shard-exec-{index}"))
            .spawn(move || {
                // Single consumer owns the receiver; exits on disconnect.
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .map_err(crowdnet_store::StoreError::Io)?;
        Ok(LocalShard {
            index,
            store,
            engine: Mutex::new(engine),
            epoch: RwLock::new(epoch),
            health: AtomicU8::new(ShardHealth::Healthy.as_u8()),
            exec_tx: Mutex::new(Some(tx)),
            exec_thread: Mutex::new(Some(thread)),
            refreshes: telemetry.counter(&format!("shard.{index}.refreshes")),
        })
    }
}

/// Freeze the engine's maintained state into an immutable epoch.
fn snapshot_epoch(engine: &IngestEngine) -> ShardEpoch {
    ShardEpoch {
        version: engine.applied_version(),
        graph: engine.graph().graph().clone(),
        entities: engine.entities().clone_map(),
    }
}

impl ShardBackend for LocalShard {
    fn index(&self) -> usize {
        self.index
    }

    fn store(&self) -> &Arc<Store> {
        &self.store
    }

    fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    fn set_health(&self, health: ShardHealth) {
        self.health.store(health.as_u8(), Ordering::Release);
    }

    fn epoch(&self) -> Result<Arc<ShardEpoch>, ShardError> {
        let current = self.store.version();
        {
            let epoch = self.epoch.read();
            if epoch.version == current {
                return Ok(Arc::clone(&epoch));
            }
        }
        // Stale: drain the changefeed and republish. The engine lock
        // serializes refreshes; the epoch RwLock hands the fresh view to
        // concurrent readers without blocking them on the drain.
        let mut engine = self.engine.lock();
        engine.drain()?;
        let fresh = Arc::new(snapshot_epoch(&engine));
        *self.epoch.write() = Arc::clone(&fresh);
        self.refreshes.inc();
        Ok(fresh)
    }

    fn submit(&self, job: Job) -> Result<(), Job> {
        // Clone the sender out of the lock so the channel op runs with no
        // lock held.
        let tx = match self.exec_tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(job),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => Err(job),
        }
    }

    fn recover(&self) -> Result<(), ShardError> {
        self.set_health(ShardHealth::Recovering);
        self.store.recover()?;
        let mut engine = self.engine.lock();
        engine.catch_up()?;
        let fresh = Arc::new(snapshot_epoch(&engine));
        *self.epoch.write() = fresh;
        drop(engine);
        self.set_health(ShardHealth::Healthy);
        Ok(())
    }
}

impl Drop for LocalShard {
    fn drop(&mut self) {
        // Drop the sender to disconnect the executor, then join it.
        self.exec_tx.lock().take();
        if let Some(thread) = self.exec_thread.lock().take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_json::obj;
    use crowdnet_store::Document;

    #[test]
    fn epoch_refreshes_lazily_on_version_change() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(0, 2, &t).unwrap();
        let first = shard.epoch().unwrap();
        assert_eq!(first.version, 0);
        shard
            .store()
            .put(
                "angellist/users",
                Document::new(
                    "user:7",
                    obj! {"id" => 7u64, "role" => "investor", "investments" => Value::Arr(vec![Value::from(1u64)])},
                ),
            )
            .unwrap();
        let fresh = shard.epoch().unwrap();
        assert_eq!(fresh.version, shard.store().version());
        assert_eq!(fresh.graph.investor_count(), 1);
        assert!(fresh.entities.contains_key("user:7"));
        assert_eq!(t.counter("shard.0.refreshes").value(), 1);
        // Unchanged store: the same Arc comes back, no refresh.
        let again = shard.epoch().unwrap();
        assert!(Arc::ptr_eq(&fresh, &again));
        assert_eq!(t.counter("shard.0.refreshes").value(), 1);
    }

    #[test]
    fn executor_runs_submitted_jobs() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(1, 2, &t).unwrap();
        let (tx, rx) = sync_channel::<u32>(1);
        shard
            .submit(Box::new(move || {
                let _ = tx.send(42);
            }))
            .unwrap_or_else(|job| job());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn health_round_trips_and_kill_is_reversible() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(2, 2, &t).unwrap();
        assert_eq!(shard.health(), ShardHealth::Healthy);
        shard.set_health(ShardHealth::Down);
        assert_eq!(shard.health(), ShardHealth::Down);
        shard.recover().unwrap();
        assert_eq!(shard.health(), ShardHealth::Healthy);
    }

    #[test]
    fn submit_after_drop_sender_returns_job() {
        let t = Telemetry::new();
        let shard = LocalShard::open_memory(3, 2, &t).unwrap();
        shard.exec_tx.lock().take();
        let job: Job = Box::new(|| {});
        assert!(shard.submit(job).is_err());
    }
}
