//! Scatter-gather router: the unsharded serving surface over N shards.
//!
//! The [`Router`] answers the exact route table of
//! `crowdnet_serve::Service` — same paths, same envelopes, same error
//! strings — by fanning queries out to the healthy shards and merging
//! their partial results. Every fan-out leg is a serializable
//! [`ShardBackend`](crate::ShardBackend) method (the router never touches
//! a shard's store), so the same code path serves in-process
//! `LocalShard`s and `crowdnet-shardnet`'s out-of-process `RemoteShard`s:
//!
//! * **entity** — single-shard: the partitioner names the owner, one
//!   `entity_docs` leg answers.
//! * **portfolio / company investors** — scatter `investor_edges` /
//!   `company_edges`; an investor's edges live on one shard
//!   (co-location), a company's inbound edges concatenate disjointly;
//!   merged ids sort ascending, matching the canonical unsharded listing.
//! * **top-k** — per-shard `top_k_prefix` legs merged through a bounded
//!   heap (at most one candidate per shard in flight), ties broken by
//!   ascending id exactly like the unsharded sort.
//! * **stats** — associative merge of per-shard `shard_stats` legs.
//! * **sql / communities / pagerank** — per-shard `scan_partitions` legs
//!   are concatenated in shard order and stable-sorted by key, which
//!   reconstructs the unsharded store's canonical partition scans
//!   byte-for-byte (same-key documents never span shards); communities
//!   and PageRank come from global [`Artifacts`] assembled from that
//!   canonical merge and cached per logical version.
//!
//! Fan-outs run on the shards' executor threads under a shared deadline
//! budget: a shard that is down, mid-recovery, past the budget, or whose
//! leg fails in *transport* (unreachable process, dead connection,
//! malformed frame) is skipped and the response is flagged
//! `"partial": true` with the shard indices in `"degraded_shards"` —
//! degraded, never failed. Only logical errors (a bad query, a missing
//! namespace) propagate as error statuses.

use crate::backend::{Job, ShardBackend, ShardHealth};
use crate::error::ShardError;
use crate::set::{merge_stats, ShardSet};
use crowdnet_json::{obj, Value};
use crowdnet_serve::artifacts::{Artifacts, ArtifactsConfig, NS_COMPANIES, NS_USERS};
use crowdnet_serve::cache::{CacheConfig, CacheStats, ResultCache};
use crowdnet_serve::http::{Request, Response};
use crowdnet_serve::router::{
    error_response, id_array, opt_f64, param, parse_id, render_stats,
};
use crowdnet_serve::{RequestHandler, ServeError};
use crowdnet_dataflow::{sql, Dataset, ExecCtx};
use crowdnet_store::{Document, SnapshotId, StoreError};
use crowdnet_telemetry::{Counter, Histogram, Telemetry};
use parking_lot::RwLock;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Router knobs. Artifact and SQL knobs mirror `ServiceConfig` so a
/// sharded deployment answers byte-identically to an unsharded one built
/// from the same corpus.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Artifact-build knobs for the global (cross-shard) artifacts.
    pub artifacts: ArtifactsConfig,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// Maximum rows an ad-hoc SQL response returns.
    pub sql_row_limit: usize,
    /// Dataflow threads for merged scans and SQL execution.
    pub threads: usize,
    /// Fan-out budget applied when a request carries no `x-deadline-ms`
    /// header; `None` means no deadline.
    pub default_deadline_ms: Option<u64>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            artifacts: ArtifactsConfig::default(),
            cache: CacheConfig::default(),
            sql_row_limit: 1000,
            threads: 2,
            default_deadline_ms: None,
        }
    }
}

/// Per-request fan-out state: the deadline budget and which shards could
/// not contribute (down, recovering, past deadline, or reply lost).
struct QueryCtx {
    deadline_at: Option<u64>,
    degraded: BTreeSet<usize>,
}

/// The scatter-gather front end over a [`ShardSet`].
pub struct Router {
    set: Arc<ShardSet>,
    ctx: ExecCtx,
    telemetry: Telemetry,
    cfg: RouterConfig,
    /// Global artifacts memo, keyed by the set's logical version. Only
    /// fully-healthy builds are cached; degraded builds are served once
    /// and rebuilt (they reflect whichever shards were up).
    global: RwLock<Option<(u64, Arc<Artifacts>)>>,
    cache: ResultCache,
    requests: Counter,
    fanouts: Counter,
    single_shard: Counter,
    partial: Counter,
    deadline_skips: Counter,
    epoch_builds: Counter,
    latency: Histogram,
}

impl Router {
    /// Wrap a shard set. Nothing is scanned yet — global artifacts build
    /// on the first request that needs them.
    pub fn new(set: Arc<ShardSet>, cfg: RouterConfig, telemetry: Telemetry) -> Router {
        let cache = ResultCache::new(&cfg.cache, &telemetry);
        Router {
            ctx: ExecCtx::new(cfg.threads.max(1)),
            set,
            cache,
            requests: telemetry.counter("shard.router.requests"),
            fanouts: telemetry.counter("shard.router.fanouts"),
            single_shard: telemetry.counter("shard.router.single_shard"),
            partial: telemetry.counter("shard.router.partial"),
            deadline_skips: telemetry.counter("shard.router.deadline_skips"),
            epoch_builds: telemetry.counter("shard.router.epoch_builds"),
            latency: telemetry.histogram("serve.latency_ms"),
            telemetry,
            cfg,
            global: RwLock::new(None),
        }
    }

    /// The shard set behind the router.
    pub fn set(&self) -> &Arc<ShardSet> {
        &self.set
    }

    /// Result-cache occupancy (for `/healthz` and tests).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serve one request end to end — the sharded analogue of
    /// `Service::handle`. Never panics; every failure is a status-coded
    /// JSON response.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.inc();
        let started = self.telemetry.now_ms();
        let version = self.set.version();
        // Responses from a degraded set carry partial flags and reflect
        // whichever shards were up, so the cache only participates while
        // every shard is healthy.
        let all_healthy = !self.set.any_unhealthy();
        let key = format!("{} {}", req.method, req.target);
        let cacheable = all_healthy && req.method == "GET" && req.path() != "/healthz";
        if cacheable {
            if let Some(hit) = self.cache.get(&key, version) {
                self.latency.record(self.telemetry.now_ms() - started);
                return hit;
            }
        }
        let deadline_at = req
            .header("x-deadline-ms")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .or(self.cfg.default_deadline_ms)
            .map(|ms| started + ms);
        let mut ctx = QueryCtx {
            deadline_at,
            degraded: BTreeSet::new(),
        };
        let result = {
            let _span = self
                .telemetry
                .span(&format!("shard.{}", endpoint_name(req.path())));
            self.route(&mut ctx, req)
        };
        let response = match result {
            Ok(mut value) => {
                if !ctx.degraded.is_empty() {
                    if let Some(o) = value.as_obj_mut() {
                        o.insert("partial", Value::Bool(true));
                        o.insert(
                            "degraded_shards",
                            Value::Arr(
                                ctx.degraded.iter().map(|&i| Value::from(i as u64)).collect(),
                            ),
                        );
                    }
                    self.partial.inc();
                }
                Response::json(200, &value)
            }
            Err(e) => error_response(&e),
        };
        if cacheable && response.status == 200 && ctx.degraded.is_empty() {
            self.cache.put(&key, version, response.clone());
        }
        self.latency.record(self.telemetry.now_ms() - started);
        response
    }

    /// One representative target per endpoint (same surface as
    /// `Service::example_targets`), with real ids from the global
    /// artifacts — the smoke surface `repro serve --shards` walks.
    pub fn example_targets(&self) -> Result<Vec<String>, ServeError> {
        let mut ctx = QueryCtx {
            deadline_at: None,
            degraded: BTreeSet::new(),
        };
        let artifacts = self.global_artifacts(&mut ctx)?;
        let mut targets = vec!["/healthz".to_string(), "/stats".to_string()];
        if artifacts.graph.investor_count() > 0 {
            let inv = artifacts.graph.investor_id(0);
            let com = artifacts.graph.company_id(0);
            targets.push(format!("/entity/user/{inv}"));
            targets.push(format!("/entity/company/{com}"));
            targets.push(format!("/investor/{inv}/portfolio"));
            targets.push(format!("/investor/{inv}/communities"));
            targets.push(format!("/company/{com}/investors"));
        }
        targets.push("/communities".to_string());
        if !artifacts.cover.is_empty() {
            targets.push("/communities/0".to_string());
        }
        targets.push("/top/investors?by=degree&k=5".to_string());
        targets.push("/top/investors?by=pagerank&k=5".to_string());
        targets.push(format!(
            "/sql?ns={}&q=SELECT+COUNT(*)+AS+n+FROM+docs",
            NS_USERS.replace('/', "%2F")
        ));
        Ok(targets)
    }

    fn route(&self, ctx: &mut QueryCtx, req: &Request) -> Result<Value, ServeError> {
        let path = req.path().to_string();
        let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let is_sql_post = req.method == "POST" && segs.as_slice() == ["sql"];
        if req.method != "GET" && !is_sql_post {
            return Err(ServeError::MethodNotAllowed(format!(
                "{} {}",
                req.method, path
            )));
        }
        match segs.as_slice() {
            ["healthz"] => self.healthz(),
            ["stats"] => self.stats(ctx),
            ["entity", kind, id] => self.entity(ctx, kind, parse_id(id)?),
            ["investor", id, "portfolio"] => self.portfolio(ctx, parse_id(id)?),
            ["investor", id, "communities"] => self.investor_communities(ctx, parse_id(id)?),
            ["company", id, "investors"] => self.company_investors(ctx, parse_id(id)?),
            ["communities"] => self.communities(ctx),
            ["communities", id] => self.community(ctx, id),
            ["top", "investors"] => self.top_investors(ctx, req),
            ["sql"] => self.sql_endpoint(ctx, req),
            _ => Err(ServeError::NotFound(path)),
        }
    }

    // ---- fan-out machinery -------------------------------------------

    /// Scatter one job per healthy shard onto the shards' executor
    /// threads and gather replies in shard order. Shards that are
    /// unhealthy, past the deadline budget, or whose reply is lost are
    /// recorded in `ctx.degraded` and omitted from the result.
    fn scatter<T, F>(&self, ctx: &mut QueryCtx, mut make_job: F) -> Vec<(usize, T)>
    where
        T: Send + 'static,
        F: FnMut(usize) -> Box<dyn FnOnce() -> T + Send + 'static>,
    {
        self.fanouts.inc();
        let mut pending = Vec::new();
        for (idx, shard) in self.set.shards().iter().enumerate() {
            if shard.health() != ShardHealth::Healthy {
                ctx.degraded.insert(idx);
                continue;
            }
            if let Some(deadline) = ctx.deadline_at {
                if self.telemetry.now_ms() > deadline {
                    self.deadline_skips.inc();
                    ctx.degraded.insert(idx);
                    continue;
                }
            }
            let job = make_job(idx);
            let (tx, rx) = sync_channel::<T>(1);
            let telemetry = self.telemetry.clone();
            let skips = self.deadline_skips.clone();
            let deadline = ctx.deadline_at;
            let wrapped: Job = Box::new(move || {
                if let Some(d) = deadline {
                    if telemetry.now_ms() > d {
                        // Budget ran out while queued: drop the reply
                        // sender so the gather marks this shard degraded.
                        skips.inc();
                        return;
                    }
                }
                let _ = tx.send(job());
            });
            // Executor queue full (or gone): run the job inline rather
            // than blocking or failing — same never-wait discipline as
            // the serve worker pool.
            if let Err(job) = shard.offload(wrapped) {
                job();
            }
            pending.push((idx, rx));
        }
        let mut gathered = Vec::with_capacity(pending.len());
        for (idx, rx) in pending {
            match rx.recv() {
                Ok(v) => gathered.push((idx, v)),
                Err(_) => {
                    ctx.degraded.insert(idx);
                }
            }
        }
        gathered
    }

    /// Scatter one leg call per healthy shard and gather its replies.
    /// Transport failures (unreachable shard, dead connection, malformed
    /// frame, executor gone) degrade the shard; logical errors propagate.
    fn scatter_leg<T, F>(
        &self,
        ctx: &mut QueryCtx,
        leg: F,
    ) -> Result<Vec<(usize, T)>, ServeError>
    where
        T: Send + 'static,
        F: Fn(&Arc<dyn ShardBackend>) -> Result<T, ShardError> + Send + Sync + 'static,
    {
        let leg = Arc::new(leg);
        let results = self.scatter(ctx, |idx| {
            let shard = self.set.shards().get(idx).map(Arc::clone);
            let leg = Arc::clone(&leg);
            Box::new(move || match shard {
                Some(s) => leg(&s),
                None => Err(ShardError::NoSuchShard(idx)),
            })
        });
        let mut gathered = Vec::with_capacity(results.len());
        for (idx, r) in results {
            match r {
                Ok(v) => gathered.push((idx, v)),
                Err(e) if e.is_transport() => {
                    ctx.degraded.insert(idx);
                }
                Err(e) => return Err(shard_to_serve(e)),
            }
        }
        Ok(gathered)
    }

    /// Canonical partition scans of `ns` at snapshot 0, merged across the
    /// healthy shards: per partition, shard slices concatenate in shard
    /// order and stable-sort by key. Because a key's documents live on
    /// exactly one shard and each shard preserves append order, this
    /// reconstructs the unsharded store's `scan_partitions` output
    /// exactly. `Ok(None)` means the namespace does not exist.
    fn merged_partitions(
        &self,
        ctx: &mut QueryCtx,
        ns: &str,
    ) -> Result<Option<Vec<Vec<Document>>>, ServeError> {
        let results = self.scatter(ctx, |idx| {
            let shard = self.set.shards().get(idx).map(Arc::clone);
            let ns = ns.to_string();
            Box::new(move || match shard {
                Some(s) => s.scan_partitions(&ns, SnapshotId(0)),
                None => Err(ShardError::NoSuchShard(idx)),
            })
        });
        let mut merged: Vec<Vec<Document>> = Vec::new();
        let mut any = false;
        for (idx, r) in results {
            match r {
                Ok(parts) => {
                    any = true;
                    if merged.len() < parts.len() {
                        merged.resize_with(parts.len(), Vec::new);
                    }
                    for (p, docs) in parts.into_iter().enumerate() {
                        if let Some(slot) = merged.get_mut(p) {
                            slot.extend(docs);
                        }
                    }
                }
                // Snapshot lockstep: a namespace exists on all shards or
                // none, so any miss means the namespace is absent.
                Err(ShardError::Store(StoreError::NamespaceNotFound(_))) => return Ok(None),
                Err(e) if e.is_transport() => {
                    ctx.degraded.insert(idx);
                }
                Err(e) => return Err(shard_to_serve(e)),
            }
        }
        if !any && ctx.degraded.is_empty() {
            return Ok(None);
        }
        for part in &mut merged {
            // Stable: same-key documents are single-shard, so their
            // append order survives the concat.
            part.sort_by(|a, b| a.key.cmp(&b.key));
        }
        Ok(Some(merged))
    }

    /// Cross-shard [`Artifacts`] at the set's logical version, assembled
    /// from the canonically merged corpus scans. Fully-healthy builds are
    /// memoized per version; degraded builds are served uncached.
    fn global_artifacts(&self, ctx: &mut QueryCtx) -> Result<Arc<Artifacts>, ServeError> {
        let version = self.set.version();
        {
            let memo = self.global.read();
            if let Some((v, a)) = &*memo {
                if *v == version {
                    return Ok(Arc::clone(a));
                }
            }
        }
        let mut scans: Vec<(&str, Vec<Document>)> = Vec::new();
        for ns in [NS_COMPANIES, NS_USERS] {
            if let Some(parts) = self.merged_partitions(ctx, ns)? {
                scans.push((ns, parts.into_iter().flatten().collect()));
            }
        }
        let built = Arc::new(Artifacts::from_documents(
            version,
            scans,
            &self.telemetry,
            &self.cfg.artifacts,
        ));
        self.epoch_builds.inc();
        if ctx.degraded.is_empty() {
            let mut memo = self.global.write();
            match &*memo {
                // A racing builder won with an equal-or-newer stamp.
                Some((v, a)) if *v >= version => return Ok(Arc::clone(a)),
                _ => *memo = Some((version, Arc::clone(&built))),
            }
        }
        Ok(built)
    }

    // ---- endpoints ----------------------------------------------------

    fn healthz(&self) -> Result<Value, ServeError> {
        let cache = self.cache.stats();
        let shards = self
            .set
            .shards()
            .iter()
            .map(|s| {
                // Live per-shard state: the version comes from the
                // epoch_meta probe; a shard that is out (or unreachable)
                // reports null rather than failing the endpoint.
                let version = if s.health() == ShardHealth::Healthy {
                    match s.epoch_meta() {
                        Ok(m) => Value::from(m.version),
                        Err(_) => Value::Null,
                    }
                } else {
                    Value::Null
                };
                obj! {
                    "index" => s.index(),
                    "health" => s.health().as_str(),
                    "version" => version,
                }
            })
            .collect();
        Ok(obj! {
            "ok" => true,
            "degraded" => self.set.any_unhealthy(),
            "version" => self.set.version(),
            "shards" => Value::Arr(shards),
            "cache" => obj! {
                "entries" => cache.entries,
                "bytes" => cache.bytes,
                "capacity_bytes" => cache.capacity_bytes,
            },
        })
    }

    fn stats(&self, ctx: &mut QueryCtx) -> Result<Value, ServeError> {
        let legs = self.scatter_leg(ctx, |s| s.shard_stats())?;
        let merged = merge_stats(legs.into_iter().map(|(_, v)| v));
        let mut rendered = render_stats(&merged, self.set.version());
        if let Some(o) = rendered.as_obj_mut() {
            o.insert(
                "degraded",
                Value::Bool(self.set.any_unhealthy() || !ctx.degraded.is_empty()),
            );
        }
        Ok(rendered)
    }

    fn entity(&self, ctx: &mut QueryCtx, kind: &str, id: u32) -> Result<Value, ServeError> {
        if kind != "company" && kind != "user" {
            return Err(ServeError::BadRequest(format!(
                "unknown entity kind: {kind:?} (company|user)"
            )));
        }
        let ns = if kind == "company" { NS_COMPANIES } else { NS_USERS };
        let key = format!("{kind}:{id}");
        let owner = self.set.partitioner().shard_of(ns, &key);
        self.single_shard.inc();
        let shard = self
            .set
            .shard(owner)
            .ok_or_else(|| ServeError::NotFound(key.clone()))?;
        if shard.health() != ShardHealth::Healthy {
            // The owner is out: degrade to a partial envelope instead of
            // guessing between 404 and 500.
            ctx.degraded.insert(owner);
            return Ok(obj! {"kind" => kind, "id" => u64::from(id), "body" => Value::Null});
        }
        let docs = match shard.entity_docs(std::slice::from_ref(&key)) {
            Ok(docs) => docs,
            Err(e) if e.is_transport() => {
                // The owner died between the health check and the leg:
                // same partial envelope as a flagged-down owner.
                ctx.degraded.insert(owner);
                return Ok(obj! {"kind" => kind, "id" => u64::from(id), "body" => Value::Null});
            }
            Err(e) => return Err(shard_to_serve(e)),
        };
        let body = docs
            .into_iter()
            .next()
            .flatten()
            .ok_or(ServeError::NotFound(key))?;
        Ok(obj! {"kind" => kind, "id" => u64::from(id), "body" => body})
    }

    fn portfolio(&self, ctx: &mut QueryCtx, id: u32) -> Result<Value, ServeError> {
        let artifacts = self.global_artifacts(ctx)?;
        let legs = self.scatter_leg(ctx, move |s| s.investor_edges(id))?;
        let mut found = false;
        let mut ids: Vec<u32> = Vec::new();
        for (_idx, edges) in legs {
            if let Some(companies) = edges {
                // Co-location: exactly one shard owns the investor.
                found = true;
                ids.extend(companies);
            }
        }
        if !found {
            if ctx.degraded.is_empty() {
                return Err(ServeError::NotFound(format!("investor {id}")));
            }
            return Ok(obj! {"id" => u64::from(id)});
        }
        let degree = ids.len();
        ids.sort_unstable();
        let pagerank = artifacts
            .investor_index(id)
            .and_then(|i| artifacts.pagerank.get(i as usize).copied())
            .unwrap_or(0.0);
        Ok(obj! {
            "id" => u64::from(id),
            "degree" => degree,
            "pagerank" => pagerank,
            "companies" => id_array(ids),
        })
    }

    fn investor_communities(&self, ctx: &mut QueryCtx, id: u32) -> Result<Value, ServeError> {
        let artifacts = self.global_artifacts(ctx)?;
        if artifacts.investor_index(id).is_none() {
            return Err(ServeError::NotFound(format!("investor {id}")));
        }
        let (filtered, communities) = match artifacts.investor_membership(id) {
            Some((_, cids)) => (true, cids.to_vec()),
            None => (false, Vec::new()),
        };
        Ok(obj! {
            "id" => u64::from(id),
            "in_filtered_graph" => filtered,
            "communities" => Value::Arr(communities.into_iter().map(Value::from).collect()),
        })
    }

    fn company_investors(&self, ctx: &mut QueryCtx, id: u32) -> Result<Value, ServeError> {
        let legs = self.scatter_leg(ctx, move |s| s.company_edges(id))?;
        let mut found = false;
        let mut ids: Vec<u32> = Vec::new();
        for (_idx, investors) in legs {
            if let Some(investors) = investors {
                // A company's inbound edges may span shards (its investors
                // hash independently); the slices are disjoint.
                found = true;
                ids.extend(investors);
            }
        }
        if !found {
            if ctx.degraded.is_empty() {
                return Err(ServeError::NotFound(format!("company {id}")));
            }
            return Ok(obj! {"id" => u64::from(id)});
        }
        ids.sort_unstable();
        Ok(obj! {
            "id" => u64::from(id),
            "degree" => ids.len(),
            "investors" => id_array(ids),
        })
    }

    fn communities(&self, ctx: &mut QueryCtx) -> Result<Value, ServeError> {
        let artifacts = self.global_artifacts(ctx)?;
        let list = (0..artifacts.communities.len())
            .filter_map(|i| community_summary(&artifacts, i))
            .collect();
        Ok(obj! {
            "count" => artifacts.communities.len(),
            "filtered_investors" => artifacts.filtered.investor_count(),
            "communities" => Value::Arr(list),
        })
    }

    fn community(&self, ctx: &mut QueryCtx, raw_id: &str) -> Result<Value, ServeError> {
        let id = raw_id
            .parse::<usize>()
            .map_err(|_| ServeError::BadRequest(format!("bad community id: {raw_id:?}")))?;
        let artifacts = self.global_artifacts(ctx)?;
        let (_, members) = artifacts
            .community(id)
            .ok_or_else(|| ServeError::NotFound(format!("community {id}")))?;
        let mut summary = community_summary(&artifacts, id)
            .ok_or_else(|| ServeError::NotFound(format!("community {id}")))?;
        if let Some(o) = summary.as_obj_mut() {
            o.insert("members", id_array(members));
        }
        Ok(summary)
    }

    fn top_investors(&self, ctx: &mut QueryCtx, req: &Request) -> Result<Value, ServeError> {
        let by = param(req, "by").unwrap_or_else(|| "degree".into());
        let k = match param(req, "k") {
            Some(raw) => raw
                .parse::<usize>()
                .map_err(|_| ServeError::BadRequest(format!("bad k: {raw:?}")))?,
            None => 10,
        };
        let ranked = match by.as_str() {
            // Degree is shard-local: merge per-shard top-k prefixes
            // through a bounded heap (≤ one candidate per shard).
            "degree" => {
                let legs = self.scatter_leg(ctx, move |s| s.top_k_prefix(k))?;
                let per_shard: Vec<Vec<(u32, f64)>> =
                    legs.into_iter().map(|(_, ranked)| ranked).collect();
                merge_top_k(per_shard, k)
            }
            // PageRank is a whole-graph score; rank the global artifacts
            // exactly like the unsharded service.
            "pagerank" => {
                let artifacts = self.global_artifacts(ctx)?;
                let mut ranked: Vec<(u32, f64)> = artifacts
                    .pagerank
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| (artifacts.graph.investor_id(i as u32), s))
                    .collect();
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                ranked.truncate(k);
                ranked
            }
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown ranking: {other:?} (degree|pagerank)"
                )))
            }
        };
        let rows = ranked
            .into_iter()
            .map(|(id, score)| obj! {"id" => u64::from(id), "score" => score})
            .collect();
        Ok(obj! {"by" => by, "k" => k, "investors" => Value::Arr(rows)})
    }

    fn sql_endpoint(&self, ctx: &mut QueryCtx, req: &Request) -> Result<Value, ServeError> {
        let ns = param(req, "ns")
            .ok_or_else(|| ServeError::BadRequest("missing ?ns= namespace".into()))?;
        let query_text = if req.method == "POST" && !req.body.is_empty() {
            String::from_utf8(req.body.clone())
                .map_err(|_| ServeError::BadRequest("sql body is not utf-8".into()))?
        } else {
            param(req, "q").ok_or_else(|| ServeError::BadRequest("missing ?q= query".into()))?
        };
        let parts = self
            .merged_partitions(ctx, &ns)?
            .ok_or(ServeError::Store(StoreError::NamespaceNotFound(ns)))?;
        let docs = Dataset::from_partitions(parts, self.ctx);
        let table = sql::query(&query_text, docs.map(|d| d.body))?;
        let total = table.rows.len();
        let limit = self.cfg.sql_row_limit;
        let rows = table
            .rows
            .into_iter()
            .take(limit)
            .map(Value::Arr)
            .collect();
        Ok(obj! {
            "columns" => Value::Arr(table.columns.into_iter().map(Value::from).collect()),
            "rows" => Value::Arr(rows),
            "row_count" => total,
            "truncated" => total > limit,
        })
    }
}

impl RequestHandler for Router {
    fn handle(&self, req: &Request) -> Response {
        Router::handle(self, req)
    }
}

/// Map shard-set failures onto serve statuses: store errors keep their
/// status mapping; infrastructure failures surface as 500s.
fn shard_to_serve(e: crate::error::ShardError) -> ServeError {
    match e {
        crate::error::ShardError::Store(e) => ServeError::Store(e),
        other => ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::Other,
            other.to_string(),
        )),
    }
}

/// First path segment, for span naming (`shard.stats`, `shard.sql`, …).
fn endpoint_name(path: &str) -> &str {
    let trimmed = path.trim_start_matches('/');
    let seg = trimmed.split('/').next().unwrap_or_default();
    if seg.is_empty() {
        "root"
    } else {
        seg
    }
}

/// One community rendered for listings — same shape as the unsharded
/// service's summaries.
fn community_summary(artifacts: &Artifacts, id: usize) -> Option<Value> {
    let s = artifacts.communities.get(id)?;
    Some(obj! {
        "id" => s.id,
        "size" => s.size,
        "avg_shared_investment" => opt_f64(s.avg_shared_investment),
        "shared_investor_pct" => opt_f64(s.shared_investor_pct),
    })
}

/// Heap entry for the bounded top-k merge: max-heap on score, ties broken
/// by ascending id (the unsharded sort order).
struct Ranked {
    score: f64,
    id: u32,
    shard: usize,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.id.cmp(&self.id))
    }
}

/// Merge per-shard descending-ranked prefixes into the global top `k`,
/// holding at most one candidate per shard in the heap.
fn merge_top_k(per_shard: Vec<Vec<(u32, f64)>>, k: usize) -> Vec<(u32, f64)> {
    let mut queues: Vec<VecDeque<(u32, f64)>> =
        per_shard.into_iter().map(VecDeque::from).collect();
    let mut heap: BinaryHeap<Ranked> = BinaryHeap::with_capacity(queues.len());
    for (shard, q) in queues.iter_mut().enumerate() {
        if let Some((id, score)) = q.pop_front() {
            heap.push(Ranked { score, id, shard });
        }
    }
    let mut merged = Vec::with_capacity(k.min(64));
    while merged.len() < k {
        let Some(top) = heap.pop() else { break };
        merged.push((top.id, top.score));
        if let Some(q) = queues.get_mut(top.shard) {
            if let Some((id, score)) = q.pop_front() {
                heap.push(Ranked {
                    score,
                    id,
                    shard: top.shard,
                });
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_serve::{Service, ServiceConfig};
    use crowdnet_store::Store;

    const SEED_COMPANIES: u32 = 6;

    /// Same corpus written to an unsharded store and through a shard set.
    fn seeded_pair(shards: usize) -> (Service, Router) {
        let store = Arc::new(Store::memory(4));
        let t = Telemetry::new();
        let set = Arc::new(ShardSet::memory(shards, 4, &t).unwrap());
        let mut write = |ns: &str, doc: Document| {
            store.put(ns, doc.clone()).unwrap();
            set.put(ns, doc).unwrap();
        };
        for id in 0..SEED_COMPANIES {
            write(
                NS_COMPANIES,
                Document::new(
                    format!("company:{id}"),
                    obj! {"id" => u64::from(id), "name" => format!("c{id}")},
                ),
            );
        }
        for inv in 0..9u32 {
            let companies: Vec<Value> = (0..SEED_COMPANIES)
                .filter(|c| (inv + c) % 3 != 0)
                .map(|c| Value::from(u64::from(c)))
                .collect();
            write(
                NS_USERS,
                Document::new(
                    format!("user:{}", 100 + inv),
                    obj! {
                        "id" => u64::from(100 + inv),
                        "role" => "investor",
                        "investments" => Value::Arr(companies),
                    },
                ),
            );
        }
        let service = Service::new(store, ServiceConfig::default(), Telemetry::new());
        let router = Router::new(set, RouterConfig::default(), t);
        (service, router)
    }

    fn probe_targets(service: &Service) -> Vec<String> {
        let mut targets = service.example_targets().unwrap();
        targets.extend(
            [
                "/entity/company/999",
                "/entity/planet/1",
                "/entity/company/xyz",
                "/investor/9999/portfolio",
                "/company/9999/investors",
                "/investor/9999/communities",
                "/communities/9999",
                "/top/investors?by=fame",
                "/top/investors?k=nope",
                "/top/investors?by=degree&k=3",
                "/sql?q=SELECT+1",
                "/sql?ns=angellist%2Fusers",
                "/sql?ns=ghost&q=SELECT+COUNT(*)+FROM+docs",
                "/sql?ns=angellist%2Fusers&q=NOT+SQL",
                "/no/such/route",
                "/",
            ]
            .into_iter()
            .map(String::from),
        );
        targets
    }

    #[test]
    fn sharded_responses_are_byte_identical_to_unsharded() {
        for shards in [1, 2, 4] {
            let (service, router) = seeded_pair(shards);
            for target in probe_targets(&service) {
                if target == "/healthz" {
                    continue; // healthz reports live per-shard state
                }
                let req = Request::get(&target);
                let direct = service.handle(&req);
                let routed = router.handle(&req);
                assert_eq!(
                    direct.status, routed.status,
                    "status diverged on {target} with {shards} shards"
                );
                assert_eq!(
                    direct.body, routed.body,
                    "body diverged on {target} with {shards} shards: {} vs {}",
                    String::from_utf8_lossy(&direct.body),
                    String::from_utf8_lossy(&routed.body),
                );
            }
        }
    }

    #[test]
    fn cache_serves_repeat_requests_and_invalidates_on_write() {
        let (_service, router) = seeded_pair(2);
        let t = router.telemetry.clone();
        let r1 = router.handle(&Request::get("/stats"));
        let r2 = router.handle(&Request::get("/stats"));
        assert_eq!(r1, r2);
        assert_eq!(t.counter("serve.cache.hit").value(), 1);
        router
            .set()
            .put(
                NS_COMPANIES,
                Document::new("company:77", obj! {"id" => 77u64}),
            )
            .unwrap();
        let r3 = router.handle(&Request::get("/stats"));
        assert_ne!(r1.body, r3.body, "stale stats served after a write");
    }

    #[test]
    fn killing_a_shard_degrades_instead_of_failing() {
        let (service, router) = seeded_pair(3);
        let targets = probe_targets(&service);
        router.set().kill(1).unwrap();
        for target in &targets {
            let resp = router.handle(&Request::get(target));
            assert!(
                resp.status < 500,
                "5xx on {target} with a shard down: {}",
                String::from_utf8_lossy(&resp.body)
            );
        }
        // Fan-out endpoints flag the gap.
        let stats = router.handle(&Request::get("/stats"));
        let v = Value::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(v.get("partial").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("degraded_shards")
                .and_then(Value::as_arr)
                .map(|a| a.len()),
            Some(1)
        );
        assert!(router.telemetry.counter("shard.router.partial").value() > 0);
        // Recovery restores byte-identical answers.
        router.set().recover().unwrap();
        for target in &targets {
            if target == "/healthz" {
                continue;
            }
            let req = Request::get(target);
            assert_eq!(
                service.handle(&req).body,
                router.handle(&req).body,
                "post-recovery divergence on {target}"
            );
        }
    }

    #[test]
    fn expired_deadline_yields_partial_not_error() {
        let (_service, router) = seeded_pair(2);
        // Warm the global artifacts so /stats is the only fan-out left.
        router.handle(&Request::get("/communities"));
        let req = Request {
            method: "GET".into(),
            target: "/top/investors?by=degree&k=2".into(),
            version: "HTTP/1.1".into(),
            headers: vec![("x-deadline-ms".into(), "0".into())],
            body: Vec::new(),
        };
        // A zero budget may or may not expire before dispatch on a fast
        // clock; force it by a second call after real time passes.
        std::thread::sleep(std::time::Duration::from_millis(3));
        let resp = router.handle(&req);
        assert!(resp.status == 200, "deadline produced a non-200");
    }

    #[test]
    fn transport_failures_degrade_instead_of_500() {
        use crate::backend::{EpochMeta, WriteAck, WriteOp};
        use crowdnet_store::store::NamespaceStats;

        /// A backend whose every leg fails like a dead remote process.
        struct DeadShard(usize);
        impl ShardBackend for DeadShard {
            fn index(&self) -> usize {
                self.0
            }
            fn health(&self) -> ShardHealth {
                ShardHealth::Healthy // dies between health check and leg
            }
            fn set_health(&self, _h: ShardHealth) {}
            fn epoch_meta(&self) -> Result<EpochMeta, ShardError> {
                Err(self.gone())
            }
            fn scan_partitions(
                &self,
                _ns: &str,
                _snapshot: SnapshotId,
            ) -> Result<Vec<Vec<Document>>, ShardError> {
                Err(self.gone())
            }
            fn entity_docs(&self, _keys: &[String]) -> Result<Vec<Option<Value>>, ShardError> {
                Err(self.gone())
            }
            fn investor_edges(&self, _id: u32) -> Result<Option<Vec<u32>>, ShardError> {
                Err(self.gone())
            }
            fn company_edges(&self, _id: u32) -> Result<Option<Vec<u32>>, ShardError> {
                Err(self.gone())
            }
            fn top_k_prefix(&self, _k: usize) -> Result<Vec<(u32, f64)>, ShardError> {
                Err(self.gone())
            }
            fn shard_stats(&self) -> Result<Vec<NamespaceStats>, ShardError> {
                Err(self.gone())
            }
            fn submit(&self, _op: &WriteOp) -> Result<WriteAck, ShardError> {
                Err(self.gone())
            }
            fn offload(&self, job: Job) -> Result<(), Job> {
                Err(job)
            }
            fn recover(&self) -> Result<(), ShardError> {
                Err(self.gone())
            }
        }
        impl DeadShard {
            fn gone(&self) -> ShardError {
                ShardError::Unavailable {
                    shard: self.0,
                    reason: "connection refused".into(),
                }
            }
        }

        let t = Telemetry::new();
        let healthy = crate::backend::LocalShard::open_memory(0, 2, &t).unwrap();
        let set = Arc::new(ShardSet::from_backends(
            vec![
                Arc::new(healthy) as Arc<dyn ShardBackend>,
                Arc::new(DeadShard(1)) as Arc<dyn ShardBackend>,
            ],
            &t,
        ));
        set.shard(0)
            .unwrap()
            .submit(&WriteOp::Put {
                ns: NS_USERS.into(),
                doc: Document::new(
                    "user:100",
                    obj! {"id" => 100u64, "role" => "investor", "investments" => Value::Arr(vec![Value::from(1u64)])},
                ),
            })
            .unwrap();
        let router = Router::new(set, RouterConfig::default(), t);
        for target in ["/stats", "/top/investors?by=degree&k=3", "/communities"] {
            let resp = router.handle(&Request::get(target));
            assert!(
                resp.status < 500,
                "5xx on {target} with a dead transport: {}",
                String::from_utf8_lossy(&resp.body)
            );
        }
        let stats = router.handle(&Request::get("/stats"));
        let v = Value::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(v.get("partial").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn top_k_merge_breaks_ties_by_ascending_id() {
        let merged = merge_top_k(
            vec![
                vec![(7, 3.0), (1, 2.0)],
                vec![(2, 3.0), (9, 3.0)],
                vec![],
            ],
            3,
        );
        assert_eq!(merged, vec![(2, 3.0), (7, 3.0), (9, 3.0)]);
    }
}
