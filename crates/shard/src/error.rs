//! Error type for shard-set operations.

use crowdnet_ingest::IngestError;
use crowdnet_store::StoreError;
use std::fmt;

/// Anything that can go wrong opening, writing or recovering a shard set.
/// Query-path failures surface as `crowdnet_serve::ServeError` instead so
/// the router renders the same status envelopes as the unsharded path.
#[derive(Debug)]
pub enum ShardError {
    /// A shard's underlying store failed.
    Store(StoreError),
    /// A shard's ingest engine failed to subscribe, catch up or drain.
    Ingest(IngestError),
    /// A shard index outside the set was addressed.
    NoSuchShard(usize),
    /// The shard's executor thread is gone (shutdown or panic).
    ExecutorGone(usize),
    /// The shard is unreachable: connection refused, timed out, or the
    /// connection died mid-leg. The router degrades, never 5xxes.
    Unavailable {
        /// Which shard.
        shard: usize,
        /// Human-readable transport failure.
        reason: String,
    },
    /// The wire payload of a leg failed to decode (malformed frame,
    /// unexpected shape). Counted, surfaced — never a panic.
    Protocol(String),
}

impl ShardError {
    /// True for failures of the shard's *transport*, not its data: the
    /// router records the shard degraded instead of failing the request.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            ShardError::Unavailable { .. } | ShardError::Protocol(_) | ShardError::ExecutorGone(_)
        )
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Store(e) => write!(f, "shard store: {e}"),
            ShardError::Ingest(e) => write!(f, "shard ingest: {e}"),
            ShardError::NoSuchShard(i) => write!(f, "no such shard: {i}"),
            ShardError::ExecutorGone(i) => write!(f, "shard {i} executor is gone"),
            ShardError::Unavailable { shard, reason } => {
                write!(f, "shard {shard} unavailable: {reason}")
            }
            ShardError::Protocol(m) => write!(f, "shard wire protocol: {m}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Store(e) => Some(e),
            ShardError::Ingest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> ShardError {
        ShardError::Store(e)
    }
}

impl From<IngestError> for ShardError {
    fn from(e: IngestError) -> ShardError {
        ShardError::Ingest(e)
    }
}
