//! # crowdnet-shard
//!
//! Hash-partitioned multi-shard serving: the horizontal-scale answer to
//! the serve tier's single-store ceiling (DESIGN.md §11).
//!
//! Four pieces, bottom-up:
//!
//! * [`Partitioner`] — deterministic FNV-64 placement over a document's
//!   *entity key*, namespace-aware so corpus documents about one entity
//!   co-locate. Placement is a pure function: the same hash decides
//!   where a write lands and where a query routes, with no directory.
//! * [`ShardBackend`] / [`LocalShard`] — one shard: its own store (memory
//!   or disk behind the `Vfs` seam), its own changefeed and
//!   [`IngestEngine`](crowdnet_ingest::IngestEngine) publishing per-shard
//!   [`ShardEpoch`]s, and a persistent executor thread that gives
//!   fan-outs N-way parallelism over a bounded queue. The trait surface
//!   is a set of *serializable legs* — every method takes and returns
//!   owned plain data — so `crowdnet-shardnet`'s `RemoteShard` can put
//!   the same seam on the wire and the router cannot tell the backends
//!   apart.
//! * [`ShardSet`] — the registry: opens/recovers N shards, routes writes,
//!   keeps namespaces and snapshot ids in **lockstep** across shards (the
//!   invariant every merge relies on), tracks health, and maintains the
//!   logical version an unsharded store would report.
//! * [`Router`] — scatter-gather serving: the exact route table and
//!   response envelopes of `crowdnet_serve::Service`, answered by merging
//!   per-shard results (bounded-heap top-k, associative stats, canonical
//!   re-sorted scans for SQL and artifacts) under a per-request deadline
//!   budget. A dead or recovering shard degrades responses to flagged
//!   partials instead of failing them.
//!
//! The whole surface is proptest-gated against the unsharded service:
//! for any op sequence, 1-, 2- and 4-shard deployments answer every
//! endpoint byte-identically (`tests/integration/shard_equivalence.rs`).

pub mod backend;
pub mod error;
pub mod partitioner;
pub mod router;
pub mod set;

pub use backend::{
    EpochMeta, Job, LocalShard, ShardBackend, ShardEpoch, ShardHealth, WriteAck, WriteOp,
};
pub use error::ShardError;
pub use partitioner::Partitioner;
pub use router::{Router, RouterConfig};
pub use set::{merge_stats, ShardSet};
