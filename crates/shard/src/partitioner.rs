//! Deterministic key-hash partitioner: which shard owns a document.
//!
//! Routing hashes FNV-64 over the document's **entity key** — the first
//! two `:`-separated segments of the key (`"user:10:whatever"` routes as
//! `"user:10"`), so any future per-entity satellite documents (edge
//! blocks, enrichment) co-locate with the entity that owns them. For the
//! crawled corpus this already holds structurally: an investor's edges
//! are embedded in its `user:{id}` document, so hashing the key routes an
//! entity and every edge it owns to one shard — the co-location contract
//! the router's merge semantics rely on (DESIGN.md §11).
//!
//! Corpus namespaces (`angellist/*`) share one hash domain so
//! cross-namespace documents about the same entity key the same way;
//! other namespaces mix the namespace into the hash, so two unrelated
//! key schemes spread independently.

/// FNV-1a offset basis, the store's partition hash.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Maps `(namespace, key)` to a shard index, stable across processes and
/// runs: the same function decides placement at write time and routing at
/// query time.
#[derive(Debug, Clone)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// A partitioner over `shards` shards (minimum 1).
    pub fn new(shards: usize) -> Partitioner {
        Partitioner {
            shards: shards.max(1),
        }
    }

    /// Number of shards keys spread over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` within `ns`.
    pub fn shard_of(&self, ns: &str, key: &str) -> usize {
        let mut h = FNV_BASIS;
        if !ns.starts_with("angellist/") {
            h = fnv_step(h, ns.as_bytes());
            h = fnv_step(h, &[0]);
        }
        h = fnv_step(h, entity_key(key).as_bytes());
        // FNV's low bits are weak under power-of-two shard counts (the
        // low-k-bit state evolves closed over itself); fold the high bits
        // in before reducing.
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        (h % self.shards as u64) as usize
    }
}

fn fnv_step(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The entity portion of a document key: everything before the second
/// `:`, or the whole key when it has fewer segments.
fn entity_key(key: &str) -> &str {
    match key.match_indices(':').nth(1) {
        Some((i, _)) => key.get(..i).unwrap_or(key),
        None => key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let p = Partitioner::new(4);
        for id in 0..500u32 {
            let key = format!("user:{id}");
            let s = p.shard_of("angellist/users", &key);
            assert!(s < 4);
            assert_eq!(s, p.shard_of("angellist/users", &key));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = Partitioner::new(1);
        assert_eq!(p.shard_of("angellist/users", "user:1"), 0);
        assert_eq!(p.shard_of("journal/daily", "day:9"), 0);
    }

    #[test]
    fn entity_documents_co_locate_with_their_satellites() {
        let p = Partitioner::new(8);
        for id in 0..64u32 {
            let base = p.shard_of("angellist/users", &format!("user:{id}"));
            assert_eq!(
                base,
                p.shard_of("angellist/users", &format!("user:{id}:edges:0")),
                "satellite key split from its entity"
            );
            // Corpus namespaces share one hash domain.
            assert_eq!(base, p.shard_of("angellist/companies", &format!("user:{id}")));
        }
    }

    #[test]
    fn non_corpus_namespaces_spread_independently() {
        let p = Partitioner::new(16);
        let spread: std::collections::BTreeSet<usize> = (0..64u32)
            .map(|d| p.shard_of("journal/daily", &format!("day:{d}")))
            .collect();
        assert!(spread.len() > 4, "journal keys all landed together");
        // Namespace participates in the hash outside the corpus.
        let a = (0..64u32)
            .map(|d| p.shard_of("journal/daily", &format!("day:{d}")))
            .collect::<Vec<_>>();
        let b = (0..64u32)
            .map(|d| p.shard_of("journal/weekly", &format!("day:{d}")))
            .collect::<Vec<_>>();
        assert_ne!(a, b, "distinct namespaces should key differently");
    }

    #[test]
    fn keys_spread_over_all_shards() {
        let p = Partitioner::new(4);
        let mut seen = [0usize; 4];
        for id in 0..400u32 {
            if let Some(slot) = seen.get_mut(p.shard_of("angellist/users", &format!("user:{id}"))) {
                *slot += 1;
            }
        }
        for (shard, count) in seen.iter().enumerate() {
            assert!(*count > 40, "shard {shard} got only {count}/400 keys");
        }
    }
}
