//! The shard registry: opens, writes, health-tracks and recovers N
//! shards as one logical store.
//!
//! [`ShardSet`] is the write-side and lifecycle half of the subsystem
//! (the read side is [`Router`](crate::Router)). It enforces the two
//! invariants every merge in the router relies on:
//!
//! * **Placement** — every document routes through the
//!   [`Partitioner`], so a key's documents live on exactly one shard,
//!   decided by pure hashing (no directory to keep consistent).
//! * **Snapshot lockstep** — a namespace exists on *all* shards or none,
//!   and all shards always hold the same snapshot ids for it: `put`
//!   creates a missing namespace on every shard before routing the
//!   document, and `new_snapshot` broadcasts the roll. Per-shard scans
//!   at any `SnapshotId` therefore partition the unsharded scan exactly,
//!   which is what makes scatter-gathered `/sql`, `/stats` and artifact
//!   builds byte-identical to the single-store path.
//!
//! Every interaction goes through the [`ShardBackend`] leg methods —
//! never a shard's store directly — so a set assembled from remote
//! backends ([`ShardSet::from_backends`]) behaves identically to one
//! over in-process [`LocalShard`]s.
//!
//! The set also maintains the **logical version**: one bump per logical
//! write (`put`, `new_snapshot`), mirroring what an unsharded
//! [`Store::version`](crowdnet_store::Store::version) would report for
//! the same op sequence. The router stamps its result cache and global
//! artifacts with it.

use crate::backend::{LocalShard, ShardBackend, ShardHealth, WriteOp};
use crate::error::ShardError;
use crate::partitioner::Partitioner;
use crowdnet_store::store::NamespaceStats;
use crowdnet_store::{Document, SnapshotId, Store, Vfs};
use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// N shards behind one write API, with health tracking and recovery.
pub struct ShardSet {
    shards: Vec<Arc<dyn ShardBackend>>,
    partitioner: Partitioner,
    /// Mirrors an unsharded `Store::version` for the same op sequence.
    version: AtomicU64,
    /// Namespaces known to exist on every shard (snapshot lockstep).
    namespaces: Mutex<BTreeSet<String>>,
    /// Per-shard routed-document counters (`shard.{i}.docs`).
    doc_counters: Vec<Counter>,
    puts: Counter,
    recoveries: Counter,
}

impl ShardSet {
    /// Open `n` in-memory shards, each with `partitions` store partitions.
    pub fn memory(n: usize, partitions: usize, telemetry: &Telemetry) -> Result<ShardSet, ShardError> {
        let shards = (0..n.max(1))
            .map(|i| {
                LocalShard::open_memory(i, partitions, telemetry)
                    .map(|s| Arc::new(s) as Arc<dyn ShardBackend>)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardSet::from_backends(shards, telemetry))
    }

    /// Open `n` durable shards under `root` (one `shard-{i}` subdirectory
    /// each), all on the same [`Vfs`] so fault injection reaches every
    /// shard file. Existing shard directories recover on open.
    pub fn open_durable(
        root: &Path,
        n: usize,
        partitions: usize,
        vfs: Arc<dyn Vfs>,
        telemetry: &Telemetry,
    ) -> Result<ShardSet, ShardError> {
        let shards = (0..n.max(1))
            .map(|i| {
                LocalShard::open_with_vfs(
                    i,
                    &root.join(format!("shard-{i}")),
                    partitions,
                    Arc::clone(&vfs),
                    telemetry,
                )
                .map(|s| Arc::new(s) as Arc<dyn ShardBackend>)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardSet::from_backends(shards, telemetry))
    }

    /// Assemble a set from already-opened backends (the registry seam the
    /// remote backend plugs into). Namespaces present on disk are
    /// re-learned lazily; logical version restarts at 0, like a
    /// freshly-opened store's.
    pub fn from_backends(shards: Vec<Arc<dyn ShardBackend>>, telemetry: &Telemetry) -> ShardSet {
        telemetry.counter("shard.set.opened").add(shards.len() as u64);
        let doc_counters = (0..shards.len())
            .map(|i| telemetry.counter(&format!("shard.{i}.docs")))
            .collect();
        ShardSet {
            partitioner: Partitioner::new(shards.len()),
            shards,
            version: AtomicU64::new(0),
            namespaces: Mutex::new(BTreeSet::new()),
            doc_counters,
            puts: telemetry.counter("shard.set.puts"),
            recoveries: telemetry.counter("shard.set.recoveries"),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True for an empty set (never constructed in practice; `memory` and
    /// `open_durable` clamp to at least one shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Arc<dyn ShardBackend>] {
        &self.shards
    }

    /// The shard at `index`.
    pub fn shard(&self, index: usize) -> Option<&Arc<dyn ShardBackend>> {
        self.shards.get(index)
    }

    /// The placement function.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Logical content version: what an unsharded store's version would be
    /// after the same sequence of `put`/`new_snapshot` calls.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Route one document to its owning shard's latest snapshot.
    pub fn put(&self, ns: &str, doc: Document) -> Result<(), ShardError> {
        self.ensure_namespace(ns)?;
        let idx = self.partitioner.shard_of(ns, &doc.key);
        let shard = self
            .shards
            .get(idx)
            .ok_or(ShardError::NoSuchShard(idx))?;
        shard.submit(&WriteOp::Put {
            ns: ns.to_string(),
            doc,
        })?;
        if let Some(c) = self.doc_counters.get(idx) {
            c.inc();
        }
        self.puts.inc();
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Roll a new snapshot on every shard (lockstep: all shards return the
    /// same id). On a namespace no shard has seen, this creates it with
    /// snapshot 0 everywhere — the same semantics as the unsharded store.
    pub fn new_snapshot(&self, ns: &str) -> Result<SnapshotId, ShardError> {
        let mut latest = SnapshotId(0);
        let op = WriteOp::NewSnapshot { ns: ns.to_string() };
        for shard in &self.shards {
            latest = SnapshotId(shard.submit(&op)?.snapshot);
        }
        self.namespaces.lock().insert(ns.to_string());
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(latest)
    }

    /// Create `ns` (at snapshot 0) on every shard that lacks it, keeping
    /// snapshot ids in lockstep. Not a logical write: mirrors the
    /// unsharded store creating a namespace implicitly on first put.
    fn ensure_namespace(&self, ns: &str) -> Result<(), ShardError> {
        let mut seen = self.namespaces.lock();
        if seen.contains(ns) {
            return Ok(());
        }
        let op = WriteOp::EnsureNamespace { ns: ns.to_string() };
        for shard in &self.shards {
            shard.submit(&op)?;
        }
        seen.insert(ns.to_string());
        Ok(())
    }

    /// Merged per-namespace stats across the given shards. With every
    /// shard included this is byte-identical to the unsharded
    /// `Store::stats`.
    pub fn merged_stats(
        &self,
        include: impl Fn(&Arc<dyn ShardBackend>) -> bool,
    ) -> Result<Vec<NamespaceStats>, ShardError> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter().filter(|s| include(s)) {
            per_shard.push(shard.shard_stats()?);
        }
        Ok(merge_stats(per_shard))
    }

    /// Copy every namespace, snapshot and document of `src` into the set,
    /// routing documents through the partitioner and keeping snapshot ids
    /// aligned. Documents arrive in canonical scan order, which preserves
    /// same-key append order (the store's scans are stable).
    pub fn import_store(&self, src: &Store) -> Result<(), ShardError> {
        for ns in src.namespaces()? {
            self.ensure_namespace(&ns)?;
            let latest = src.latest_snapshot(&ns)?;
            for snap in 0..=latest.0 {
                if snap > 0 {
                    self.new_snapshot(&ns)?;
                }
                for doc in src.scan_snapshot(&ns, SnapshotId(snap))? {
                    self.put(&ns, doc)?;
                }
            }
        }
        Ok(())
    }

    /// Mark a shard down (the kill switch recovery tests and the bench's
    /// degradation section flip).
    pub fn kill(&self, index: usize) -> Result<(), ShardError> {
        let shard = self
            .shards
            .get(index)
            .ok_or(ShardError::NoSuchShard(index))?;
        shard.set_health(ShardHealth::Down);
        Ok(())
    }

    /// Recover every unhealthy shard: store recovery, ingest catch-up,
    /// fresh epoch, healthy again. Healthy shards are untouched.
    pub fn recover(&self) -> Result<(), ShardError> {
        for shard in &self.shards {
            if shard.health() != ShardHealth::Healthy {
                shard.recover()?;
                self.recoveries.inc();
            }
        }
        Ok(())
    }

    /// True when any shard is not serving normally.
    pub fn any_unhealthy(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.health() != ShardHealth::Healthy)
    }
}

/// Associative merge of per-shard namespace stats: document and byte
/// counts sum; snapshot counts agree under lockstep (merged as max so a
/// recovering shard cannot drag the count down). Shared by the set and
/// the router's scattered `/stats`.
pub fn merge_stats(per_shard: impl IntoIterator<Item = Vec<NamespaceStats>>) -> Vec<NamespaceStats> {
    let mut merged: BTreeMap<String, NamespaceStats> = BTreeMap::new();
    for stats in per_shard {
        for ns in stats {
            match merged.get_mut(&ns.namespace) {
                Some(m) => {
                    m.documents += ns.documents;
                    m.encoded_bytes += ns.encoded_bytes;
                    m.snapshots = m.snapshots.max(ns.snapshots);
                }
                None => {
                    merged.insert(ns.namespace.clone(), ns);
                }
            }
        }
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_json::{obj, Value};

    const NS: &str = "angellist/users";

    fn doc(id: u32) -> Document {
        Document::new(
            format!("user:{id}"),
            obj! {"id" => u64::from(id), "role" => "investor"},
        )
    }

    /// Everything a shard holds for `ns` at `snap`, via the scan leg.
    fn shard_docs(shard: &Arc<dyn ShardBackend>, ns: &str, snap: u32) -> Vec<Document> {
        shard
            .scan_partitions(ns, SnapshotId(snap))
            .unwrap()
            .into_iter()
            .flatten()
            .collect()
    }

    /// Snapshot count of `ns` on a shard, via the stats leg.
    fn shard_snapshots(shard: &Arc<dyn ShardBackend>, ns: &str) -> usize {
        shard
            .shard_stats()
            .unwrap()
            .into_iter()
            .find(|s| s.namespace == ns)
            .map(|s| s.snapshots)
            .unwrap_or(0)
    }

    #[test]
    fn puts_route_by_partitioner_and_bump_logical_version() {
        let t = Telemetry::new();
        let set = ShardSet::memory(4, 2, &t).unwrap();
        for id in 0..40u32 {
            set.put(NS, doc(id)).unwrap();
        }
        assert_eq!(set.version(), 40);
        let mut total = 0;
        for (i, shard) in set.shards().iter().enumerate() {
            let docs = shard_docs(shard, NS, 0);
            for d in &docs {
                assert_eq!(
                    set.partitioner().shard_of(NS, &d.key),
                    i,
                    "doc {} on wrong shard",
                    d.key
                );
            }
            total += docs.len();
        }
        assert_eq!(total, 40);
        assert_eq!(t.counter("shard.set.puts").value(), 40);
        assert_eq!(t.counter("shard.set.opened").value(), 4);
    }

    #[test]
    fn namespaces_and_snapshots_stay_in_lockstep() {
        let t = Telemetry::new();
        let set = ShardSet::memory(3, 2, &t).unwrap();
        set.put(NS, doc(1)).unwrap();
        // Every shard has the namespace at snapshot 0, docs or not.
        for shard in set.shards() {
            assert_eq!(shard_snapshots(shard, NS), 1);
        }
        assert_eq!(set.new_snapshot(NS).unwrap(), SnapshotId(1));
        for shard in set.shards() {
            assert_eq!(shard_snapshots(shard, NS), 2);
        }
        // A roll on a brand-new namespace creates it everywhere at 0,
        // exactly like the unsharded store.
        assert_eq!(set.new_snapshot("journal/daily").unwrap(), SnapshotId(0));
        for shard in set.shards() {
            assert_eq!(shard_snapshots(shard, "journal/daily"), 1);
        }
        assert_eq!(set.version(), 3); // put + 2 rolls
    }

    #[test]
    fn merged_stats_match_an_unsharded_store() {
        let t = Telemetry::new();
        let set = ShardSet::memory(4, 2, &t).unwrap();
        let reference = Store::memory(2);
        for id in 0..25u32 {
            set.put(NS, doc(id)).unwrap();
            reference.put(NS, doc(id)).unwrap();
        }
        set.new_snapshot(NS).unwrap();
        reference.new_snapshot(NS).unwrap();
        for id in 100..110u32 {
            set.put(NS, doc(id)).unwrap();
            reference.put(NS, doc(id)).unwrap();
        }
        let merged = set.merged_stats(|_| true).unwrap();
        let direct = reference.stats().unwrap();
        assert_eq!(merged.len(), direct.len());
        for (m, d) in merged.iter().zip(&direct) {
            assert_eq!(m.namespace, d.namespace);
            assert_eq!(m.documents, d.documents);
            assert_eq!(m.encoded_bytes, d.encoded_bytes);
            assert_eq!(m.snapshots, d.snapshots);
        }
        assert_eq!(set.version(), reference.version());
    }

    #[test]
    fn import_reproduces_namespaces_snapshots_and_documents() {
        let t = Telemetry::new();
        let src = Store::memory(4);
        for id in 0..12u32 {
            src.put(NS, doc(id)).unwrap();
        }
        src.new_snapshot(NS).unwrap();
        for id in 50..55u32 {
            src.put(NS, doc(id)).unwrap();
        }
        src.put("journal/daily", Document::new("day:1", obj! {"n" => 1u64}))
            .unwrap();

        let set = ShardSet::memory(2, 4, &t).unwrap();
        set.import_store(&src).unwrap();
        for ns in src.namespaces().unwrap() {
            assert_eq!(
                src.latest_snapshot(&ns).unwrap().0 as usize + 1,
                set.shards()
                    .iter()
                    .map(|s| shard_snapshots(s, &ns))
                    .max()
                    .unwrap()
            );
            for snap in 0..=src.latest_snapshot(&ns).unwrap().0 {
                let mut gathered: Vec<Document> = Vec::new();
                for shard in set.shards() {
                    gathered.extend(shard_docs(shard, &ns, snap));
                }
                gathered.sort_by(|a, b| a.key.cmp(&b.key));
                let mut source = src.scan_snapshot(&ns, SnapshotId(snap)).unwrap();
                source.sort_by(|a, b| a.key.cmp(&b.key));
                assert_eq!(gathered.len(), source.len());
                for (g, s) in gathered.iter().zip(&source) {
                    assert_eq!(g.key, s.key);
                    assert_eq!(g.body, s.body);
                }
            }
        }
    }

    #[test]
    fn kill_and_recover_round_trip() {
        let t = Telemetry::new();
        let set = ShardSet::memory(3, 2, &t).unwrap();
        set.put(NS, doc(1)).unwrap();
        assert!(!set.any_unhealthy());
        set.kill(1).unwrap();
        assert!(set.any_unhealthy());
        assert!(set.kill(99).is_err());
        set.recover().unwrap();
        assert!(!set.any_unhealthy());
        assert_eq!(t.counter("shard.set.recoveries").value(), 1);
    }
}
