//! The shard-server request handler: [`LocalShard`] legs exposed over
//! the crowdnet-serve front end.
//!
//! [`ShardServer`] plugs into [`Server::with_handler`] exactly like the
//! single-store `Service`, so the out-of-process tier inherits the front
//! end's admission control, deadlines, read timeouts and bounded
//! keep-alive for free. Every leg is `POST /shard/<leg>` with a wire
//! frame (see [`wire`](crate::wire)) in both directions.
//!
//! Leg calls always answer HTTP 200 — logical failures travel inside the
//! `{"ok":false,…}` envelope so the client can tell "the shard ran the
//! leg and it failed" (propagate) from "the exchange itself broke"
//! (degrade). Only non-leg conditions use HTTP statuses: unknown paths
//! 404, wrong method 405. A malformed frame is counted
//! (`shardnet.frames.malformed`), never silently dropped, and answered
//! with a `protocol`-kind envelope that decodes as a transport fault on
//! the far side.

use std::sync::Arc;

use crowdnet_json::{obj, Value};
use crowdnet_serve::http::{Request, Response};
use crowdnet_serve::server::RequestHandler;
use crowdnet_shard::{LocalShard, ShardBackend, ShardError};
use crowdnet_store::SnapshotId;
use crowdnet_telemetry::{Counter, Telemetry};

use crate::wire;

/// Request handler serving one shard's legs over the wire protocol.
pub struct ShardServer {
    shard: Arc<LocalShard>,
    requests: Counter,
    errors: Counter,
    malformed: Counter,
}

impl ShardServer {
    /// Wrap a local shard for serving.
    pub fn new(shard: Arc<LocalShard>, telemetry: &Telemetry) -> ShardServer {
        ShardServer {
            shard,
            requests: telemetry.counter("shardnet.server.requests"),
            errors: telemetry.counter("shardnet.server.errors"),
            malformed: telemetry.counter("shardnet.frames.malformed"),
        }
    }

    /// The shard behind this server (tests use it to cross-check state).
    pub fn shard(&self) -> &Arc<LocalShard> {
        &self.shard
    }

    /// Decode the request frame, run the leg, wrap the outcome. All
    /// failure routes produce an envelope; nothing here may panic.
    fn run_leg(&self, leg: &str, body: &[u8]) -> Value {
        let params = match wire::decode_frame(body) {
            Ok(v) => v,
            Err(e) => {
                self.malformed.inc();
                self.errors.inc();
                return wire::err_envelope(&ShardError::Protocol(format!(
                    "malformed request frame: {e}"
                )));
            }
        };
        match self.dispatch(leg, &params) {
            Ok(result) => wire::ok_envelope(result),
            Err(e) => {
                self.errors.inc();
                if matches!(e, ShardError::Protocol(_)) {
                    self.malformed.inc();
                }
                wire::err_envelope(&e)
            }
        }
    }

    /// Route one leg name to the backend call it names.
    fn dispatch(&self, leg: &str, params: &Value) -> Result<Value, ShardError> {
        let backend: &dyn ShardBackend = self.shard.as_ref();
        match leg {
            "epoch_meta" => Ok(wire::meta_to_value(&backend.epoch_meta()?)),
            "scan_partitions" => {
                let ns = str_param(params, "ns")?;
                let snapshot = u64_param(params, "snapshot")? as u32;
                let parts = backend.scan_partitions(ns, SnapshotId(snapshot))?;
                Ok(wire::partitions_to_value(&parts))
            }
            "entity_docs" => {
                let keys = params
                    .get("keys")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| bad_params("entity_docs needs keys: [string]"))?
                    .iter()
                    .map(|k| {
                        k.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad_params("entity key is not a string"))
                    })
                    .collect::<Result<Vec<String>, ShardError>>()?;
                Ok(wire::docs_to_value(&backend.entity_docs(&keys)?))
            }
            "investor_edges" => {
                let id = u64_param(params, "id")? as u32;
                Ok(wire::edges_to_value(&backend.investor_edges(id)?))
            }
            "company_edges" => {
                let id = u64_param(params, "id")? as u32;
                Ok(wire::edges_to_value(&backend.company_edges(id)?))
            }
            "top_k_prefix" => {
                let k = u64_param(params, "k")? as usize;
                Ok(wire::ranked_to_value(&backend.top_k_prefix(k)?))
            }
            "shard_stats" => Ok(wire::stats_to_value(&backend.shard_stats()?)),
            "submit" => {
                let op = wire::write_op_from_value(params).map_err(|e| bad_params(&e))?;
                Ok(wire::ack_to_value(&backend.submit(&op)?))
            }
            "recover" => {
                backend.recover()?;
                Ok(Value::Null)
            }
            other => Err(bad_params(&format!("unknown leg: {other:?}"))),
        }
    }
}

/// A request that parsed as JSON but doesn't fit the leg's schema.
fn bad_params(msg: &str) -> ShardError {
    ShardError::Protocol(msg.to_string())
}

fn str_param<'a>(params: &'a Value, name: &str) -> Result<&'a str, ShardError> {
    params
        .get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| bad_params(&format!("leg params missing string {name:?}")))
}

fn u64_param(params: &Value, name: &str) -> Result<u64, ShardError> {
    params
        .get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| bad_params(&format!("leg params missing number {name:?}")))
}

impl RequestHandler for ShardServer {
    fn handle(&self, req: &Request) -> Response {
        self.requests.inc();
        let leg = match req.path().strip_prefix("/shard/") {
            Some(leg) if !leg.is_empty() => leg,
            _ if req.path() == "/healthz" => {
                // Plain-JSON liveness probe for supervisors and humans;
                // leg traffic never uses it.
                return Response::json(200, &obj! {"ok" => true, "shard" => self.shard.index()});
            }
            _ => {
                self.errors.inc();
                return Response::error(404, "unknown path; legs live under /shard/<leg>");
            }
        };
        if req.method != "POST" {
            self.errors.inc();
            return Response::error(405, "legs are POST-only");
        }
        let envelope = self.run_leg(leg, &req.body);
        Response {
            status: 200,
            headers: Vec::new(),
            body: wire::encode_frame(&envelope),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_shard::WriteOp;
    use crowdnet_store::Document;

    fn server() -> ShardServer {
        let telemetry = Telemetry::new();
        let shard = Arc::new(LocalShard::open_memory(1, 4, &telemetry).unwrap());
        let server = ShardServer::new(shard, &telemetry);
        server
            .shard()
            .submit(&WriteOp::Put {
                ns: "angellist/users".into(),
                doc: Document::new("user:7", obj! {"id" => 7u64}),
            })
            .unwrap();
        server
    }

    fn leg(server: &ShardServer, leg: &str, params: Value) -> Value {
        let mut req = Request::get(&format!("/shard/{leg}"));
        req.method = "POST".into();
        req.body = wire::encode_frame(&params);
        let resp = server.handle(&req);
        assert_eq!(resp.status, 200, "leg {leg} answered {}", resp.status);
        wire::decode_frame(&resp.body).unwrap()
    }

    #[test]
    fn legs_round_trip_through_http() {
        let s = server();
        let meta = wire::open_envelope(leg(&s, "epoch_meta", obj! {})).unwrap();
        let meta = wire::meta_from_value(&meta).unwrap();
        assert_eq!(meta.index, 1);

        let parts = wire::open_envelope(leg(
            &s,
            "scan_partitions",
            obj! {"ns" => "angellist/users", "snapshot" => 0u64},
        ))
        .unwrap();
        let parts = wire::partitions_from_value(&parts).unwrap();
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1);

        let docs = wire::open_envelope(leg(
            &s,
            "entity_docs",
            obj! {"keys" => Value::Arr(vec![Value::from("user:7"), Value::from("user:8")])},
        ))
        .unwrap();
        let docs = wire::docs_from_value(&docs).unwrap();
        assert!(docs[0].is_some() && docs[1].is_none());
    }

    #[test]
    fn logical_errors_travel_in_the_envelope_not_http_status() {
        let s = server();
        let envelope = leg(&s, "scan_partitions", obj! {"ns" => "ghost", "snapshot" => 0u64});
        match wire::open_envelope(envelope) {
            Err(e) => assert!(!e.is_transport(), "namespace miss became transport: {e}"),
            Ok(v) => panic!("missing namespace answered ok: {v:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_counted_and_answered_as_protocol_errors() {
        let telemetry = Telemetry::new();
        let shard = Arc::new(LocalShard::open_memory(0, 2, &telemetry).unwrap());
        let s = ShardServer::new(shard, &telemetry);

        let mut req = Request::get("/shard/epoch_meta");
        req.method = "POST".into();
        req.body = b"\x00\x00\x00\xffnot a frame".to_vec();
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200);
        match wire::decode_frame(&resp.body).map(wire::open_envelope) {
            Ok(Err(e)) => assert!(e.is_transport(), "expected protocol fault, got {e}"),
            other => panic!("malformed frame answered {other:?}"),
        }
        let counters = telemetry.registry().counter_values();
        let count = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(count("shardnet.frames.malformed"), 1);
        assert_eq!(count("shardnet.server.errors"), 1);
    }

    #[test]
    fn unknown_paths_and_methods_use_http_statuses() {
        let s = server();
        assert_eq!(s.handle(&Request::get("/nope")).status, 404);
        assert_eq!(s.handle(&Request::get("/shard/epoch_meta")).status, 405);
        assert_eq!(s.handle(&Request::get("/healthz")).status, 200);
    }
}
