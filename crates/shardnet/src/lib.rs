//! # crowdnet-shardnet
//!
//! The out-of-process shard tier: everything needed to move a shard of
//! the serving fleet into its own process without the router noticing.
//!
//! PR 7 split the serving path into a scatter-gather [`Router`] over
//! [`ShardBackend`] legs — plain request/response methods over owned
//! data, no shared store handles. This crate is the payoff of that seam:
//!
//! * [`wire`] — the leg wire protocol: 4-byte length-prefixed JSON
//!   frames, an `{"ok":…}` reply envelope whose logical errors
//!   (`namespace_not_found`, `snapshot_not_found`) round-trip with
//!   structure, and a defensive client-side HTTP response parser.
//! * [`ShardServer`] — a `RequestHandler` serving a [`LocalShard`]'s
//!   legs as `POST /shard/<leg>` through the crowdnet-serve front end,
//!   inheriting its admission control and bounded keep-alive.
//! * [`RemoteShard`] — the client half: a pooled, deadline-budgeted
//!   `ShardBackend` with seeded retry-with-backoff on idempotent legs
//!   only, that degrades the shard (never 5xxs the request) when the
//!   transport fails and probes its way back to Healthy after a restart.
//! * [`ProcessSupervisor`] — test harness for real process death: spawn
//!   `repro shard-server`, SIGKILL it mid-traffic, restart it on a fresh
//!   port.
//!
//! The contract the integration suite enforces: `repro serve --shards N
//! --remote` answers byte-identically to the in-process shard tier and
//! to the unsharded service, and a SIGKILLed shard yields flagged
//! `"partial": true` responses — zero 5xx — until its replacement is
//! probed back in.
//!
//! [`Router`]: crowdnet_shard::Router
//! [`LocalShard`]: crowdnet_shard::LocalShard
//! [`ShardBackend`]: crowdnet_shard::ShardBackend

pub mod breaker;
pub mod client;
pub mod server;
pub mod supervisor;
pub mod wire;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Verdict};
pub use client::{RemoteShard, RemoteShardConfig};
pub use server::ShardServer;
pub use supervisor::{ProcessSupervisor, LISTEN_PREFIX};
