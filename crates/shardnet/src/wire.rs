//! The leg wire format: length-prefixed JSON frames inside HTTP bodies.
//!
//! Every [`ShardBackend`](crowdnet_shard::ShardBackend) leg crosses the
//! wire as one `POST /shard/<leg>` exchange. Both the request body and
//! the response body are a **frame**: a 4-byte big-endian length prefix
//! followed by exactly that many bytes of UTF-8 JSON. The prefix makes
//! truncation detectable (a frame shorter than its header claims is
//! malformed, not silently partial) and leaves room to grow the envelope
//! without renegotiating HTTP framing.
//!
//! Reply JSON is an envelope: `{"ok":true,"result":…}` on success,
//! `{"ok":false,"error":{"kind":…}}` on failure. Logical errors round-trip
//! with enough structure for the router's invariants — in particular
//! `namespace_not_found` must come back as
//! [`StoreError::NamespaceNotFound`] because the snapshot-lockstep rule
//! ("a namespace exists on every shard or none") detects absence through
//! that exact variant. Everything that fails *before* a well-formed
//! envelope arrives (TCP reset, timeout, short frame, bad JSON, bad
//! envelope shape) is a transport error: the client degrades the shard
//! and never surfaces a 5xx.
//!
//! Decoding is defensive end to end — arbitrary byte splits, truncations
//! and mutations of any frame must produce an error value, never a panic
//! (property-tested in `tests/proptest_wire.rs`).

use crowdnet_json::{obj, Value};
use crowdnet_shard::{EpochMeta, ShardError, WriteAck, WriteOp};
use crowdnet_store::store::NamespaceStats;
use crowdnet_store::{Document, StoreError};

/// Frame length prefix, bytes.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Hard cap on one frame's JSON payload. Scan legs ship a shard's slice
/// of a namespace, so this is generous; anything larger is a protocol
/// violation, not a bigger buffer.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Cap on an HTTP response head the client will buffer.
pub const MAX_RESPONSE_HEAD_BYTES: usize = 32 * 1024;

/// Encode a JSON value as one wire frame.
pub fn encode_frame(value: &Value) -> Vec<u8> {
    let json = value.to_compact().into_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + json.len());
    out.extend_from_slice(&(json.len() as u32).to_be_bytes());
    out.extend_from_slice(&json);
    out
}

/// Decode one complete frame. The buffer must contain exactly the frame:
/// header, payload, nothing else. Every failure is a message, no panics.
pub fn decode_frame(bytes: &[u8]) -> Result<Value, String> {
    let header: [u8; FRAME_HEADER_BYTES] = bytes
        .get(..FRAME_HEADER_BYTES)
        .and_then(|h| h.try_into().ok())
        .ok_or_else(|| format!("frame shorter than its {FRAME_HEADER_BYTES}-byte header"))?;
    let declared = u32::from_be_bytes(header) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(format!("frame declares {declared} bytes (cap {MAX_FRAME_BYTES})"));
    }
    let payload = bytes
        .get(FRAME_HEADER_BYTES..)
        .ok_or_else(|| "frame missing payload".to_string())?;
    if payload.len() != declared {
        return Err(format!(
            "frame declares {declared} payload bytes but carries {}",
            payload.len()
        ));
    }
    let text = std::str::from_utf8(payload).map_err(|_| "frame payload is not utf-8".to_string())?;
    Value::parse(text).map_err(|e| format!("frame payload is not json: {e}"))
}

// ---- reply envelope ---------------------------------------------------

/// Wrap a successful leg result.
pub fn ok_envelope(result: Value) -> Value {
    obj! {"ok" => true, "result" => result}
}

/// Wrap a leg failure.
pub fn err_envelope(error: &ShardError) -> Value {
    obj! {"ok" => false, "error" => error_to_value(error)}
}

/// Unwrap a reply envelope into the leg's result or its logical error.
/// A malformed envelope is a *transport* failure ([`ShardError::Protocol`]).
pub fn open_envelope(envelope: Value) -> Result<Value, ShardError> {
    match envelope.get("ok").and_then(Value::as_bool) {
        Some(true) => match envelope.get("result") {
            Some(r) => Ok(r.clone()),
            None => Err(ShardError::Protocol("ok envelope without result".into())),
        },
        Some(false) => match envelope.get("error") {
            Some(e) => Err(error_from_value(e)),
            None => Err(ShardError::Protocol("error envelope without error".into())),
        },
        None => Err(ShardError::Protocol("envelope without ok flag".into())),
    }
}

/// Serialize a leg failure. Only the variants the router's merge logic
/// dispatches on keep structure; the rest collapse to their message.
fn error_to_value(e: &ShardError) -> Value {
    match e {
        ShardError::Store(StoreError::NamespaceNotFound(ns)) => {
            obj! {"kind" => "namespace_not_found", "namespace" => ns.as_str()}
        }
        ShardError::Store(StoreError::SnapshotNotFound { namespace, snapshot }) => {
            obj! {
                "kind" => "snapshot_not_found",
                "namespace" => namespace.as_str(),
                "snapshot" => u64::from(*snapshot),
            }
        }
        ShardError::Protocol(message) => {
            obj! {"kind" => "protocol", "message" => message.as_str()}
        }
        other => obj! {"kind" => "other", "message" => other.to_string()},
    }
}

/// Deserialize a leg failure. Unknown kinds come back as opaque
/// non-transport errors — a *logical* failure on the far side must stay
/// logical here, or the router would mask data errors as degradation.
fn error_from_value(v: &Value) -> ShardError {
    let kind = v.get("kind").and_then(Value::as_str).unwrap_or("other");
    match kind {
        "namespace_not_found" => {
            let ns = v
                .get("namespace")
                .and_then(Value::as_str)
                .unwrap_or_default();
            ShardError::Store(StoreError::NamespaceNotFound(ns.to_string()))
        }
        "snapshot_not_found" => ShardError::Store(StoreError::SnapshotNotFound {
            namespace: v
                .get("namespace")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            snapshot: v.get("snapshot").and_then(Value::as_u64).unwrap_or(0) as u32,
        }),
        // The far side rejected our *frame* — that is a transport fault
        // (degrade the shard), not a data error to surface to the client.
        "protocol" => ShardError::Protocol(
            v.get("message")
                .and_then(Value::as_str)
                .unwrap_or("remote protocol error")
                .to_string(),
        ),
        _ => {
            let message = v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("unknown remote error");
            ShardError::Store(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::Other,
                format!("remote shard: {message}"),
            )))
        }
    }
}

// ---- leg payload codecs ----------------------------------------------

/// `{key, body}`.
pub fn document_to_value(doc: &Document) -> Value {
    obj! {"key" => doc.key.as_str(), "body" => doc.body.clone()}
}

/// Inverse of [`document_to_value`].
pub fn document_from_value(v: &Value) -> Result<Document, String> {
    let key = v
        .get("key")
        .and_then(Value::as_str)
        .ok_or("document without key")?;
    let body = v.get("body").ok_or("document without body")?;
    Ok(Document::new(key, body.clone()))
}

/// Partition-ordered document slices → `[[doc, …], …]`.
pub fn partitions_to_value(parts: &[Vec<Document>]) -> Value {
    Value::Arr(
        parts
            .iter()
            .map(|docs| Value::Arr(docs.iter().map(document_to_value).collect()))
            .collect(),
    )
}

/// Inverse of [`partitions_to_value`].
pub fn partitions_from_value(v: &Value) -> Result<Vec<Vec<Document>>, String> {
    v.as_arr()
        .ok_or("partitions is not an array")?
        .iter()
        .map(|part| {
            part.as_arr()
                .ok_or_else(|| "partition is not an array".to_string())?
                .iter()
                .map(document_from_value)
                .collect()
        })
        .collect()
}

/// [`EpochMeta`] → flat object.
pub fn meta_to_value(m: &EpochMeta) -> Value {
    obj! {
        "index" => m.index,
        "version" => m.version,
        "partitions" => m.partitions,
        "investors" => m.investors,
        "companies" => m.companies,
        "entities" => m.entities,
    }
}

/// Inverse of [`meta_to_value`].
pub fn meta_from_value(v: &Value) -> Result<EpochMeta, String> {
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("epoch meta missing {name}"))
    };
    Ok(EpochMeta {
        index: field("index")? as usize,
        version: field("version")?,
        partitions: field("partitions")? as usize,
        investors: field("investors")? as usize,
        companies: field("companies")? as usize,
        entities: field("entities")? as usize,
    })
}

/// Per-namespace stats → `[{namespace, documents, encoded_bytes, snapshots}, …]`.
pub fn stats_to_value(stats: &[NamespaceStats]) -> Value {
    Value::Arr(
        stats
            .iter()
            .map(|s| {
                obj! {
                    "namespace" => s.namespace.as_str(),
                    "documents" => s.documents,
                    "encoded_bytes" => s.encoded_bytes,
                    "snapshots" => s.snapshots,
                }
            })
            .collect(),
    )
}

/// Inverse of [`stats_to_value`].
pub fn stats_from_value(v: &Value) -> Result<Vec<NamespaceStats>, String> {
    v.as_arr()
        .ok_or("stats is not an array")?
        .iter()
        .map(|s| {
            let namespace = s
                .get("namespace")
                .and_then(Value::as_str)
                .ok_or("stats entry without namespace")?;
            let num = |name: &str| -> Result<usize, String> {
                s.get(name)
                    .and_then(Value::as_u64)
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("stats entry missing {name}"))
            };
            Ok(NamespaceStats {
                namespace: namespace.to_string(),
                documents: num("documents")?,
                encoded_bytes: num("encoded_bytes")?,
                snapshots: num("snapshots")?,
            })
        })
        .collect()
}

/// [`WriteOp`] → tagged object.
pub fn write_op_to_value(op: &WriteOp) -> Value {
    match op {
        WriteOp::Put { ns, doc } => {
            obj! {"op" => "put", "ns" => ns.as_str(), "doc" => document_to_value(doc)}
        }
        WriteOp::NewSnapshot { ns } => obj! {"op" => "new_snapshot", "ns" => ns.as_str()},
        WriteOp::EnsureNamespace { ns } => obj! {"op" => "ensure_namespace", "ns" => ns.as_str()},
    }
}

/// Inverse of [`write_op_to_value`].
pub fn write_op_from_value(v: &Value) -> Result<WriteOp, String> {
    let op = v.get("op").and_then(Value::as_str).ok_or("write without op tag")?;
    let ns = v
        .get("ns")
        .and_then(Value::as_str)
        .ok_or("write without ns")?
        .to_string();
    match op {
        "put" => {
            let doc = document_from_value(v.get("doc").ok_or("put without doc")?)?;
            Ok(WriteOp::Put { ns, doc })
        }
        "new_snapshot" => Ok(WriteOp::NewSnapshot { ns }),
        "ensure_namespace" => Ok(WriteOp::EnsureNamespace { ns }),
        other => Err(format!("unknown write op: {other:?}")),
    }
}

/// [`WriteAck`] → `{snapshot, created}`.
pub fn ack_to_value(ack: &WriteAck) -> Value {
    obj! {"snapshot" => u64::from(ack.snapshot), "created" => ack.created}
}

/// Inverse of [`ack_to_value`].
pub fn ack_from_value(v: &Value) -> Result<WriteAck, String> {
    Ok(WriteAck {
        snapshot: v
            .get("snapshot")
            .and_then(Value::as_u64)
            .ok_or("ack without snapshot")? as u32,
        created: v
            .get("created")
            .and_then(Value::as_bool)
            .ok_or("ack without created")?,
    })
}

/// Shard-local degree ranking → `[[id, score], …]`.
pub fn ranked_to_value(ranked: &[(u32, f64)]) -> Value {
    Value::Arr(
        ranked
            .iter()
            .map(|&(id, score)| {
                Value::Arr(vec![Value::from(u64::from(id)), Value::from(score)])
            })
            .collect(),
    )
}

/// Inverse of [`ranked_to_value`].
pub fn ranked_from_value(v: &Value) -> Result<Vec<(u32, f64)>, String> {
    v.as_arr()
        .ok_or("ranking is not an array")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().ok_or("ranking entry is not a pair")?;
            let id = pair
                .first()
                .and_then(Value::as_u64)
                .ok_or("ranking entry without id")?;
            let score = pair
                .get(1)
                .and_then(Value::as_f64)
                .ok_or("ranking entry without score")?;
            Ok((id as u32, score))
        })
        .collect()
}

/// Per-key lookup results → `[null | {"doc": body}, …]`. The wrapper
/// object keeps "key absent on this shard" (`null`) distinct from "key
/// present with a null body".
pub fn docs_to_value(docs: &[Option<Value>]) -> Value {
    Value::Arr(
        docs.iter()
            .map(|d| match d {
                None => Value::Null,
                Some(body) => obj! {"doc" => body.clone()},
            })
            .collect(),
    )
}

/// Inverse of [`docs_to_value`].
pub fn docs_from_value(v: &Value) -> Result<Vec<Option<Value>>, String> {
    v.as_arr()
        .ok_or("docs is not an array")?
        .iter()
        .map(|d| match d {
            Value::Null => Ok(None),
            _ => d
                .get("doc")
                .cloned()
                .map(Some)
                .ok_or_else(|| "doc entry without doc field".to_string()),
        })
        .collect()
}

/// Optional edge list → `null` (not on this shard) or `[id, …]`.
pub fn edges_to_value(edges: &Option<Vec<u32>>) -> Value {
    match edges {
        None => Value::Null,
        Some(ids) => Value::Arr(ids.iter().map(|&i| Value::from(u64::from(i))).collect()),
    }
}

/// Inverse of [`edges_to_value`].
pub fn edges_from_value(v: &Value) -> Result<Option<Vec<u32>>, String> {
    match v {
        Value::Null => Ok(None),
        _ => v
            .as_arr()
            .ok_or("edges is neither null nor an array".to_string())?
            .iter()
            .map(|id| {
                id.as_u64()
                    .map(|i| i as u32)
                    .ok_or_else(|| "edge id is not a number".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()
            .map(Some),
    }
}

// ---- client-side HTTP response parsing --------------------------------

/// One parsed HTTP response off a leg connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
    /// Whether the server announced the connection stays open
    /// (`Connection: keep-alive`) — pool it only then.
    pub keep_alive: bool,
}

/// Incremental HTTP/1.1 *response* parser for the client side of a leg:
/// status line, headers, `Content-Length`-framed body. As defensive as
/// the serve crate's request parser — bounded head, bounded body, every
/// malformation an error value. Bytes beyond the first response stay
/// buffered (keep-alive reuse).
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
}

impl ResponseParser {
    /// Fresh parser with an empty buffer.
    pub fn new() -> ResponseParser {
        ResponseParser::default()
    }

    /// Append newly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Try to parse one complete response from everything fed so far.
    /// `Ok(None)` means "incomplete — feed more"; errors are terminal for
    /// the connection.
    pub fn poll(&mut self) -> Result<Option<WireResponse>, String> {
        let head_end = match find_blank_line(&self.buf) {
            Some(e) => e,
            None if self.buf.len() > MAX_RESPONSE_HEAD_BYTES => {
                return Err("response head too large".into())
            }
            None => return Ok(None),
        };
        if head_end.head_len > MAX_RESPONSE_HEAD_BYTES {
            return Err("response head too large".into());
        }
        let head = std::str::from_utf8(self.buf.get(..head_end.head_len).unwrap_or_default())
            .map_err(|_| "response head is not utf-8".to_string())?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let status_line = lines.next().ok_or("empty response head")?;
        let status = parse_status_line(status_line)?;
        let mut content_length: Option<usize> = None;
        let mut keep_alive = false;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| format!("response header without colon: {line:?}"))?;
            if name.eq_ignore_ascii_case("content-length") {
                let n = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length: {value:?}"))?;
                content_length = Some(n);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value
                    .split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("keep-alive"));
            }
        }
        let content_length = content_length.ok_or("response without content-length")?;
        if content_length > MAX_FRAME_BYTES + FRAME_HEADER_BYTES {
            return Err(format!("response body of {content_length} bytes exceeds the frame cap"));
        }
        let total = head_end.body_start + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self
            .buf
            .get(head_end.body_start..total)
            .unwrap_or_default()
            .to_vec();
        self.buf.drain(..total);
        Ok(Some(WireResponse {
            status,
            body,
            keep_alive,
        }))
    }
}

struct BlankLine {
    head_len: usize,
    body_start: usize,
}

/// Find the blank line ending the head; accepts `\r\n\r\n` and bare-`\n`
/// variants, mirroring the request parser.
fn find_blank_line(buf: &[u8]) -> Option<BlankLine> {
    let mut i = 0;
    while i < buf.len() {
        if buf.get(i) != Some(&b'\n') {
            i += 1;
            continue;
        }
        if buf.get(i + 1) == Some(&b'\n') {
            return Some(BlankLine {
                head_len: i,
                body_start: i + 2,
            });
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some(BlankLine {
                head_len: i,
                body_start: i + 3,
            });
        }
        i += 1;
    }
    None
}

fn parse_status_line(line: &str) -> Result<u16, String> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let version = parts.next().ok_or("empty status line")?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(format!("unsupported response version: {version:?}"));
    }
    let code = parts
        .next()
        .ok_or_else(|| format!("status line without code: {line:?}"))?;
    code.parse::<u16>()
        .map_err(|_| format!("bad status code: {code:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = obj! {"ok" => true, "result" => obj! {"n" => 42u64}};
        let frame = encode_frame(&v);
        assert_eq!(decode_frame(&frame).unwrap(), v);
    }

    #[test]
    fn truncated_and_padded_frames_are_errors() {
        let frame = encode_frame(&obj! {"a" => 1u64});
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = frame.clone();
        padded.push(b'x');
        assert!(decode_frame(&padded).is_err());
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_be_bytes());
        frame.extend_from_slice(b"{}");
        let e = decode_frame(&frame).unwrap_err();
        assert!(e.contains("cap"), "{e}");
    }

    #[test]
    fn envelope_round_trips_results_and_errors() {
        let ok = open_envelope(ok_envelope(Value::from(7u64))).unwrap();
        assert_eq!(ok, Value::from(7u64));
        let err = ShardError::Store(StoreError::NamespaceNotFound("ghost".into()));
        match open_envelope(err_envelope(&err)) {
            Err(ShardError::Store(StoreError::NamespaceNotFound(ns))) => assert_eq!(ns, "ghost"),
            other => panic!("lost the namespace_not_found structure: {other:?}"),
        }
        let opaque = ShardError::NoSuchShard(3);
        match open_envelope(err_envelope(&opaque)) {
            Err(e) => assert!(!e.is_transport(), "logical error became transport: {e}"),
            Ok(v) => panic!("error envelope decoded as ok: {v:?}"),
        }
    }

    #[test]
    fn write_ops_and_acks_round_trip() {
        for op in [
            WriteOp::Put {
                ns: "angellist/users".into(),
                doc: Document::new("user:7", obj! {"id" => 7u64}),
            },
            WriteOp::NewSnapshot { ns: "journal/daily".into() },
            WriteOp::EnsureNamespace { ns: "journal/daily".into() },
        ] {
            let rt = write_op_from_value(&write_op_to_value(&op)).unwrap();
            assert_eq!(rt, op);
        }
        let ack = WriteAck { snapshot: 3, created: true };
        assert_eq!(ack_from_value(&ack_to_value(&ack)).unwrap(), ack);
    }

    #[test]
    fn leg_payloads_round_trip() {
        let meta = EpochMeta {
            index: 2,
            version: 9,
            partitions: 4,
            investors: 10,
            companies: 5,
            entities: 15,
        };
        assert_eq!(meta_from_value(&meta_to_value(&meta)).unwrap(), meta);

        let parts = vec![
            vec![Document::new("a", obj! {"x" => 1u64})],
            vec![],
            vec![Document::new("b", Value::Null), Document::new("c", obj! {})],
        ];
        assert_eq!(partitions_from_value(&partitions_to_value(&parts)).unwrap(), parts);

        let stats = vec![NamespaceStats {
            namespace: "angellist/users".into(),
            documents: 12,
            encoded_bytes: 340,
            snapshots: 2,
        }];
        assert_eq!(stats_from_value(&stats_to_value(&stats)).unwrap(), stats);

        let ranked = vec![(7u32, 3.0f64), (2, 1.0)];
        assert_eq!(ranked_from_value(&ranked_to_value(&ranked)).unwrap(), ranked);

        for edges in [None, Some(vec![]), Some(vec![4u32, 1])] {
            assert_eq!(edges_from_value(&edges_to_value(&edges)).unwrap(), edges);
        }

        // A present-but-null body must not collapse into "absent".
        let docs = vec![None, Some(Value::Null), Some(obj! {"id" => 3u64})];
        assert_eq!(docs_from_value(&docs_to_value(&docs)).unwrap(), docs);
    }

    #[test]
    fn response_parser_handles_split_reads_and_reuse() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhelloHTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";
        let mut p = ResponseParser::new();
        for chunk in wire.chunks(7) {
            p.feed(chunk);
        }
        let first = p.poll().unwrap().unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, b"hello");
        assert!(first.keep_alive);
        let second = p.poll().unwrap().unwrap();
        assert_eq!(second.body, b"ok");
        assert!(!second.keep_alive);
        assert_eq!(p.poll().unwrap(), None);
    }

    #[test]
    fn malformed_responses_are_errors_not_panics() {
        for wire in [
            &b"NOT HTTP\r\n\r\n"[..],
            b"HTTP/1.1\r\n\r\n",
            b"HTTP/1.1 abc OK\r\n\r\n",
            b"HTTP/2 200 OK\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nno-colon\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Length: nope\r\n\r\n",
            b"HTTP/1.1 200 OK\r\n\r\n", // no content-length at all
        ] {
            let mut p = ResponseParser::new();
            p.feed(wire);
            assert!(p.poll().is_err(), "accepted: {:?}", String::from_utf8_lossy(wire));
        }
    }

    #[test]
    fn oversized_response_head_is_an_error() {
        let mut p = ResponseParser::new();
        p.feed(&vec![b'a'; MAX_RESPONSE_HEAD_BYTES + 10]);
        assert!(p.poll().is_err());
    }
}
