//! [`RemoteShard`]: a [`ShardBackend`] whose legs cross a TCP loopback
//! to a shard-server process.
//!
//! The router cannot tell a `RemoteShard` from a `LocalShard` — that is
//! the point of the serializable-leg seam. What this client adds is the
//! failure discipline the out-of-process tier needs:
//!
//! * **Connection pool** — a small stack of keep-alive connections.
//!   A pooled connection may have died since its last use (server
//!   restart, idle timeout), so a failure on a *pooled* connection earns
//!   one immediate fresh-connection retry that does not count against
//!   the retry budget (`shardnet.pool.stale_retries`).
//! * **Deadline budgets** — every socket operation runs under
//!   `leg_timeout_ms`, which the serving layer derives from the router's
//!   request deadline (see [`RemoteShardConfig::for_router_deadline`]):
//!   a leg is never allowed to out-wait the request that needs it.
//! * **Idempotent-only retries** — read legs and `recover` retry with
//!   seeded exponential backoff plus jitter ([`rand::rngs::StdRng`], so
//!   drills replay byte-for-byte); `submit` never retries, because
//!   `NewSnapshot` is not idempotent and a duplicated write must not be
//!   the client's doing.
//! * **Degrade, never 5xx** — when an exchange finally fails the shard
//!   flips to [`ShardHealth::Down`] (`shardnet.degraded_flips`) and the
//!   error is [`ShardError::Unavailable`], which the router's gather
//!   turns into a flagged partial response. While Down, [`health`]
//!   probes the address at most once per `probe_interval_ms` and flips
//!   back to Healthy the moment a TCP connect succeeds — which is how a
//!   restarted server rejoins the fan-out without operator action.
//!
//! [`health`]: ShardBackend::health

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Duration;

use crowdnet_json::{obj, Value};
use crowdnet_shard::{
    EpochMeta, Job, ShardBackend, ShardError, ShardHealth, WriteAck, WriteOp,
};
use crowdnet_store::store::NamespaceStats;
use crowdnet_store::SnapshotId;
use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wire::{self, ResponseParser, WireResponse};

/// Executor queue bound, mirroring `LocalShard`'s never-wait discipline.
const EXEC_QUEUE: usize = 128;

/// Tuning for one remote shard connection.
#[derive(Debug, Clone)]
pub struct RemoteShardConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout_ms: u64,
    /// Socket read/write budget for one leg exchange.
    pub leg_timeout_ms: u64,
    /// Extra attempts after the first, idempotent legs only.
    pub retries: u32,
    /// First backoff step; doubles per retry, plus jitter in `[0, step]`.
    pub backoff_base_ms: u64,
    /// Seed for the backoff jitter — drills replay deterministically.
    pub seed: u64,
    /// Keep-alive connections retained between legs.
    pub pool_capacity: usize,
    /// Minimum spacing between reconnect probes while Down.
    pub probe_interval_ms: u64,
}

impl Default for RemoteShardConfig {
    fn default() -> RemoteShardConfig {
        RemoteShardConfig {
            connect_timeout_ms: 250,
            leg_timeout_ms: 1_000,
            retries: 2,
            backoff_base_ms: 10,
            seed: 0x5eed,
            pool_capacity: 4,
            probe_interval_ms: 200,
        }
    }
}

impl RemoteShardConfig {
    /// Derive leg budgets from the router's request deadline: a leg gets
    /// the whole deadline (the router already races legs concurrently),
    /// a connect attempt a quarter of it, so even the worst case —
    /// connect, then a stalled exchange — resolves within ~1.25
    /// deadlines instead of hanging a worker.
    pub fn for_router_deadline(deadline_ms: u64) -> RemoteShardConfig {
        let deadline_ms = deadline_ms.max(4);
        RemoteShardConfig {
            connect_timeout_ms: (deadline_ms / 4).max(1),
            leg_timeout_ms: deadline_ms,
            ..RemoteShardConfig::default()
        }
    }
}

/// Client half of the out-of-process shard tier.
pub struct RemoteShard {
    index: usize,
    addr: RwLock<SocketAddr>,
    cfg: RemoteShardConfig,
    telemetry: Telemetry,
    health: AtomicU8,
    last_probe_ms: AtomicU64,
    pool: Mutex<Vec<TcpStream>>,
    rng: Mutex<StdRng>,
    exec_tx: Mutex<Option<SyncSender<Job>>>,
    exec_thread: Mutex<Option<JoinHandle<()>>>,
    legs: Counter,
    retries_counter: Counter,
    timeouts: Counter,
    reuse_hits: Counter,
    stale_retries: Counter,
    degraded_flips: Counter,
}

impl RemoteShard {
    /// Connect-lazily to the shard server at `addr` serving shard
    /// `index`. No I/O happens here; the first leg dials.
    pub fn new(
        index: usize,
        addr: SocketAddr,
        cfg: RemoteShardConfig,
        telemetry: &Telemetry,
    ) -> Result<RemoteShard, ShardError> {
        let (tx, rx) = sync_channel::<Job>(EXEC_QUEUE);
        let thread = std::thread::Builder::new()
            .name(format!("remote-shard-exec-{index}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .map_err(crowdnet_store::StoreError::Io)?;
        let seed = cfg.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Ok(RemoteShard {
            index,
            addr: RwLock::new(addr),
            cfg,
            telemetry: telemetry.clone(),
            health: AtomicU8::new(ShardHealth::Healthy.as_u8()),
            last_probe_ms: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            exec_tx: Mutex::new(Some(tx)),
            exec_thread: Mutex::new(Some(thread)),
            legs: telemetry.counter("shardnet.legs"),
            retries_counter: telemetry.counter("shardnet.retries"),
            timeouts: telemetry.counter("shardnet.timeouts"),
            reuse_hits: telemetry.counter("shardnet.pool.reuse_hits"),
            stale_retries: telemetry.counter("shardnet.pool.stale_retries"),
            degraded_flips: telemetry.counter("shardnet.degraded_flips"),
        })
    }

    /// Point the client at a new address (a supervisor restarting the
    /// server lands it on a fresh ephemeral port). Drops pooled
    /// connections to the old address.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.write() = addr;
        self.pool.lock().clear();
    }

    /// The address currently dialed.
    pub fn addr(&self) -> SocketAddr {
        *self.addr.read()
    }

    // ---- exchange machinery -------------------------------------------

    /// Run one leg with the full failure discipline; records latency and
    /// flips health on the outcome.
    fn call(&self, leg: &'static str, params: Value, idempotent: bool) -> Result<Value, ShardError> {
        self.legs.inc();
        let started = self.telemetry.now_ms();
        let result = self.call_with_retries(leg, &params, idempotent);
        self.telemetry
            .histogram(&format!("shardnet.leg_ms.{leg}"))
            .record(self.telemetry.now_ms().saturating_sub(started));
        match &result {
            Err(e) if e.is_transport() => self.note_transport_failure(),
            // Any completed exchange proves the server is alive — even a
            // logical error had to be computed by the shard.
            _ => self.note_alive(),
        }
        result
    }

    fn call_with_retries(
        &self,
        leg: &str,
        params: &Value,
        idempotent: bool,
    ) -> Result<Value, ShardError> {
        let attempts = if idempotent {
            self.cfg.retries.saturating_add(1)
        } else {
            1
        };
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries_counter.inc();
                let step = self
                    .cfg
                    .backoff_base_ms
                    .saturating_mul(1_u64 << (attempt - 1).min(6))
                    .max(1);
                let jitter = self.rng.lock().random_range(0..=step);
                std::thread::sleep(Duration::from_millis(step.saturating_add(jitter)));
            }
            match self.exchange_envelope(leg, params) {
                // A well-formed envelope ends the attempt loop: logical
                // errors must not be retried into double execution, and
                // retrying a frame the server called malformed cannot
                // change the answer.
                Ok(envelope) => return wire::open_envelope(envelope),
                Err(reason) => last = reason,
            }
        }
        Err(ShardError::Unavailable {
            shard: self.index,
            reason: last,
        })
    }

    /// One transport attempt: pooled connection first (with a free
    /// stale-retry on a fresh one), then decode the reply frame.
    fn exchange_envelope(&self, leg: &str, params: &Value) -> Result<Value, String> {
        let frame = wire::encode_frame(params);
        // Pop as its own statement: an `if let` on `self.pool.lock().pop()`
        // would hold the pool guard across the exchange — and deadlock
        // when `finish` re-locks to return the connection.
        let pooled = self.pool.lock().pop();
        if let Some(mut conn) = pooled {
            self.reuse_hits.inc();
            match self.exchange_on(&mut conn, leg, &frame) {
                Ok(resp) => return self.finish(conn, resp),
                Err(_stale) => self.stale_retries.inc(),
            }
        }
        let mut conn = self.connect()?;
        let resp = self.exchange_on(&mut conn, leg, &frame)?;
        self.finish(conn, resp)
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let addr = *self.addr.read();
        let conn = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.cfg.connect_timeout_ms.max(1)),
        )
        .map_err(|e| format!("connect {addr}: {e}"))?;
        // Leg requests go out as head + frame in two writes; with Nagle on,
        // the second write stalls behind the peer's delayed ACK (~40ms per
        // exchange on loopback), which would dominate every leg budget.
        conn.set_nodelay(true).map_err(|e| e.to_string())?;
        Ok(conn)
    }

    /// Write the leg request, read exactly one HTTP response.
    fn exchange_on(
        &self,
        conn: &mut TcpStream,
        leg: &str,
        frame: &[u8],
    ) -> Result<WireResponse, String> {
        let budget = Some(Duration::from_millis(self.cfg.leg_timeout_ms.max(1)));
        conn.set_read_timeout(budget).map_err(|e| e.to_string())?;
        conn.set_write_timeout(budget).map_err(|e| e.to_string())?;
        let head = format!(
            "POST /shard/{leg} HTTP/1.1\r\nHost: shard\r\nConnection: keep-alive\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            frame.len()
        );
        conn.write_all(head.as_bytes())
            .and_then(|()| conn.write_all(frame))
            .map_err(|e| self.io_reason("write", &e))?;
        let mut parser = ResponseParser::new();
        let mut buf = [0_u8; 4096];
        loop {
            if let Some(resp) = parser.poll()? {
                return Ok(resp);
            }
            let n = conn
                .read(&mut buf)
                .map_err(|e| self.io_reason("read", &e))?;
            if n == 0 {
                return Err("connection closed mid-response".to_string());
            }
            parser.feed(buf.get(..n).unwrap_or_default());
        }
    }

    /// Classify an I/O failure, counting deadline expiries.
    fn io_reason(&self, op: &str, e: &std::io::Error) -> String {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            self.timeouts.inc();
            format!("{op} timed out after {}ms", self.cfg.leg_timeout_ms)
        } else {
            format!("{op}: {e}")
        }
    }

    /// Pool the connection if the server kept it open, then unwrap the
    /// HTTP layer down to the reply frame.
    fn finish(&self, conn: TcpStream, resp: WireResponse) -> Result<Value, String> {
        if resp.status != 200 {
            return Err(format!("shard server answered http {}", resp.status));
        }
        if resp.keep_alive {
            let mut pool = self.pool.lock();
            if pool.len() < self.cfg.pool_capacity {
                pool.push(conn);
            }
        }
        wire::decode_frame(&resp.body)
    }

    // ---- health accounting --------------------------------------------

    fn note_alive(&self) {
        let healthy = ShardHealth::Healthy.as_u8();
        self.health.store(healthy, Ordering::Release);
    }

    fn note_transport_failure(&self) {
        let prev = self
            .health
            .swap(ShardHealth::Down.as_u8(), Ordering::AcqRel);
        if prev != ShardHealth::Down.as_u8() {
            self.degraded_flips.inc();
        }
        // Pooled connections share whatever broke; drop them all.
        self.pool.lock().clear();
    }
}

impl ShardBackend for RemoteShard {
    fn index(&self) -> usize {
        self.index
    }

    /// While Down, dials the server (rate-limited) so a restarted
    /// process rejoins fan-outs without an explicit operator signal.
    fn health(&self) -> ShardHealth {
        let current = ShardHealth::from_u8(self.health.load(Ordering::Acquire));
        if current != ShardHealth::Down {
            return current;
        }
        let now = self.telemetry.now_ms();
        let last = self.last_probe_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.cfg.probe_interval_ms
            || self
                .last_probe_ms
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return current;
        }
        match self.connect() {
            Ok(conn) => {
                let mut pool = self.pool.lock();
                if pool.len() < self.cfg.pool_capacity {
                    pool.push(conn);
                }
                drop(pool);
                self.note_alive();
                ShardHealth::Healthy
            }
            Err(_) => current,
        }
    }

    fn set_health(&self, health: ShardHealth) {
        self.health.store(health.as_u8(), Ordering::Release);
    }

    fn epoch_meta(&self) -> Result<EpochMeta, ShardError> {
        let v = self.call("epoch_meta", obj! {}, true)?;
        wire::meta_from_value(&v).map_err(ShardError::Protocol)
    }

    fn scan_partitions(
        &self,
        ns: &str,
        snapshot: SnapshotId,
    ) -> Result<Vec<Vec<crowdnet_store::Document>>, ShardError> {
        let v = self.call(
            "scan_partitions",
            obj! {"ns" => ns, "snapshot" => u64::from(snapshot.0)},
            true,
        )?;
        wire::partitions_from_value(&v).map_err(ShardError::Protocol)
    }

    fn entity_docs(&self, keys: &[String]) -> Result<Vec<Option<Value>>, ShardError> {
        let keys = Value::Arr(keys.iter().map(|k| Value::from(k.as_str())).collect());
        let v = self.call("entity_docs", obj! {"keys" => keys}, true)?;
        wire::docs_from_value(&v).map_err(ShardError::Protocol)
    }

    fn investor_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError> {
        let v = self.call("investor_edges", obj! {"id" => u64::from(id)}, true)?;
        wire::edges_from_value(&v).map_err(ShardError::Protocol)
    }

    fn company_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError> {
        let v = self.call("company_edges", obj! {"id" => u64::from(id)}, true)?;
        wire::edges_from_value(&v).map_err(ShardError::Protocol)
    }

    fn top_k_prefix(&self, k: usize) -> Result<Vec<(u32, f64)>, ShardError> {
        let v = self.call("top_k_prefix", obj! {"k" => k}, true)?;
        wire::ranked_from_value(&v).map_err(ShardError::Protocol)
    }

    fn shard_stats(&self) -> Result<Vec<NamespaceStats>, ShardError> {
        let v = self.call("shard_stats", obj! {}, true)?;
        wire::stats_from_value(&v).map_err(ShardError::Protocol)
    }

    /// The one non-idempotent leg: a transport failure surfaces
    /// immediately instead of risking a doubled `NewSnapshot`.
    fn submit(&self, op: &WriteOp) -> Result<WriteAck, ShardError> {
        let v = self.call("submit", wire::write_op_to_value(op), false)?;
        wire::ack_from_value(&v).map_err(ShardError::Protocol)
    }

    fn offload(&self, job: Job) -> Result<(), Job> {
        let tx = match self.exec_tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(job),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => Err(job),
        }
    }

    /// Replays the server-side journal; safe to retry.
    fn recover(&self) -> Result<(), ShardError> {
        self.call("recover", obj! {}, true).map(|_| ())
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        self.exec_tx.lock().take();
        if let Some(thread) = self.exec_thread.lock().take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ShardServer;
    use crowdnet_serve::server::{bind, Server, ServerConfig};
    use crowdnet_shard::LocalShard;
    use crowdnet_store::Document;
    use std::sync::Arc;

    /// Spin up a real shard server on an ephemeral loopback port.
    fn serve_shard(telemetry: &Telemetry) -> (crowdnet_serve::server::TcpHandle, Arc<LocalShard>) {
        let shard = Arc::new(LocalShard::open_memory(0, 4, telemetry).unwrap());
        shard
            .submit(&WriteOp::Put {
                ns: "angellist/users".into(),
                doc: Document::new("user:7", obj! {"id" => 7u64, "name" => "ada"}),
            })
            .unwrap();
        let handler = Arc::new(ShardServer::new(Arc::clone(&shard), telemetry));
        let server = Server::with_handler(handler, telemetry.clone(), ServerConfig::default());
        let handle = bind(Arc::new(server), 0).unwrap();
        (handle, shard)
    }

    fn client(addr: SocketAddr, telemetry: &Telemetry) -> RemoteShard {
        let cfg = RemoteShardConfig {
            retries: 1,
            backoff_base_ms: 1,
            probe_interval_ms: 0,
            ..RemoteShardConfig::default()
        };
        RemoteShard::new(0, addr, cfg, telemetry).unwrap()
    }

    #[test]
    fn remote_legs_match_the_local_shard() {
        let t = Telemetry::new();
        let (handle, shard) = serve_shard(&t);
        let remote = client(handle.addr(), &t);

        let local: &dyn ShardBackend = shard.as_ref();
        assert_eq!(remote.epoch_meta().unwrap(), local.epoch_meta().unwrap());
        assert_eq!(
            remote.scan_partitions("angellist/users", SnapshotId(0)).unwrap(),
            local.scan_partitions("angellist/users", SnapshotId(0)).unwrap()
        );
        let keys = vec!["user:7".to_string(), "user:404".to_string()];
        assert_eq!(remote.entity_docs(&keys).unwrap(), local.entity_docs(&keys).unwrap());
        assert_eq!(remote.shard_stats().unwrap(), local.shard_stats().unwrap());
        assert_eq!(remote.top_k_prefix(5).unwrap(), local.top_k_prefix(5).unwrap());
        handle.shutdown();
    }

    #[test]
    fn logical_errors_propagate_without_degrading() {
        let t = Telemetry::new();
        let (handle, _shard) = serve_shard(&t);
        let remote = client(handle.addr(), &t);
        match remote.scan_partitions("ghost", SnapshotId(0)) {
            Err(e) => assert!(!e.is_transport(), "logical error degraded the shard: {e}"),
            Ok(v) => panic!("missing namespace scanned: {v:?}"),
        }
        assert_eq!(remote.health(), ShardHealth::Healthy);
        handle.shutdown();
    }

    #[test]
    fn keep_alive_pool_is_reused_across_legs() {
        let t = Telemetry::new();
        let (handle, _shard) = serve_shard(&t);
        let remote = client(handle.addr(), &t);
        for _ in 0..3 {
            remote.epoch_meta().unwrap();
        }
        let counters = t.registry().counter_values();
        let hits = counters
            .iter()
            .find(|(n, _)| n == "shardnet.pool.reuse_hits")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(hits >= 2, "pool never reused a connection ({hits} hits)");
        handle.shutdown();
    }

    #[test]
    fn dead_server_degrades_and_restart_recovers() {
        let t = Telemetry::new();
        let (handle, _shard) = serve_shard(&t);
        let addr = handle.addr();
        let remote = client(addr, &t);
        remote.epoch_meta().unwrap();

        handle.shutdown();
        match remote.epoch_meta() {
            Err(e) => assert!(e.is_transport(), "expected transport failure, got {e}"),
            Ok(m) => panic!("dead server answered: {m:?}"),
        }
        assert_eq!(
            ShardHealth::from_u8(remote.health.load(Ordering::Acquire)),
            ShardHealth::Down
        );

        // Bring a replacement up on a fresh port and repoint the client:
        // the next health() probe readmits the shard to fan-outs.
        let (handle2, _shard2) = serve_shard(&t);
        remote.set_addr(handle2.addr());
        assert_eq!(remote.health(), ShardHealth::Healthy);
        remote.epoch_meta().unwrap();
        handle2.shutdown();
    }
}
