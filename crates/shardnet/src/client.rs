//! [`RemoteShard`]: a [`ShardBackend`] whose legs cross a TCP loopback
//! to a shard-server process.
//!
//! The router cannot tell a `RemoteShard` from a `LocalShard` — that is
//! the point of the serializable-leg seam. What this client adds is the
//! failure discipline the out-of-process tier needs:
//!
//! * **Transport seam** — every socket is dialed through a
//!   [`Transport`] (`crowdnet-chaos`): [`RealTcp`] in production, a
//!   seeded `FaultNet` in drills, so network failures are deterministic
//!   inputs instead of flakes. The `transport-only-net` lint rule keeps
//!   stray `TcpStream::connect` calls out.
//! * **Connection pool** — a small stack of keep-alive connections.
//!   A pooled connection may have died since its last use (server
//!   restart, idle timeout), so a failure on a *pooled* connection earns
//!   one immediate fresh-connection retry that does not count against
//!   the retry budget (`shardnet.pool.stale_retries`).
//! * **Deadline budgets** — every socket operation runs under
//!   `leg_timeout_ms`, which the serving layer derives from the router's
//!   request deadline (see [`RemoteShardConfig::for_router_deadline`]):
//!   a leg is never allowed to out-wait the request that needs it.
//! * **Idempotent-only retries** — read legs and `recover` retry with
//!   seeded exponential backoff plus jitter ([`rand::rngs::StdRng`], so
//!   drills replay byte-for-byte); `submit` never retries, because
//!   `NewSnapshot` is not idempotent and a duplicated write must not be
//!   the client's doing. Backoff sleeps are **clamped to the remaining
//!   leg budget** (`shardnet.backoff_ms`): a retrying leg can never
//!   out-sleep the request that needs it.
//! * **Circuit breaker, degrade never 5xx** — call outcomes feed a
//!   per-remote [`CircuitBreaker`] (closed → open on consecutive
//!   failures or windowed error rate → half-open probe, plus
//!   gray-failure detection for shards that answer but chronically blow
//!   their latency budget; `shardnet.breaker.*`). While the breaker is
//!   closed a failing leg degrades only its own request
//!   ([`ShardError::Unavailable`] → the router's flagged partial
//!   response); when it opens, the shard flips to
//!   [`ShardHealth::Down`] (`shardnet.degraded_flips`) and leaves the
//!   fan-out. While Down, [`health`] probes the address at most once per
//!   `probe_interval_ms`; a successful probe half-opens the breaker and
//!   readmits the shard — the next leg's outcome decides whether it
//!   stays (which is how a restarted server rejoins without operator
//!   action).
//!
//! [`health`]: ShardBackend::health

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crowdnet_chaos::{Conn, RealTcp, Transport};
use crowdnet_json::{obj, Value};
use crowdnet_shard::{
    EpochMeta, Job, ShardBackend, ShardError, ShardHealth, WriteAck, WriteOp,
};
use crowdnet_store::store::NamespaceStats;
use crowdnet_store::SnapshotId;
use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Verdict};
use crate::wire::{self, ResponseParser, WireResponse};

/// Executor queue bound, mirroring `LocalShard`'s never-wait discipline.
const EXEC_QUEUE: usize = 128;

/// Bound on the recorded backoff history (drills and tests read it; a
/// long-lived client must not grow without limit).
const BACKOFF_LOG_CAP: usize = 4_096;

/// Tuning for one remote shard connection.
#[derive(Debug, Clone)]
pub struct RemoteShardConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout_ms: u64,
    /// Socket read/write budget for one leg exchange — and the whole
    /// leg's retry budget: backoff sleeps are clamped to what is left
    /// of it.
    pub leg_timeout_ms: u64,
    /// Extra attempts after the first, idempotent legs only.
    pub retries: u32,
    /// First backoff step; doubles per retry, plus jitter in `[0, step]`.
    pub backoff_base_ms: u64,
    /// Seed for the backoff jitter — drills replay deterministically.
    pub seed: u64,
    /// Keep-alive connections retained between legs.
    pub pool_capacity: usize,
    /// Minimum spacing between reconnect probes while Down.
    pub probe_interval_ms: u64,
    /// Circuit-breaker thresholds (failure counts, error rate, gray
    /// latency budget).
    pub breaker: BreakerConfig,
}

impl Default for RemoteShardConfig {
    fn default() -> RemoteShardConfig {
        RemoteShardConfig {
            connect_timeout_ms: 250,
            leg_timeout_ms: 1_000,
            retries: 2,
            backoff_base_ms: 10,
            seed: 0x5eed,
            pool_capacity: 4,
            probe_interval_ms: 200,
            breaker: BreakerConfig::default(),
        }
    }
}

impl RemoteShardConfig {
    /// Derive leg budgets from the router's request deadline: a leg gets
    /// the whole deadline (the router already races legs concurrently),
    /// a connect attempt a quarter of it, so even the worst case —
    /// connect, then a stalled exchange — resolves within ~1.25
    /// deadlines instead of hanging a worker. The gray-failure budget is
    /// half the deadline: a shard that *answers* but repeatedly eats
    /// most of the request's patience gets shed proactively.
    pub fn for_router_deadline(deadline_ms: u64) -> RemoteShardConfig {
        let deadline_ms = deadline_ms.max(4);
        RemoteShardConfig {
            connect_timeout_ms: (deadline_ms / 4).max(1),
            leg_timeout_ms: deadline_ms,
            breaker: BreakerConfig {
                gray_latency_ms: (deadline_ms / 2).max(1),
                ..BreakerConfig::default()
            },
            ..RemoteShardConfig::default()
        }
    }
}

/// Client half of the out-of-process shard tier.
pub struct RemoteShard {
    index: usize,
    addr: RwLock<SocketAddr>,
    cfg: RemoteShardConfig,
    telemetry: Telemetry,
    transport: Arc<dyn Transport>,
    health: AtomicU8,
    breaker: CircuitBreaker,
    last_probe_ms: AtomicU64,
    pool: Mutex<Vec<Box<dyn Conn>>>,
    rng: Mutex<StdRng>,
    backoff_log: Mutex<Vec<u64>>,
    exec_tx: Mutex<Option<SyncSender<Job>>>,
    exec_thread: Mutex<Option<JoinHandle<()>>>,
    legs: Counter,
    retries_counter: Counter,
    timeouts: Counter,
    reuse_hits: Counter,
    stale_retries: Counter,
    degraded_flips: Counter,
}

impl RemoteShard {
    /// Connect-lazily to the shard server at `addr` serving shard
    /// `index`, over the real TCP transport. No I/O happens here; the
    /// first leg dials.
    pub fn new(
        index: usize,
        addr: SocketAddr,
        cfg: RemoteShardConfig,
        telemetry: &Telemetry,
    ) -> Result<RemoteShard, ShardError> {
        RemoteShard::with_transport(index, addr, cfg, Arc::new(RealTcp), telemetry)
    }

    /// Like [`RemoteShard::new`], but dialing through an explicit
    /// [`Transport`] — a `FaultNet` in chaos drills.
    pub fn with_transport(
        index: usize,
        addr: SocketAddr,
        cfg: RemoteShardConfig,
        transport: Arc<dyn Transport>,
        telemetry: &Telemetry,
    ) -> Result<RemoteShard, ShardError> {
        let (tx, rx) = sync_channel::<Job>(EXEC_QUEUE);
        let thread = std::thread::Builder::new()
            .name(format!("remote-shard-exec-{index}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .map_err(crowdnet_store::StoreError::Io)?;
        let seed = cfg.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let breaker = CircuitBreaker::new(cfg.breaker.clone(), telemetry);
        Ok(RemoteShard {
            index,
            addr: RwLock::new(addr),
            telemetry: telemetry.clone(),
            transport,
            health: AtomicU8::new(ShardHealth::Healthy.as_u8()),
            breaker,
            last_probe_ms: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            backoff_log: Mutex::new(Vec::new()),
            exec_tx: Mutex::new(Some(tx)),
            exec_thread: Mutex::new(Some(thread)),
            legs: telemetry.counter("shardnet.legs"),
            retries_counter: telemetry.counter("shardnet.retries"),
            timeouts: telemetry.counter("shardnet.timeouts"),
            reuse_hits: telemetry.counter("shardnet.pool.reuse_hits"),
            stale_retries: telemetry.counter("shardnet.pool.stale_retries"),
            degraded_flips: telemetry.counter("shardnet.degraded_flips"),
            cfg,
        })
    }

    /// Point the client at a new address (a supervisor restarting the
    /// server lands it on a fresh ephemeral port). Drops pooled
    /// connections to the old address.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.write() = addr;
        self.pool.lock().clear();
    }

    /// The address currently dialed.
    pub fn addr(&self) -> SocketAddr {
        *self.addr.read()
    }

    /// The breaker's current state (drills and tests).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Every backoff sleep actually performed, in order, post-clamp
    /// (bounded at `BACKOFF_LOG_CAP` entries). Same seed + same outcome
    /// sequence ⇒ same history — the replay property drills assert.
    pub fn backoff_history(&self) -> Vec<u64> {
        self.backoff_log.lock().clone()
    }

    // ---- exchange machinery -------------------------------------------

    /// Run one leg with the full failure discipline; records latency and
    /// feeds the breaker with the outcome.
    fn call(&self, leg: &'static str, params: Value, idempotent: bool) -> Result<Value, ShardError> {
        self.legs.inc();
        let started = self.telemetry.now_ms();
        let result = self.call_with_retries(leg, &params, idempotent);
        let elapsed = self.telemetry.now_ms().saturating_sub(started);
        self.telemetry
            .histogram(&format!("shardnet.leg_ms.{leg}"))
            .record(elapsed);
        match &result {
            Err(e) if e.is_transport() => self.note_transport_failure(),
            // Any completed exchange proves the server is alive — even a
            // logical error had to be computed by the shard.
            _ => self.note_alive(elapsed),
        }
        result
    }

    fn call_with_retries(
        &self,
        leg: &str,
        params: &Value,
        idempotent: bool,
    ) -> Result<Value, ShardError> {
        let attempts = if idempotent {
            self.cfg.retries.saturating_add(1)
        } else {
            1
        };
        let started = self.telemetry.now_ms();
        let budget_ms = self.cfg.leg_timeout_ms.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let step = self
                    .cfg
                    .backoff_base_ms
                    .saturating_mul(1_u64 << (attempt - 1).min(6))
                    .max(1);
                // Draw the jitter before clamping so the rng stream — and
                // with it, same-seed replay — is independent of how much
                // budget happens to remain.
                let jitter = self.rng.lock().random_range(0..=step);
                let elapsed = self.telemetry.now_ms().saturating_sub(started);
                let remaining = budget_ms.saturating_sub(elapsed);
                if remaining == 0 {
                    // The leg's budget is spent; one more attempt can only
                    // make the request that needs it later.
                    break;
                }
                self.retries_counter.inc();
                let sleep_ms = step.saturating_add(jitter).min(remaining);
                self.record_backoff(sleep_ms);
                std::thread::sleep(Duration::from_millis(sleep_ms));
            }
            match self.exchange_envelope(leg, params) {
                // A well-formed envelope ends the attempt loop: logical
                // errors must not be retried into double execution, and
                // retrying a frame the server called malformed cannot
                // change the answer.
                Ok(envelope) => return wire::open_envelope(envelope),
                Err(reason) => last = reason,
            }
        }
        Err(ShardError::Unavailable {
            shard: self.index,
            reason: last,
        })
    }

    fn record_backoff(&self, ms: u64) {
        self.telemetry.histogram("shardnet.backoff_ms").record(ms);
        let mut log = self.backoff_log.lock();
        if log.len() < BACKOFF_LOG_CAP {
            log.push(ms);
        }
    }

    /// One transport attempt: pooled connection first (with a free
    /// stale-retry on a fresh one), then decode the reply frame.
    fn exchange_envelope(&self, leg: &str, params: &Value) -> Result<Value, String> {
        let frame = wire::encode_frame(params);
        // Pop as its own statement: an `if let` on `self.pool.lock().pop()`
        // would hold the pool guard across the exchange — and deadlock
        // when `finish` re-locks to return the connection.
        let pooled = self.pool.lock().pop();
        if let Some(mut conn) = pooled {
            self.reuse_hits.inc();
            match self.exchange_on(conn.as_mut(), leg, &frame) {
                Ok(resp) => return self.finish(conn, resp),
                Err(_stale) => self.stale_retries.inc(),
            }
        }
        let mut conn = self.connect()?;
        let resp = self.exchange_on(conn.as_mut(), leg, &frame)?;
        self.finish(conn, resp)
    }

    fn connect(&self) -> Result<Box<dyn Conn>, String> {
        let addr = *self.addr.read();
        self.transport
            .connect(
                addr,
                Duration::from_millis(self.cfg.connect_timeout_ms.max(1)),
            )
            .map_err(|e| format!("connect {addr}: {e}"))
    }

    /// Write the leg request, read exactly one HTTP response.
    fn exchange_on(
        &self,
        conn: &mut dyn Conn,
        leg: &str,
        frame: &[u8],
    ) -> Result<WireResponse, String> {
        let budget = Some(Duration::from_millis(self.cfg.leg_timeout_ms.max(1)));
        conn.set_read_timeout(budget).map_err(|e| e.to_string())?;
        conn.set_write_timeout(budget).map_err(|e| e.to_string())?;
        let head = format!(
            "POST /shard/{leg} HTTP/1.1\r\nHost: shard\r\nConnection: keep-alive\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            frame.len()
        );
        conn.write_all(head.as_bytes())
            .and_then(|()| conn.write_all(frame))
            .map_err(|e| self.io_reason("write", &e))?;
        let mut parser = ResponseParser::new();
        let mut buf = [0_u8; 4096];
        loop {
            if let Some(resp) = parser.poll()? {
                return Ok(resp);
            }
            let n = conn
                .read(&mut buf)
                .map_err(|e| self.io_reason("read", &e))?;
            if n == 0 {
                return Err("connection closed mid-response".to_string());
            }
            parser.feed(buf.get(..n).unwrap_or_default());
        }
    }

    /// Classify an I/O failure, counting deadline expiries.
    fn io_reason(&self, op: &str, e: &std::io::Error) -> String {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            self.timeouts.inc();
            format!("{op} timed out after {}ms", self.cfg.leg_timeout_ms)
        } else {
            format!("{op}: {e}")
        }
    }

    /// Pool the connection if the server kept it open, then unwrap the
    /// HTTP layer down to the reply frame.
    fn finish(&self, conn: Box<dyn Conn>, resp: WireResponse) -> Result<Value, String> {
        if resp.status != 200 {
            return Err(format!("shard server answered http {}", resp.status));
        }
        if resp.keep_alive {
            let mut pool = self.pool.lock();
            if pool.len() < self.cfg.pool_capacity {
                pool.push(conn);
            }
        }
        wire::decode_frame(&resp.body)
    }

    // ---- health accounting --------------------------------------------

    fn note_alive(&self, latency_ms: u64) {
        match self.breaker.on_success(latency_ms) {
            // Chronic latency: the shard answers but blows its budget —
            // shed it proactively instead of letting it drag every
            // fan-out.
            Verdict::GrayTripped => self.flip_down(),
            _ => {
                self.health
                    .store(ShardHealth::Healthy.as_u8(), Ordering::Release);
            }
        }
    }

    fn note_transport_failure(&self) {
        let verdict = self.breaker.on_transport_failure();
        if verdict == Verdict::Opened || self.breaker.state() == BreakerState::Open {
            self.flip_down();
        }
        // Pooled connections share whatever broke; drop them all.
        self.pool.lock().clear();
    }

    fn flip_down(&self) {
        let prev = self
            .health
            .swap(ShardHealth::Down.as_u8(), Ordering::AcqRel);
        if prev != ShardHealth::Down.as_u8() {
            self.degraded_flips.inc();
        }
        self.pool.lock().clear();
    }
}

impl ShardBackend for RemoteShard {
    fn index(&self) -> usize {
        self.index
    }

    /// While Down, dials the server (rate-limited) so a restarted
    /// process rejoins fan-outs without an explicit operator signal. A
    /// successful probe **half-opens** the breaker: the shard is
    /// readmitted and the next leg's outcome decides whether it stays.
    fn health(&self) -> ShardHealth {
        let current = ShardHealth::from_u8(self.health.load(Ordering::Acquire));
        if current != ShardHealth::Down {
            return current;
        }
        let now = self.telemetry.now_ms();
        let last = self.last_probe_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.cfg.probe_interval_ms
            || self
                .last_probe_ms
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return current;
        }
        match self.connect() {
            Ok(conn) => {
                let mut pool = self.pool.lock();
                if pool.len() < self.cfg.pool_capacity {
                    pool.push(conn);
                }
                drop(pool);
                self.breaker.begin_probe();
                self.health
                    .store(ShardHealth::Healthy.as_u8(), Ordering::Release);
                ShardHealth::Healthy
            }
            Err(_) => current,
        }
    }

    fn set_health(&self, health: ShardHealth) {
        self.health.store(health.as_u8(), Ordering::Release);
    }

    fn epoch_meta(&self) -> Result<EpochMeta, ShardError> {
        let v = self.call("epoch_meta", obj! {}, true)?;
        wire::meta_from_value(&v).map_err(ShardError::Protocol)
    }

    fn scan_partitions(
        &self,
        ns: &str,
        snapshot: SnapshotId,
    ) -> Result<Vec<Vec<crowdnet_store::Document>>, ShardError> {
        let v = self.call(
            "scan_partitions",
            obj! {"ns" => ns, "snapshot" => u64::from(snapshot.0)},
            true,
        )?;
        wire::partitions_from_value(&v).map_err(ShardError::Protocol)
    }

    fn entity_docs(&self, keys: &[String]) -> Result<Vec<Option<Value>>, ShardError> {
        let keys = Value::Arr(keys.iter().map(|k| Value::from(k.as_str())).collect());
        let v = self.call("entity_docs", obj! {"keys" => keys}, true)?;
        wire::docs_from_value(&v).map_err(ShardError::Protocol)
    }

    fn investor_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError> {
        let v = self.call("investor_edges", obj! {"id" => u64::from(id)}, true)?;
        wire::edges_from_value(&v).map_err(ShardError::Protocol)
    }

    fn company_edges(&self, id: u32) -> Result<Option<Vec<u32>>, ShardError> {
        let v = self.call("company_edges", obj! {"id" => u64::from(id)}, true)?;
        wire::edges_from_value(&v).map_err(ShardError::Protocol)
    }

    fn top_k_prefix(&self, k: usize) -> Result<Vec<(u32, f64)>, ShardError> {
        let v = self.call("top_k_prefix", obj! {"k" => k}, true)?;
        wire::ranked_from_value(&v).map_err(ShardError::Protocol)
    }

    fn shard_stats(&self) -> Result<Vec<NamespaceStats>, ShardError> {
        let v = self.call("shard_stats", obj! {}, true)?;
        wire::stats_from_value(&v).map_err(ShardError::Protocol)
    }

    /// The one non-idempotent leg: a transport failure surfaces
    /// immediately instead of risking a doubled `NewSnapshot`.
    fn submit(&self, op: &WriteOp) -> Result<WriteAck, ShardError> {
        let v = self.call("submit", wire::write_op_to_value(op), false)?;
        wire::ack_from_value(&v).map_err(ShardError::Protocol)
    }

    fn offload(&self, job: Job) -> Result<(), Job> {
        let tx = match self.exec_tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(job),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => Err(job),
        }
    }

    /// Replays the server-side journal; safe to retry.
    fn recover(&self) -> Result<(), ShardError> {
        self.call("recover", obj! {}, true).map(|_| ())
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        self.exec_tx.lock().take();
        if let Some(thread) = self.exec_thread.lock().take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ShardServer;
    use crowdnet_serve::server::{bind, Server, ServerConfig};
    use crowdnet_shard::LocalShard;
    use crowdnet_store::Document;
    use std::net::TcpListener;

    /// Spin up a real shard server on an ephemeral loopback port.
    fn serve_shard(telemetry: &Telemetry) -> (crowdnet_serve::server::TcpHandle, Arc<LocalShard>) {
        let shard = Arc::new(LocalShard::open_memory(0, 4, telemetry).unwrap());
        shard
            .submit(&WriteOp::Put {
                ns: "angellist/users".into(),
                doc: Document::new("user:7", obj! {"id" => 7u64, "name" => "ada"}),
            })
            .unwrap();
        let handler = Arc::new(ShardServer::new(Arc::clone(&shard), telemetry));
        let server = Server::with_handler(handler, telemetry.clone(), ServerConfig::default());
        let handle = bind(Arc::new(server), 0).unwrap();
        (handle, shard)
    }

    /// Fast-failing client whose breaker trips on the first failed call —
    /// the pre-breaker behavior most of these tests were written against.
    fn client(addr: SocketAddr, telemetry: &Telemetry) -> RemoteShard {
        let cfg = RemoteShardConfig {
            retries: 1,
            backoff_base_ms: 1,
            probe_interval_ms: 0,
            breaker: BreakerConfig {
                consecutive_failures: 1,
                ..BreakerConfig::default()
            },
            ..RemoteShardConfig::default()
        };
        RemoteShard::new(0, addr, cfg, telemetry).unwrap()
    }

    /// A loopback port with nothing listening (bind then drop).
    fn dead_addr() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn remote_legs_match_the_local_shard() {
        let t = Telemetry::new();
        let (handle, shard) = serve_shard(&t);
        let remote = client(handle.addr(), &t);

        let local: &dyn ShardBackend = shard.as_ref();
        assert_eq!(remote.epoch_meta().unwrap(), local.epoch_meta().unwrap());
        assert_eq!(
            remote.scan_partitions("angellist/users", SnapshotId(0)).unwrap(),
            local.scan_partitions("angellist/users", SnapshotId(0)).unwrap()
        );
        let keys = vec!["user:7".to_string(), "user:404".to_string()];
        assert_eq!(remote.entity_docs(&keys).unwrap(), local.entity_docs(&keys).unwrap());
        assert_eq!(remote.shard_stats().unwrap(), local.shard_stats().unwrap());
        assert_eq!(remote.top_k_prefix(5).unwrap(), local.top_k_prefix(5).unwrap());
        handle.shutdown();
    }

    #[test]
    fn logical_errors_propagate_without_degrading() {
        let t = Telemetry::new();
        let (handle, _shard) = serve_shard(&t);
        let remote = client(handle.addr(), &t);
        match remote.scan_partitions("ghost", SnapshotId(0)) {
            Err(e) => assert!(!e.is_transport(), "logical error degraded the shard: {e}"),
            Ok(v) => panic!("missing namespace scanned: {v:?}"),
        }
        assert_eq!(remote.health(), ShardHealth::Healthy);
        assert_eq!(remote.breaker_state(), BreakerState::Closed);
        handle.shutdown();
    }

    #[test]
    fn keep_alive_pool_is_reused_across_legs() {
        let t = Telemetry::new();
        let (handle, _shard) = serve_shard(&t);
        let remote = client(handle.addr(), &t);
        for _ in 0..3 {
            remote.epoch_meta().unwrap();
        }
        let counters = t.registry().counter_values();
        let hits = counters
            .iter()
            .find(|(n, _)| n == "shardnet.pool.reuse_hits")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(hits >= 2, "pool never reused a connection ({hits} hits)");
        handle.shutdown();
    }

    #[test]
    fn dead_server_degrades_and_restart_recovers() {
        let t = Telemetry::new();
        let (handle, _shard) = serve_shard(&t);
        let addr = handle.addr();
        let remote = client(addr, &t);
        remote.epoch_meta().unwrap();

        handle.shutdown();
        match remote.epoch_meta() {
            Err(e) => assert!(e.is_transport(), "expected transport failure, got {e}"),
            Ok(m) => panic!("dead server answered: {m:?}"),
        }
        assert_eq!(
            ShardHealth::from_u8(remote.health.load(Ordering::Acquire)),
            ShardHealth::Down
        );
        assert_eq!(remote.breaker_state(), BreakerState::Open);

        // Bring a replacement up on a fresh port and repoint the client:
        // the next health() probe readmits the shard to fan-outs.
        let (handle2, _shard2) = serve_shard(&t);
        remote.set_addr(handle2.addr());
        assert_eq!(remote.health(), ShardHealth::Healthy);
        assert_eq!(remote.breaker_state(), BreakerState::HalfOpen);
        remote.epoch_meta().unwrap();
        assert_eq!(remote.breaker_state(), BreakerState::Closed);
        handle2.shutdown();
    }

    #[test]
    fn breaker_holds_shard_in_fanout_until_threshold() {
        // With a threshold of 3, the first two failed calls degrade only
        // their own requests — the shard stays Healthy (and in fan-outs)
        // until the third opens the breaker.
        let t = Telemetry::new();
        let cfg = RemoteShardConfig {
            retries: 0,
            backoff_base_ms: 1,
            connect_timeout_ms: 50,
            probe_interval_ms: 0,
            breaker: BreakerConfig {
                consecutive_failures: 3,
                ..BreakerConfig::default()
            },
            ..RemoteShardConfig::default()
        };
        let remote = RemoteShard::new(0, dead_addr(), cfg, &t).unwrap();
        for expected_health in [ShardHealth::Healthy, ShardHealth::Healthy] {
            assert!(remote.epoch_meta().is_err());
            assert_eq!(
                ShardHealth::from_u8(remote.health.load(Ordering::Acquire)),
                expected_health,
                "breaker tripped before its threshold"
            );
        }
        assert!(remote.epoch_meta().is_err());
        assert_eq!(
            ShardHealth::from_u8(remote.health.load(Ordering::Acquire)),
            ShardHealth::Down
        );
        assert_eq!(remote.breaker_state(), BreakerState::Open);
        assert_eq!(t.counter("shardnet.breaker.opens").value(), 1);
        assert_eq!(t.counter("shardnet.degraded_flips").value(), 1);
    }

    #[test]
    fn backoff_sleeps_are_clamped_to_the_leg_budget() {
        // A plan that would sleep ~10s per retry against a 50ms leg
        // budget: every recorded sleep must be ≤ the budget and the whole
        // call must resolve promptly. (The telemetry clock is the default
        // fixed one, so the remaining budget never shrinks — the clamp
        // alone bounds the sleeps.)
        let t = Telemetry::new();
        let cfg = RemoteShardConfig {
            retries: 3,
            backoff_base_ms: 10_000,
            leg_timeout_ms: 50,
            connect_timeout_ms: 20,
            probe_interval_ms: 0,
            breaker: BreakerConfig {
                consecutive_failures: 1,
                ..BreakerConfig::default()
            },
            ..RemoteShardConfig::default()
        };
        let remote = RemoteShard::new(0, dead_addr(), cfg, &t).unwrap();
        let started = std::time::Instant::now();
        assert!(remote.epoch_meta().is_err());
        let wall = started.elapsed();
        let history = remote.backoff_history();
        assert_eq!(history.len(), 3, "expected one sleep per retry: {history:?}");
        assert!(
            history.iter().all(|&ms| ms <= 50),
            "a backoff outslept the leg budget: {history:?}"
        );
        assert!(
            wall < Duration::from_secs(5),
            "call took {wall:?} against a 50ms leg budget"
        );
    }

    #[test]
    fn backoff_budget_expiry_stops_retrying() {
        // On a wall clock the sleeps themselves consume the budget: a
        // 40ms budget admits the first clamped sleep and then runs dry,
        // so fewer than `retries` sleeps happen.
        let t = Telemetry::new();
        let wall = std::time::Instant::now();
        t.bind_clock(Arc::new(move || wall.elapsed().as_millis() as u64));
        let cfg = RemoteShardConfig {
            retries: 8,
            backoff_base_ms: 30,
            leg_timeout_ms: 40,
            connect_timeout_ms: 20,
            probe_interval_ms: 0,
            breaker: BreakerConfig {
                consecutive_failures: 1,
                ..BreakerConfig::default()
            },
            ..RemoteShardConfig::default()
        };
        let remote = RemoteShard::new(0, dead_addr(), cfg, &t).unwrap();
        assert!(remote.epoch_meta().is_err());
        let history = remote.backoff_history();
        assert!(
            history.len() < 8,
            "budget expiry never cut the retry loop short: {history:?}"
        );
        let slept: u64 = history.iter().sum();
        assert!(
            slept <= 40 + 30,
            "total backoff {slept}ms blew the 40ms leg budget"
        );
    }

    #[test]
    fn same_seed_replays_the_same_backoff_jitter() {
        let t = Telemetry::new();
        let cfg = RemoteShardConfig {
            retries: 3,
            backoff_base_ms: 7,
            leg_timeout_ms: 5_000,
            connect_timeout_ms: 20,
            probe_interval_ms: 0,
            seed: 1234,
            ..RemoteShardConfig::default()
        };
        let addr = dead_addr();
        let a = RemoteShard::new(0, addr, cfg.clone(), &t).unwrap();
        let b = RemoteShard::new(0, addr, cfg, &t).unwrap();
        assert!(a.epoch_meta().is_err());
        assert!(b.epoch_meta().is_err());
        let ha = a.backoff_history();
        assert_eq!(ha, b.backoff_history(), "same seed, different jitter");
        assert!(!ha.is_empty());
    }

    #[test]
    fn gray_failure_sheds_a_slow_but_answering_shard() {
        // Drive the telemetry clock so every now_ms() call advances 25ms:
        // each successful leg "measures" well over the 10ms gray budget.
        let t = Telemetry::new();
        let ticks = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&ticks);
        t.bind_clock(Arc::new(move || src.fetch_add(25, Ordering::SeqCst)));
        let (handle, _shard) = serve_shard(&Telemetry::new());
        let cfg = RemoteShardConfig {
            retries: 0,
            probe_interval_ms: 0,
            breaker: BreakerConfig {
                gray_latency_ms: 10,
                gray_trip_after: 3,
                ..BreakerConfig::default()
            },
            ..RemoteShardConfig::default()
        };
        let remote = RemoteShard::new(0, handle.addr(), cfg, &t).unwrap();
        for _ in 0..2 {
            remote.epoch_meta().unwrap();
            assert_eq!(
                ShardHealth::from_u8(remote.health.load(Ordering::Acquire)),
                ShardHealth::Healthy
            );
        }
        // Third chronically slow success trips the gray detector.
        remote.epoch_meta().unwrap();
        assert_eq!(
            ShardHealth::from_u8(remote.health.load(Ordering::Acquire)),
            ShardHealth::Down,
            "gray failure never shed the shard"
        );
        assert_eq!(remote.breaker_state(), BreakerState::Open);
        assert_eq!(t.counter("shardnet.breaker.gray_trips").value(), 1);
        // The server is fine, so the probe half-opens and the next (still
        // slow) leg closes the breaker again — gray shedding is a
        // pressure valve, not a permanent bench.
        assert_eq!(remote.health(), ShardHealth::Healthy);
        remote.epoch_meta().unwrap();
        assert_eq!(remote.breaker_state(), BreakerState::Closed);
        handle.shutdown();
    }
}
