//! Per-remote circuit breaker: the failure discipline between "one leg
//! failed" and "stop sending traffic to this shard".
//!
//! The first shardnet cut flipped a shard Down on any transport failure
//! and back Healthy on any TCP connect — a two-state model that both
//! over-reacts (one refused connect during a server's accept hiccup
//! benches the shard) and under-reacts (a shard that *answers* every
//! probe but blows its latency budget on every leg is never shed). This
//! breaker replaces it with the classic three-state machine plus a gray
//! -failure detector:
//!
//! ```text
//!             consecutive failures ≥ N, or
//!             windowed error rate ≥ R, or
//!             gray: M successes in a row over the latency budget
//!   Closed ────────────────────────────────────────────────▶ Open
//!     ▲                                                       │
//!     │ first leg succeeds                probe connect OK     │
//!     └───────────────── HalfOpen ◀──────────────────────────┘
//!                            │
//!                            └── leg fails again ──▶ Open (reopen)
//! ```
//!
//! While **Closed**, individual failures degrade individual requests
//! (the router's partial-response machinery) without benching the
//! shard. **Open** removes the shard from fan-outs entirely; the
//! client's rate-limited probe moves it to **HalfOpen**, which admits
//! real traffic — the next leg's outcome closes or reopens the breaker.
//! Every transition is counted under `shardnet.breaker.*`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::Mutex;

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures are tallied.
    Closed,
    /// Shard is benched; only probes may readmit it.
    Open,
    /// Probe succeeded; the next legs decide Closed vs Open.
    HalfOpen,
}

impl BreakerState {
    pub fn as_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    pub fn from_u8(v: u8) -> BreakerState {
        match v {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Thresholds for the breaker state machine.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failed calls (post-retry) that open the breaker.
    pub consecutive_failures: u32,
    /// Outcome window for the error-rate trip.
    pub window: usize,
    /// Open when the window is full and at least this fraction failed.
    pub error_rate: f64,
    /// Gray-failure budget: a *successful* call slower than this counts
    /// against the shard. `0` disables gray detection.
    pub gray_latency_ms: u64,
    /// Successive over-budget successes that trip the gray detector.
    pub gray_trip_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            consecutive_failures: 3,
            window: 8,
            error_rate: 0.5,
            gray_latency_ms: 0,
            gray_trip_after: 4,
        }
    }
}

/// What a recorded outcome did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No transition.
    NoChange,
    /// Closed/HalfOpen → Open (failure thresholds).
    Opened,
    /// Open/HalfOpen → Closed (a success proved the shard back).
    Closed,
    /// Closed → Open because the shard chronically blows its latency
    /// budget while still answering.
    GrayTripped,
}

struct BreakerWindow {
    /// Failed calls since the last success.
    consecutive: u32,
    /// Recent outcomes, `true` = failure, newest at the back.
    outcomes: VecDeque<bool>,
    /// Successive successful-but-over-budget calls.
    gray_streak: u32,
}

/// See the module docs for the state machine.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: AtomicU8,
    window: Mutex<BreakerWindow>,
    opens: Counter,
    closes: Counter,
    half_opens: Counter,
    reopens: Counter,
    gray_trips: Counter,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig, telemetry: &Telemetry) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: AtomicU8::new(BreakerState::Closed.as_u8()),
            window: Mutex::new(BreakerWindow {
                consecutive: 0,
                outcomes: VecDeque::new(),
                gray_streak: 0,
            }),
            opens: telemetry.counter("shardnet.breaker.opens"),
            closes: telemetry.counter("shardnet.breaker.closes"),
            half_opens: telemetry.counter("shardnet.breaker.half_opens"),
            reopens: telemetry.counter("shardnet.breaker.reopens"),
            gray_trips: telemetry.counter("shardnet.breaker.gray_trips"),
        }
    }

    pub fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// A call completed (a logical error counts: the shard computed it).
    /// `latency_ms` feeds the gray-failure detector.
    pub fn on_success(&self, latency_ms: u64) -> Verdict {
        let mut w = self.window.lock();
        w.consecutive = 0;
        Self::push(&mut w.outcomes, self.cfg.window, false);
        if self.cfg.gray_latency_ms > 0 && latency_ms > self.cfg.gray_latency_ms {
            w.gray_streak += 1;
            if w.gray_streak >= self.cfg.gray_trip_after.max(1)
                && self.state() != BreakerState::Open
            {
                w.gray_streak = 0;
                w.outcomes.clear();
                self.state.store(BreakerState::Open.as_u8(), Ordering::Release);
                self.gray_trips.inc();
                self.opens.inc();
                return Verdict::GrayTripped;
            }
        } else {
            w.gray_streak = 0;
        }
        match self.state() {
            BreakerState::Closed => Verdict::NoChange,
            // A success while Open can only be a probe-admitted leg that
            // raced the transition; either way the shard just proved
            // itself.
            BreakerState::HalfOpen | BreakerState::Open => {
                self.state.store(BreakerState::Closed.as_u8(), Ordering::Release);
                self.closes.inc();
                Verdict::Closed
            }
        }
    }

    /// A call failed at the transport layer (post-retry).
    pub fn on_transport_failure(&self) -> Verdict {
        let mut w = self.window.lock();
        w.gray_streak = 0;
        match self.state() {
            BreakerState::HalfOpen => {
                // The probe traffic failed: straight back to Open.
                w.consecutive = 0;
                w.outcomes.clear();
                self.state.store(BreakerState::Open.as_u8(), Ordering::Release);
                self.reopens.inc();
                Verdict::Opened
            }
            BreakerState::Open => Verdict::NoChange,
            BreakerState::Closed => {
                w.consecutive += 1;
                Self::push(&mut w.outcomes, self.cfg.window, true);
                let full = w.outcomes.len() >= self.cfg.window.max(1);
                let failures = w.outcomes.iter().filter(|&&f| f).count();
                let rate = failures as f64 / w.outcomes.len().max(1) as f64;
                if w.consecutive >= self.cfg.consecutive_failures.max(1)
                    || (full && rate >= self.cfg.error_rate)
                {
                    w.consecutive = 0;
                    w.outcomes.clear();
                    self.state.store(BreakerState::Open.as_u8(), Ordering::Release);
                    self.opens.inc();
                    Verdict::Opened
                } else {
                    Verdict::NoChange
                }
            }
        }
    }

    /// A probe connect succeeded while Open: admit real traffic to
    /// decide. Returns whether the transition happened.
    pub fn begin_probe(&self) -> bool {
        let moved = self
            .state
            .compare_exchange(
                BreakerState::Open.as_u8(),
                BreakerState::HalfOpen.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if moved {
            self.half_opens.inc();
        }
        moved
    }

    fn push(outcomes: &mut VecDeque<bool>, cap: usize, failed: bool) {
        outcomes.push_back(failed);
        while outcomes.len() > cap.max(1) {
            outcomes.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(cfg: BreakerConfig) -> (CircuitBreaker, Telemetry) {
        let t = Telemetry::new();
        (CircuitBreaker::new(cfg, &t), t)
    }

    #[test]
    fn consecutive_failures_open_then_probe_recovers() {
        let (b, t) = breaker(BreakerConfig {
            consecutive_failures: 3,
            ..BreakerConfig::default()
        });
        assert_eq!(b.on_transport_failure(), Verdict::NoChange);
        assert_eq!(b.on_transport_failure(), Verdict::NoChange);
        assert_eq!(b.on_transport_failure(), Verdict::Opened);
        assert_eq!(b.state(), BreakerState::Open);
        // Further failures while Open don't re-open.
        assert_eq!(b.on_transport_failure(), Verdict::NoChange);
        assert!(b.begin_probe());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.on_success(0), Verdict::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(t.counter("shardnet.breaker.opens").value(), 1);
        assert_eq!(t.counter("shardnet.breaker.half_opens").value(), 1);
        assert_eq!(t.counter("shardnet.breaker.closes").value(), 1);
    }

    #[test]
    fn half_open_failure_reopens() {
        let (b, t) = breaker(BreakerConfig {
            consecutive_failures: 1,
            ..BreakerConfig::default()
        });
        assert_eq!(b.on_transport_failure(), Verdict::Opened);
        assert!(b.begin_probe());
        assert_eq!(b.on_transport_failure(), Verdict::Opened);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(t.counter("shardnet.breaker.reopens").value(), 1);
    }

    #[test]
    fn error_rate_opens_with_interleaved_successes() {
        let (b, _t) = breaker(BreakerConfig {
            consecutive_failures: 100, // out of reach: only the rate can trip
            window: 4,
            error_rate: 0.5,
            ..BreakerConfig::default()
        });
        // Alternate failure/success: rate settles at 0.5 once the window
        // fills, which meets the threshold.
        let mut opened = false;
        for _ in 0..4 {
            if b.on_transport_failure() == Verdict::Opened {
                opened = true;
                break;
            }
            b.on_success(0);
        }
        assert!(opened, "50% error rate over a full window never opened");
    }

    #[test]
    fn gray_latency_trips_on_successes_alone() {
        let (b, t) = breaker(BreakerConfig {
            gray_latency_ms: 10,
            gray_trip_after: 3,
            ..BreakerConfig::default()
        });
        assert_eq!(b.on_success(50), Verdict::NoChange);
        assert_eq!(b.on_success(50), Verdict::NoChange);
        assert_eq!(b.on_success(50), Verdict::GrayTripped);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(t.counter("shardnet.breaker.gray_trips").value(), 1);
        // A fast success within budget resets the streak after recovery.
        assert!(b.begin_probe());
        assert_eq!(b.on_success(1), Verdict::Closed);
        assert_eq!(b.on_success(50), Verdict::NoChange);
        assert_eq!(b.on_success(1), Verdict::NoChange);
        assert_eq!(b.on_success(50), Verdict::NoChange);
        assert_eq!(b.state(), BreakerState::Closed, "streak failed to reset");
    }

    #[test]
    fn zero_gray_budget_disables_detection() {
        let (b, _t) = breaker(BreakerConfig::default());
        for _ in 0..64 {
            assert_eq!(b.on_success(10_000), Verdict::NoChange);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
