//! Test-infrastructure process supervisor: real shard-server child
//! processes, really killed.
//!
//! The in-process kill-switch drills (`set_health(Down)`) prove the
//! router's degrade logic, but they cannot prove the *transport* story —
//! a SIGKILLed process takes its sockets with it mid-frame, refuses new
//! connections, and comes back on a different ephemeral port. This
//! supervisor exists so integration tests and the check.sh smoke drill
//! exercise exactly that: spawn `repro shard-server … --port 0`, read
//! the announced address off the child's stdout, [`kill`] it without
//! ceremony, [`restart`] it, and repoint the [`RemoteShard`] at the new
//! port.
//!
//! Not wired into any serving path — production supervision is an
//! operator concern; this is the lab harness.
//!
//! [`kill`]: ProcessSupervisor::kill
//! [`restart`]: ProcessSupervisor::restart
//! [`RemoteShard`]: crate::RemoteShard

use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// The stdout line a shard server prints once its listener is live.
pub const LISTEN_PREFIX: &str = "shard-server listening on ";

/// Owns one shard-server child process.
pub struct ProcessSupervisor {
    program: String,
    args: Vec<String>,
    child: Option<Child>,
    addr: Option<SocketAddr>,
}

impl ProcessSupervisor {
    /// Spawn `program args…` and block until it announces its listen
    /// address (the args must request an ephemeral port, `--port 0`,
    /// or restarts could collide with lingering sockets).
    pub fn spawn(program: &str, args: &[String]) -> io::Result<ProcessSupervisor> {
        let mut sup = ProcessSupervisor {
            program: program.to_string(),
            args: args.to_vec(),
            child: None,
            addr: None,
        };
        sup.start()?;
        Ok(sup)
    }

    /// The address the current incarnation listens on, if it is up.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Whether the child is still running (reaps it if it just exited).
    pub fn is_running(&mut self) -> bool {
        match self.child.as_mut().map(Child::try_wait) {
            Some(Ok(None)) => true,
            _ => false,
        }
    }

    /// SIGKILL the child — no shutdown handshake, by design — and reap
    /// it. Idempotent: killing a dead or never-started child is fine.
    pub fn kill(&mut self) -> io::Result<()> {
        if let Some(mut child) = self.child.take() {
            // kill() errors if the process already exited; either way it
            // is gone, so fold that into success and just reap.
            let _ = child.kill();
            let _ = child.wait();
        }
        self.addr = None;
        Ok(())
    }

    /// Kill whatever is running and bring up a fresh incarnation with
    /// the same arguments. Returns the new (ephemeral) address.
    pub fn restart(&mut self) -> io::Result<SocketAddr> {
        self.kill()?;
        self.start()?;
        self.addr
            .ok_or_else(|| io::Error::new(io::ErrorKind::Other, "restart lost the listen address"))
    }

    fn start(&mut self) -> io::Result<()> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdout = child.stdout.take().ok_or_else(|| {
            io::Error::new(io::ErrorKind::Other, "child spawned without piped stdout")
        })?;
        let addr = read_listen_line(BufReader::new(stdout));
        match addr {
            Ok(addr) => {
                self.child = Some(child);
                self.addr = Some(addr);
                Ok(())
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }
}

/// Scan child stdout for the listen announcement. EOF first means the
/// child died during boot — surface whatever it last said.
fn read_listen_line<R: BufRead>(mut stdout: R) -> io::Result<SocketAddr> {
    let mut line = String::new();
    let mut last = String::new();
    loop {
        line.clear();
        if stdout.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("shard server exited before listening (last output: {last:?})"),
            ));
        }
        if let Some(rest) = line.trim_end().strip_prefix(LISTEN_PREFIX) {
            return rest.parse::<SocketAddr>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad listen address {rest:?}: {e}"))
            });
        }
        last = line.trim_end().to_string();
    }
}

impl Drop for ProcessSupervisor {
    fn drop(&mut self) {
        let _ = self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_listen_line_and_skips_chatter() {
        let out = b"booting\nrecovered 0 ops\nshard-server listening on 127.0.0.1:4711\n";
        let addr = read_listen_line(&out[..]).unwrap();
        assert_eq!(addr, "127.0.0.1:4711".parse().unwrap());
    }

    #[test]
    fn eof_before_listening_reports_the_last_line() {
        let out = b"booting\nfatal: store locked\n";
        let e = read_listen_line(&out[..]).unwrap_err();
        assert!(e.to_string().contains("store locked"), "{e}");
    }

    #[test]
    fn supervises_a_real_child_process() {
        // /bin/sh stands in for the shard server: prints a listen line,
        // then sleeps so kill() has something to kill.
        let args = vec![
            "-c".to_string(),
            format!("echo '{LISTEN_PREFIX}127.0.0.1:19991'; sleep 30"),
        ];
        let mut sup = ProcessSupervisor::spawn("/bin/sh", &args).unwrap();
        assert_eq!(sup.addr(), Some("127.0.0.1:19991".parse().unwrap()));
        assert!(sup.is_running());
        sup.kill().unwrap();
        assert!(!sup.is_running());
        assert_eq!(sup.addr(), None);
        let addr = sup.restart().unwrap();
        assert_eq!(addr, "127.0.0.1:19991".parse().unwrap());
        assert!(sup.is_running());
    }
}
