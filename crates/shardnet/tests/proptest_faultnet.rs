//! Chaos-schedule robustness properties: a [`RemoteShard`] dialling
//! through an arbitrary seeded [`FaultNet`] plan must (a) never panic
//! and surface every failure as a typed [`ShardError`], (b) never wedge
//! its circuit breaker — after the network heals, a bounded probe loop
//! always readmits the shard and the breaker closes — and (c) replay
//! byte-identically at the same seed, including the backoff jitter
//! sleeps the retry loop drew along the way.
//!
//! The telemetry clock is left at its frozen default on purpose: leg
//! budgets then never expire mid-retry, so the attempt/backoff sequence
//! is a pure function of the fault schedule and the seeds — which is
//! exactly the replay contract `repro chaos` makes.

use crowdnet_chaos::{FaultNet, NetFaultPlan, Partition};
use crowdnet_json::obj;
use crowdnet_serve::server::{bind, Server, ServerConfig, TcpHandle};
use crowdnet_shard::{LocalShard, ShardBackend, ShardHealth, WriteOp};
use crowdnet_shardnet::{
    BreakerConfig, BreakerState, RemoteShard, RemoteShardConfig, ShardServer,
};
use crowdnet_store::Document;
use crowdnet_telemetry::Telemetry;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;

/// The idempotent legs a schedule may exercise.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Leg {
    EpochMeta,
    ShardStats,
    EntityDocs,
    TopK,
    InvestorEdges,
}

fn leg_strategy() -> impl Strategy<Value = Leg> {
    prop_oneof![
        Just(Leg::EpochMeta),
        Just(Leg::ShardStats),
        Just(Leg::EntityDocs),
        Just(Leg::TopK),
        Just(Leg::InvestorEdges),
    ]
}

/// Arbitrary fault schedules, bounded so a black-holed read (which must
/// wait out the full leg timeout) cannot stretch a case past a few
/// hundred milliseconds.
fn plan_strategy() -> impl Strategy<Value = NetFaultPlan> {
    (
        (any::<u64>(), 0.0f64..0.3, 0.0f64..0.15, 0.0f64..0.35),
        (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.2, 0.0f64..0.5, 0u64..40),
        // Mostly unpartitioned; a structural partition fails everything,
        // which the dedicated property below covers head-on.
        (0u8..6).prop_map(|p| match p {
            0 => Partition::DropRequests,
            1 => Partition::DropResponses,
            _ => Partition::None,
        }),
    )
        .prop_map(
            |((seed, refused, hole, reset), (trunc, drip, black, delay, delay_ms), partition)| {
                NetFaultPlan {
                    seed,
                    connect_refused: refused,
                    connect_black_hole: hole,
                    reset,
                    truncate_write: trunc,
                    drip_read: drip,
                    black_hole: black,
                    delay,
                    delay_ms,
                    partition,
                }
            },
        )
}

/// Shard server on an ephemeral port, sized so a connection wedged by a
/// truncated request sheds in 50ms instead of starving the workers.
fn serve_shard(telemetry: &Telemetry) -> (TcpHandle, Arc<LocalShard>) {
    let shard = Arc::new(LocalShard::open_memory(0, 4, telemetry).expect("shard"));
    shard
        .submit(&WriteOp::Put {
            ns: "angellist/users".into(),
            doc: Document::new("user:7", obj! {"id" => 7u64, "name" => "ada"}),
        })
        .expect("seed doc");
    let handler = Arc::new(ShardServer::new(Arc::clone(&shard), telemetry));
    let cfg = ServerConfig {
        workers: 2,
        read_timeout_ms: 50,
        idle_timeout_ms: 2_000,
        ..ServerConfig::default()
    };
    let server = Server::with_handler(handler, telemetry.clone(), cfg);
    (bind(Arc::new(server), 0).expect("bind"), shard)
}

/// Run one schedule end to end and render its transcript: per-leg
/// outcome kinds, the healed-recovery tail, the backoff history and the
/// injected-fault tally. Two runs at the same seeds must produce the
/// same bytes.
fn run_schedule(client_seed: u64, plan: NetFaultPlan, legs: &[Leg]) -> String {
    let telemetry = Telemetry::new();
    let (handle, _shard) = serve_shard(&telemetry);
    let net = Arc::new(FaultNet::over_real(plan, &telemetry));
    let cfg = RemoteShardConfig {
        connect_timeout_ms: 100,
        leg_timeout_ms: 250,
        retries: 1,
        backoff_base_ms: 1,
        seed: client_seed,
        pool_capacity: 2,
        probe_interval_ms: 0,
        breaker: BreakerConfig {
            consecutive_failures: 2,
            ..BreakerConfig::default()
        },
    };
    let remote = RemoteShard::with_transport(
        0,
        handle.addr(),
        cfg,
        Arc::clone(&net) as Arc<dyn crowdnet_chaos::Transport>,
        &telemetry,
    )
    .expect("client");

    let mut transcript = String::new();
    for (i, leg) in legs.iter().enumerate() {
        let result = match leg {
            Leg::EpochMeta => remote.epoch_meta().map(|_| ()),
            Leg::ShardStats => remote.shard_stats().map(|_| ()),
            Leg::EntityDocs => remote
                .entity_docs(&["user:7".to_string(), "user:404".to_string()])
                .map(|_| ()),
            Leg::TopK => remote.top_k_prefix(3).map(|_| ()),
            Leg::InvestorEdges => remote.investor_edges(7).map(|_| ()),
        };
        let kind = match &result {
            Ok(()) => "ok",
            Err(e) if e.is_transport() => "transport",
            Err(_) => "logical",
        };
        let _ = writeln!(transcript, "[{i}] {leg:?} -> {kind}");
    }

    // Heal the network; the breaker must never wedge: a bounded probe
    // loop readmits the shard and one clean leg closes the breaker.
    net.heal();
    let mut probes = 0;
    while remote.health() != ShardHealth::Healthy {
        probes += 1;
        assert!(probes <= 50, "breaker wedged: shard never readmitted");
    }
    remote.epoch_meta().expect("healed leg succeeds");
    assert_eq!(
        remote.breaker_state(),
        BreakerState::Closed,
        "breaker did not close after a successful healed leg"
    );

    let _ = writeln!(transcript, "probes={probes}");
    let _ = writeln!(transcript, "backoff={:?}", remote.backoff_history());
    let _ = writeln!(transcript, "injected: {}", net.injected().summary());
    handle.shutdown();
    transcript
}

proptest! {
    // Each case spins real sockets and may wait out real read timeouts;
    // a handful of cases already walks every fault class.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the schedule throws, every leg resolves to a typed
    /// outcome, the breaker recovers once the network heals, and the
    /// whole run replays byte-identically at the same seeds.
    #[test]
    fn arbitrary_schedules_recover_and_replay(
        client_seed in any::<u64>(),
        plan in plan_strategy(),
        legs in proptest::collection::vec(leg_strategy(), 4..10),
    ) {
        let first = run_schedule(client_seed, plan.clone(), &legs);
        let second = run_schedule(client_seed, plan, &legs);
        prop_assert_eq!(first, second);
    }

    /// A full partition is the worst schedule: every leg fails, the
    /// breaker opens — and healing still readmits the shard.
    #[test]
    fn full_partitions_open_the_breaker_and_heal(
        client_seed in any::<u64>(),
        net_seed in any::<u64>(),
        drop_responses in any::<bool>(),
    ) {
        let partition = if drop_responses {
            Partition::DropResponses
        } else {
            Partition::DropRequests
        };
        let plan = NetFaultPlan::partitioned(net_seed, partition);
        let transcript = run_schedule(client_seed, plan, &[Leg::EpochMeta; 4]);
        prop_assert!(
            transcript.lines().take(4).all(|l| l.ends_with("-> transport")),
            "partitioned legs answered: {transcript}"
        );
    }
}
