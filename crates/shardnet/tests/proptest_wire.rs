//! Wire-protocol robustness properties: no byte sequence an adversarial
//! (or merely broken) peer can send may panic the frame codec, the
//! client-side response parser, or the shard server — and malformed
//! frames must be *counted*, never silently dropped.
//!
//! The properties deliberately feed three classes of garbage:
//! arbitrary bytes, truncations of valid frames, and single-byte
//! mutations of valid frames (which may still decode — the assertion is
//! "no panic and no misparse of the length discipline", not "always an
//! error").

use crowdnet_json::{obj, Value};
use crowdnet_serve::http::Request;
use crowdnet_serve::server::RequestHandler;
use crowdnet_shard::LocalShard;
use crowdnet_shardnet::{wire, ShardServer};
use crowdnet_telemetry::Telemetry;
use proptest::prelude::*;
use std::sync::Arc;

/// A small generator of structurally varied frame payloads.
fn payload_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|n| Value::from(i64::from(n))),
        "[a-z0-9 ]{0,24}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>().prop_map(|b| Value::from(u64::from(b))), 0..8)
            .prop_map(Value::Arr),
        ("[a-z]{1,8}", "[a-z0-9]{0,16}")
            .prop_map(|(k, v)| obj! {k.as_str() => v.as_str(), "n" => 7u64}),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Frames survive the round trip, whatever the payload shape.
    #[test]
    fn frames_round_trip(payload in payload_strategy()) {
        let encoded = wire::encode_frame(&payload);
        let decoded = wire::decode_frame(&encoded).expect("valid frame decodes");
        prop_assert_eq!(decoded, payload);
    }

    /// Arbitrary bytes never panic the frame decoder.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode_frame(&bytes);
    }

    /// Every strict truncation of a valid frame is an error — the length
    /// prefix makes a short read detectable, not a silent partial parse.
    #[test]
    fn truncations_are_errors_not_panics(
        payload in payload_strategy(),
        cut in 0.0f64..1.0,
    ) {
        let encoded = wire::encode_frame(&payload);
        let keep = ((encoded.len() as f64) * cut) as usize;
        prop_assume!(keep < encoded.len());
        prop_assert!(wire::decode_frame(&encoded[..keep]).is_err());
    }

    /// Flipping any single byte never panics; corrupting the header's
    /// length field specifically must be caught by the length discipline.
    #[test]
    fn single_byte_mutations_never_panic(
        payload in payload_strategy(),
        pos_unit in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let mut encoded = wire::encode_frame(&payload);
        let pos = (((encoded.len() as f64) * pos_unit) as usize).min(encoded.len() - 1);
        encoded[pos] ^= flip as u8;
        let result = wire::decode_frame(&encoded);
        if pos < wire::FRAME_HEADER_BYTES {
            prop_assert!(result.is_err(), "corrupt length prefix decoded: {result:?}");
        }
    }

    /// The client's incremental HTTP response parser accepts any byte
    /// stream without panicking, in arbitrarily small feed chunks.
    #[test]
    fn response_parser_never_panics_on_arbitrary_streams(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..64,
    ) {
        let mut parser = wire::ResponseParser::new();
        for piece in bytes.chunks(chunk) {
            parser.feed(piece);
            if parser.poll().is_err() {
                return Ok(()); // a detected protocol error ends the stream
            }
        }
    }

    /// A valid response parses identically no matter how the bytes are
    /// split across reads.
    #[test]
    fn response_parsing_is_split_invariant(
        payload in payload_strategy(),
        chunk in 1usize..48,
    ) {
        let body = wire::encode_frame(&payload);
        let mut stream = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        )
        .into_bytes();
        stream.extend_from_slice(&body);

        let mut whole = wire::ResponseParser::new();
        whole.feed(&stream);
        let reference = whole.poll().expect("parse").expect("complete");

        let mut split = wire::ResponseParser::new();
        let mut parsed = None;
        for piece in stream.chunks(chunk) {
            split.feed(piece);
            if let Some(r) = split.poll().expect("parse") {
                parsed = Some(r);
                break;
            }
        }
        let parsed = parsed.expect("split parse completed");
        prop_assert_eq!(parsed.status, reference.status);
        prop_assert_eq!(parsed.keep_alive, reference.keep_alive);
        prop_assert_eq!(parsed.body, reference.body);
    }

    /// The shard server answers arbitrary request bodies on every leg
    /// without panicking, and counts each malformed frame.
    #[test]
    fn shard_server_counts_malformed_frames_instead_of_panicking(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        leg in prop_oneof![
            Just("epoch_meta"), Just("scan_partitions"), Just("entity_docs"),
            Just("investor_edges"), Just("company_edges"), Just("top_k_prefix"),
            Just("shard_stats"), Just("submit"), Just("recover"), Just("bogus"),
        ],
    ) {
        let telemetry = Telemetry::new();
        let shard = Arc::new(LocalShard::open_memory(0, 2, &telemetry).expect("shard"));
        let server = ShardServer::new(shard, &telemetry);

        let mut req = Request::get(&format!("/shard/{leg}"));
        req.method = "POST".into();
        req.body = body.clone();
        let response = server.handle(&req);
        prop_assert!(response.status == 200, "leg calls always answer 200, got {}", response.status);

        // The reply is itself a well-formed frame holding an envelope.
        let envelope = wire::decode_frame(&response.body).expect("reply frame");
        let opened = wire::open_envelope(envelope);
        if wire::decode_frame(&body).is_err() {
            let malformed = telemetry
                .registry()
                .counter_values()
                .into_iter()
                .find(|(name, _)| name == "shardnet.frames.malformed")
                .map(|(_, v)| v)
                .unwrap_or(0);
            prop_assert!(malformed >= 1, "malformed frame was not counted");
            prop_assert!(opened.is_err(), "malformed frame answered ok");
        }
    }
}
