//! JSON serializers: compact (storage/wire format) and pretty (debugging,
//! result files).

use crate::value::Value;

/// Serialize with no whitespace. One document per line is the `crowdnet-store`
/// on-disk format, so the output never contains raw newlines (they are escaped
/// inside strings).
pub fn to_compact(value: &Value) -> String {
    let mut out = String::with_capacity(estimate(value));
    write_value(value, &mut out);
    out
}

/// Serialize with two-space indentation and `": "` / `",\n"` separators.
pub fn to_pretty(value: &Value) -> String {
    let mut out = String::with_capacity(estimate(value) * 2);
    write_pretty(value, &mut out, 0);
    out
}

/// Rough output-size estimate to pre-size the buffer (perf guide: avoid
/// repeated reallocation on hot serialization paths).
fn estimate(value: &Value) -> usize {
    match value {
        Value::Null => 4,
        Value::Bool(_) => 5,
        Value::Num(_) => 12,
        Value::Str(s) => s.len() + 2,
        Value::Arr(a) => 2 + a.iter().map(estimate).sum::<usize>() + a.len(),
        Value::Obj(o) => {
            2 + o
                .iter()
                .map(|(k, v)| k.len() + 3 + estimate(v) + 1)
                .sum::<usize>()
        }
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            use std::fmt::Write;
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(obj) => {
            out.push('{');
            for (i, (k, v)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(obj) if !obj.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Write a JSON string literal with all required escapes.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    let mut run_start = 0;
    for (i, b) in s.bytes().enumerate() {
        let esc: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            0x08 => Some("\\b"),
            0x0C => Some("\\f"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x00..=0x1F => None, // handled below with \u00XX
            _ => continue,
        };
        out.push_str(&s[run_start..i]);
        match esc {
            Some(e) => out.push_str(e),
            None => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", b);
            }
        }
        run_start = i + 1;
    }
    out.push_str(&s[run_start..]);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{arr, obj, parse, Value};

    #[test]
    fn compact_scalars() {
        assert_eq!(Value::Null.to_compact(), "null");
        assert_eq!(Value::from(true).to_compact(), "true");
        assert_eq!(Value::from(false).to_compact(), "false");
        assert_eq!(Value::from(-7i64).to_compact(), "-7");
        assert_eq!(Value::from(2.5).to_compact(), "2.5");
        assert_eq!(Value::from("x").to_compact(), "\"x\"");
    }

    #[test]
    fn compact_containers() {
        assert_eq!(arr![1, 2, 3].to_compact(), "[1,2,3]");
        assert_eq!(obj! {"a" => 1, "b" => arr![]}.to_compact(), r#"{"a":1,"b":[]}"#);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Value::from("a\"b").to_compact(), r#""a\"b""#);
        assert_eq!(Value::from("a\\b").to_compact(), r#""a\\b""#);
        assert_eq!(Value::from("a\nb\t").to_compact(), "\"a\\nb\\t\"");
        assert_eq!(Value::from("\u{1}").to_compact(), "\"\\u0001\"");
        // Non-ASCII stays raw UTF-8 (valid JSON, smaller output).
        assert_eq!(Value::from("é").to_compact(), "\"é\"");
    }

    #[test]
    fn compact_output_is_single_line() {
        let v = obj! {"text" => "line1\nline2", "arr" => arr![obj!{"x" => "\r"}]};
        assert!(!v.to_compact().contains('\n'));
        assert!(!v.to_compact().contains('\r'));
    }

    #[test]
    fn roundtrip_through_parser() {
        let v = obj! {
            "s" => "a\"\\\n\té😀",
            "nums" => arr![0, -1, 3.5, 1e10],
            "nested" => obj!{"deep" => arr![obj!{}, arr![], Value::Null]},
            "big" => u64::MAX,
        };
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn pretty_format_shape() {
        let v = obj! {"a" => arr![1], "b" => obj!{}};
        let pretty = v.to_pretty();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn float_roundtrip_keeps_floatness() {
        let v = Value::from(3.0);
        let back = parse(&v.to_compact()).unwrap();
        assert!(matches!(back, Value::Num(crate::Number::Float(_))));
    }
}
