//! Insertion-ordered JSON objects.
//!
//! API responses are easier to diff, test and eyeball when key order is
//! stable, so objects preserve insertion order (like the `OrderedDict`s the
//! original Python crawlers produced) while still offering O(1) lookup via a
//! small side index once the object grows past a linear-scan-friendly size.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Linear scans beat hashing for tiny objects; build the index lazily.
const INDEX_THRESHOLD: usize = 12;

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Clone, Default)]
pub struct Object {
    entries: Vec<(String, Value)>,
    /// Lazily populated key → entry-index map, kept in sync on mutation.
    index: Option<HashMap<String, usize>>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// An empty object with pre-allocated room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Object {
            entries: Vec::with_capacity(cap),
            index: None,
        }
    }

    /// Number of key/value entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &str) -> Option<usize> {
        if let Some(idx) = &self.index {
            idx.get(key).copied()
        } else {
            self.entries.iter().position(|(k, _)| k == key)
        }
    }

    fn maybe_build_index(&mut self) {
        if self.index.is_none() && self.entries.len() >= INDEX_THRESHOLD {
            self.index = Some(
                self.entries
                    .iter()
                    .enumerate()
                    .map(|(i, (k, _))| (k.clone(), i))
                    .collect(),
            );
        }
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.position(key).map(|i| &self.entries[i].1)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.position(key).map(|i| &mut self.entries[i].1)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.position(key).is_some()
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        match self.position(&key) {
            Some(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            None => {
                if let Some(idx) = &mut self.index {
                    idx.insert(key.clone(), self.entries.len());
                }
                self.entries.push((key, value));
                self.maybe_build_index();
                None
            }
        }
    }

    /// Remove a key, preserving the order of remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.position(key)?;
        let (_, v) = self.entries.remove(i);
        // Positions after `i` shifted; rebuilding lazily is simplest and
        // removal is rare on the hot paths (documents are append-built).
        self.index = None;
        self.maybe_build_index();
        Some(v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Object {
    /// Order-insensitive equality: two objects are equal when they hold the
    /// same key/value set, matching JSON semantics rather than serialization.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).map(|ov| ov == v).unwrap_or(false))
    }
}

impl fmt::Debug for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for Object {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut obj = Object::new();
        for (k, v) in iter {
            obj.insert(k, v);
        }
        obj
    }
}

impl IntoIterator for Object {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut o = Object::new();
        assert!(o.insert("a", 1i64).is_none());
        assert!(o.insert("b", "x").is_none());
        assert_eq!(o.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(o.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(o.get("c"), None);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut o = Object::new();
        o.insert("k", 1i64);
        let old = o.insert("k", 2i64);
        assert_eq!(old.and_then(|v| v.as_i64()), Some(1));
        assert_eq!(o.len(), 1);
        assert_eq!(o.get("k").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn preserves_insertion_order() {
        let mut o = Object::new();
        for k in ["z", "a", "m", "b"] {
            o.insert(k, Value::Null);
        }
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m", "b"]);
    }

    #[test]
    fn index_kicks_in_for_large_objects() {
        let mut o = Object::new();
        for i in 0..100 {
            o.insert(format!("k{i}"), i as i64);
        }
        assert_eq!(o.get("k57").and_then(Value::as_i64), Some(57));
        assert_eq!(o.get("nope"), None);
        // Replacement still works through the index.
        o.insert("k57", -1i64);
        assert_eq!(o.get("k57").and_then(Value::as_i64), Some(-1));
        assert_eq!(o.len(), 100);
    }

    #[test]
    fn remove_preserves_order_and_lookup() {
        let mut o = Object::new();
        for i in 0..20 {
            o.insert(format!("k{i}"), i as i64);
        }
        assert!(o.remove("k3").is_some());
        assert!(o.remove("k3").is_none());
        assert_eq!(o.len(), 19);
        assert_eq!(o.get("k19").and_then(Value::as_i64), Some(19));
        let keys: Vec<_> = o.keys().take(4).collect();
        assert_eq!(keys, vec!["k0", "k1", "k2", "k4"]);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a: Object = [("x", 1i64), ("y", 2i64)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), Value::from(v)))
            .collect();
        let b: Object = [("y", 2i64), ("x", 1i64)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), Value::from(v)))
            .collect();
        assert_eq!(a, b);
    }
}
