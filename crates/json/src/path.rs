//! Dotted-path extraction over [`Value`] trees.
//!
//! The analytics layer (the "Spark queries" of the paper) pulls fields out of
//! heterogeneous crawled documents with paths like `"company.twitter_url"` or
//! `"funding.rounds[0].raised_usd"`. A path is a sequence of object keys
//! separated by `.`, each optionally followed by one or more `[index]` array
//! subscripts.

use crate::value::Value;

/// One step of a parsed path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Descend into an object member.
    Key(String),
    /// Descend into an array element.
    Index(usize),
}

/// Parse a dotted path into steps. Returns `None` for malformed paths
/// (empty components, unterminated `[`, non-numeric subscripts).
pub fn parse_path(path: &str) -> Option<Vec<Step>> {
    let mut steps = Vec::new();
    for component in path.split('.') {
        let mut rest = component;
        // Leading key part (may be empty only if component is pure subscripts,
        // which we reject: `a..b` and `.a` are malformed).
        let key_end = rest.find('[').unwrap_or(rest.len());
        let key = &rest[..key_end];
        if key.is_empty() {
            return None;
        }
        steps.push(Step::Key(key.to_string()));
        rest = &rest[key_end..];
        while let Some(stripped) = rest.strip_prefix('[') {
            let close = stripped.find(']')?;
            let idx: usize = stripped[..close].parse().ok()?;
            steps.push(Step::Index(idx));
            rest = &stripped[close + 1..];
        }
        if !rest.is_empty() {
            return None;
        }
    }
    Some(steps)
}

/// Walk `value` along `path`; `None` on any mismatch.
pub fn extract_path<'a>(value: &'a Value, path: &str) -> Option<&'a Value> {
    let steps = parse_path(path)?;
    let mut cur = value;
    for step in &steps {
        cur = match step {
            Step::Key(k) => cur.get(k)?,
            Step::Index(i) => cur.at(*i)?,
        };
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arr, obj, Value};

    fn doc() -> Value {
        obj! {
            "company" => obj! {
                "name" => "Acme",
                "rounds" => arr![
                    obj!{"raised_usd" => 100000, "investors" => arr![1, 2]},
                    obj!{"raised_usd" => 250000},
                ],
            },
            "ok" => true,
        }
    }

    #[test]
    fn parse_simple() {
        assert_eq!(
            parse_path("a.b").unwrap(),
            vec![Step::Key("a".into()), Step::Key("b".into())]
        );
    }

    #[test]
    fn parse_subscripts() {
        assert_eq!(
            parse_path("a[3][0].b").unwrap(),
            vec![
                Step::Key("a".into()),
                Step::Index(3),
                Step::Index(0),
                Step::Key("b".into())
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_path("").is_none());
        assert!(parse_path(".a").is_none());
        assert!(parse_path("a..b").is_none());
        assert!(parse_path("a[").is_none());
        assert!(parse_path("a[x]").is_none());
        assert!(parse_path("a[1]b").is_none());
    }

    #[test]
    fn extract_object_chain() {
        let d = doc();
        assert_eq!(d.path("company.name").and_then(Value::as_str), Some("Acme"));
        assert_eq!(d.path("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn extract_array_elements() {
        let d = doc();
        assert_eq!(
            d.path("company.rounds[1].raised_usd").and_then(Value::as_i64),
            Some(250_000)
        );
        assert_eq!(
            d.path("company.rounds[0].investors[1]").and_then(Value::as_i64),
            Some(2)
        );
    }

    #[test]
    fn extract_missing_is_none() {
        let d = doc();
        assert!(d.path("company.missing").is_none());
        assert!(d.path("company.rounds[9]").is_none());
        assert!(d.path("company.name.deeper").is_none());
        assert!(d.path("company.rounds.key").is_none());
    }
}
