//! # crowdnet-json
//!
//! A self-contained JSON implementation used as the wire and storage format of
//! the CrowdNet platform.
//!
//! The paper stores every crawled record "in HDFS as files in the JSON
//! format"; the simulated web APIs in `crowdnet-socialsim` likewise return
//! JSON documents, and `crowdnet-store` persists JSON lines. This crate
//! provides the full round trip:
//!
//! * [`Value`] — the document model (null / bool / number / string / array /
//!   insertion-ordered object),
//! * [`parse`] / [`Value::parse`] — an RFC 8259 recursive-descent parser with
//!   precise error positions and a recursion-depth guard,
//! * [`Value::to_compact`] / [`Value::to_pretty`] — serializers,
//! * [`Value::path`] — dotted-path extraction (`profile.twitter_url`,
//!   `rounds[0].raised_usd`) used by the analytics layer,
//! * [`obj!`] / [`arr!`] — literal construction macros used throughout the
//!   simulator.
//!
//! ```
//! use crowdnet_json::{obj, arr, Value};
//!
//! let doc = obj! {
//!     "name" => "Planetary Resources",
//!     "follower_count" => 12_842,
//!     "fundraising" => true,
//!     "social" => obj! { "twitter_url" => "https://twitter.com/planetaryrsrcs" },
//!     "tags" => arr!["space", "mining"],
//! };
//! let text = doc.to_compact();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.path("social.twitter_url").and_then(Value::as_str),
//!            Some("https://twitter.com/planetaryrsrcs"));
//! ```

pub mod number;
pub mod object;
pub mod parse;
pub mod path;
pub mod ser;
pub mod value;

pub use number::Number;
pub use object::Object;
pub use parse::{parse, ParseError, ParseErrorKind};
pub use value::Value;
