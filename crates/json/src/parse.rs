//! RFC 8259 recursive-descent JSON parser.
//!
//! Byte-level scanning over the input with exact `(line, column)` error
//! positions, full string-escape handling (including `\uXXXX` surrogate
//! pairs), exact integer capture, and a recursion-depth guard so hostile or
//! corrupted store files cannot blow the stack.

use crate::number::Number;
use crate::object::Object;
use crate::value::Value;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 256;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected construct.
    UnexpectedChar(char),
    /// Malformed literal (`true` / `false` / `null` misspelled).
    BadLiteral,
    /// Malformed number.
    BadNumber,
    /// Malformed string escape.
    BadEscape,
    /// `\uXXXX` did not form a valid scalar value / surrogate pair.
    BadUnicode,
    /// Control character inside a string (must be escaped).
    BareControl,
    /// Nesting beyond [`MAX_DEPTH`].
    TooDeep,
    /// Trailing non-whitespace after the document.
    TrailingData,
}

/// A parse failure with its position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Failure category.
    pub kind: ParseErrorKind,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (in bytes) of the offending byte.
    pub column: usize,
    /// Byte offset of the offending byte.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {:?}",
            self.line, self.column, self.kind
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing whitespace is allowed, any other
/// trailing content is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err(ParseErrorKind::TrailingData));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            kind,
            line,
            column: col,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.err(ParseErrorKind::UnexpectedChar(c as char))),
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ParseErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(ParseErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn literal(&mut self, text: &[u8], value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(ParseErrorKind::BadLiteral))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            obj.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(obj)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(ParseErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(ParseErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        // Fast path: copy runs of plain bytes in one shot.
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    out.push_str(self.slice_str(run_start, self.pos));
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.slice_str(run_start, self.pos));
                    self.pos += 1;
                    self.escape(&mut out)?;
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => return Err(self.err(ParseErrorKind::BareControl)),
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
    }

    fn slice_str(&self, start: usize, end: usize) -> &'a str {
        // Input is &str, and we only split at ASCII delimiters, so the slice
        // is valid UTF-8 by construction; an empty fallback (rather than a
        // panic) keeps malformed internal state from taking the process down.
        self.bytes
            .get(start..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("")
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            Some(b'"') => {
                out.push('"');
                Ok(())
            }
            Some(b'\\') => {
                out.push('\\');
                Ok(())
            }
            Some(b'/') => {
                out.push('/');
                Ok(())
            }
            Some(b'b') => {
                out.push('\u{0008}');
                Ok(())
            }
            Some(b'f') => {
                out.push('\u{000C}');
                Ok(())
            }
            Some(b'n') => {
                out.push('\n');
                Ok(())
            }
            Some(b'r') => {
                out.push('\r');
                Ok(())
            }
            Some(b't') => {
                out.push('\t');
                Ok(())
            }
            Some(b'u') => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err(ParseErrorKind::BadUnicode));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err(ParseErrorKind::BadUnicode));
                    }
                    let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(scalar).ok_or_else(|| self.err(ParseErrorKind::BadUnicode))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(ParseErrorKind::BadUnicode));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err(ParseErrorKind::BadUnicode))?
                };
                out.push(ch);
                Ok(())
            }
            Some(_) => Err(self.err(ParseErrorKind::BadEscape)),
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err(ParseErrorKind::BadUnicode)),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err(ParseErrorKind::BadNumber)),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ParseErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ParseErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self.slice_str(start, self.pos);
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::UInt(u)));
            }
            // Exceeds 64-bit range; fall through to float.
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| self.err(ParseErrorKind::BadNumber))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arr, obj};

    fn p(s: &str) -> Value {
        parse(s).unwrap_or_else(|e| panic!("parse {s:?} failed: {e}"))
    }

    fn fails(s: &str) -> ParseErrorKind {
        parse(s).expect_err(&format!("expected {s:?} to fail")).kind
    }

    #[test]
    fn scalars() {
        assert_eq!(p("null"), Value::Null);
        assert_eq!(p("true"), Value::Bool(true));
        assert_eq!(p("false"), Value::Bool(false));
        assert_eq!(p("0"), Value::from(0i64));
        assert_eq!(p("-17"), Value::from(-17i64));
        assert_eq!(p("3.25"), Value::from(3.25));
        assert_eq!(p("1e3"), Value::from(1000.0));
        assert_eq!(p("2.5E-1"), Value::from(0.25));
        assert_eq!(p("\"hi\""), Value::from("hi"));
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(p("  \n\t 42 \r\n"), Value::from(42i64));
    }

    #[test]
    fn large_integers_exact() {
        assert_eq!(p(&i64::MAX.to_string()), Value::from(i64::MAX));
        assert_eq!(p(&i64::MIN.to_string()), Value::from(i64::MIN));
        assert_eq!(p(&u64::MAX.to_string()), Value::from(u64::MAX));
    }

    #[test]
    fn beyond_u64_becomes_float() {
        let v = p("99999999999999999999999");
        assert!(matches!(v, Value::Num(Number::Float(_))));
    }

    #[test]
    fn nested_structures() {
        let v = p(r#"{"a": [1, {"b": null}, "s"], "c": {"d": false}}"#);
        assert_eq!(
            v,
            obj! {
                "a" => arr![1, obj!{"b" => Value::Null}, "s"],
                "c" => obj!{"d" => false},
            }
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(p("[]"), arr![]);
        assert_eq!(p("{}"), obj! {});
        assert_eq!(p("[ ]"), arr![]);
        assert_eq!(p("{ }"), obj! {});
    }

    #[test]
    fn string_escapes() {
        assert_eq!(p(r#""\"\\\/\b\f\n\r\t""#), Value::from("\"\\/\u{8}\u{c}\n\r\t"));
        assert_eq!(p(r#""A""#), Value::from("A"));
        assert_eq!(p(r#""é""#), Value::from("é"));
        // Surrogate pair: U+1F600
        assert_eq!(p(r#""😀""#), Value::from("😀"));
    }

    #[test]
    fn raw_utf8_passthrough() {
        assert_eq!(p("\"héllo 世界\""), Value::from("héllo 世界"));
    }

    #[test]
    fn error_unexpected_eof() {
        assert_eq!(fails("{\"a\":"), ParseErrorKind::UnexpectedEof);
        assert_eq!(fails("["), ParseErrorKind::UnexpectedEof);
        assert_eq!(fails("\"abc"), ParseErrorKind::UnexpectedEof);
        assert_eq!(fails(""), ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_bad_literals() {
        assert_eq!(fails("tru"), ParseErrorKind::BadLiteral);
        assert_eq!(fails("nul"), ParseErrorKind::BadLiteral);
        assert_eq!(fails("falsy"), ParseErrorKind::BadLiteral);
    }

    #[test]
    fn error_bad_numbers() {
        assert_eq!(fails("01"), ParseErrorKind::TrailingData); // "0" then junk
        assert_eq!(fails("-"), ParseErrorKind::BadNumber);
        assert_eq!(fails("1."), ParseErrorKind::BadNumber);
        assert_eq!(fails("1e"), ParseErrorKind::BadNumber);
        assert_eq!(fails("1e+"), ParseErrorKind::BadNumber);
    }

    #[test]
    fn error_trailing_data() {
        assert_eq!(fails("1 2"), ParseErrorKind::TrailingData);
        assert_eq!(fails("{} x"), ParseErrorKind::TrailingData);
    }

    #[test]
    fn error_bad_escape_and_control() {
        assert_eq!(fails(r#""\q""#), ParseErrorKind::BadEscape);
        assert_eq!(fails("\"a\nb\""), ParseErrorKind::BareControl);
        assert_eq!(fails(r#""\ud83d""#), ParseErrorKind::BadUnicode); // lone high surrogate
        assert_eq!(fails(r#""\ude00""#), ParseErrorKind::BadUnicode); // lone low surrogate
        assert_eq!(fails(r#""\uZZZZ""#), ParseErrorKind::BadUnicode);
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("{\"a\": \n  @}").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 3);
        assert_eq!(e.kind, ParseErrorKind::UnexpectedChar('@'));
    }

    #[test]
    fn depth_guard() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(fails(&deep), ParseErrorKind::TooDeep);
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        // RFC 8259 leaves duplicate-key behavior to implementations; we keep
        // the last occurrence, matching the Python crawlers' dict semantics.
        let v = p(r#"{"k": 1, "k": 2}"#);
        assert_eq!(v.get("k").and_then(Value::as_i64), Some(2));
        assert_eq!(v.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn missing_separators() {
        assert!(matches!(fails("[1 2]"), ParseErrorKind::UnexpectedChar(_)));
        assert!(matches!(fails(r#"{"a" 1}"#), ParseErrorKind::UnexpectedChar(_)));
        assert!(matches!(fails(r#"{"a":1 "b":2}"#), ParseErrorKind::UnexpectedChar(_)));
    }
}
