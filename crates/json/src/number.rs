//! JSON numbers.
//!
//! JSON does not distinguish integer from floating-point lexically, but the
//! platform cares: identifiers (AngelList user ids), counters (likes, tweets)
//! and money amounts must survive a round trip without precision loss, so
//! integers in the i64/u64 range are kept exact rather than coerced to `f64`.

use std::cmp::Ordering;
use std::fmt;

/// An exact-when-possible JSON number.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer that fits in `i64`.
    Int(i64),
    /// An unsigned integer in `(i64::MAX, u64::MAX]`.
    UInt(u64),
    /// Everything else (fractions, exponents, out-of-range magnitudes).
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for 64-bit integers beyond 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// True if the number is stored exactly as an integer.
    pub fn is_integer(self) -> bool {
        matches!(self, Number::Int(_) | Number::UInt(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::UInt(a), Number::UInt(b)) => a == b,
            (Number::Int(a), Number::UInt(b)) | (Number::UInt(b), Number::Int(a)) => {
                u64::try_from(a).map(|a| a == b).unwrap_or(false)
            }
            // Mixed int/float comparisons go through f64; documents produced
            // by the pipeline never rely on >2^53 integer/float equality.
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (*self, *other) {
            (Number::Int(a), Number::Int(b)) => Some(a.cmp(&b)),
            (Number::UInt(a), Number::UInt(b)) => Some(a.cmp(&b)),
            (a, b) => a.as_f64().partial_cmp(&b.as_f64()),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 always produces a valid JSON number for
                    // finite values (Rust never prints `inf`-style text here).
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        // Keep a trailing ".0" so the value re-parses as float.
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/Infinity; serialize as null-adjacent 0.
                    // The platform never stores non-finite numbers (guarded in
                    // Value::from), this is a defensive fallback.
                    write!(f, "0.0")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Number::Int(i),
            Err(_) => Number::UInt(v),
        }
    }
}

impl From<i32> for Number {
    fn from(v: i32) -> Self {
        Number::Int(v as i64)
    }
}

impl From<u32> for Number {
    fn from(v: u32) -> Self {
        Number::Int(v as i64)
    }
}

impl From<usize> for Number {
    fn from(v: usize) -> Self {
        Number::from(v as u64)
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_accessors() {
        let n = Number::from(42i64);
        assert_eq!(n.as_i64(), Some(42));
        assert_eq!(n.as_u64(), Some(42));
        assert_eq!(n.as_f64(), 42.0);
        assert!(n.is_integer());
    }

    #[test]
    fn negative_int_has_no_u64() {
        let n = Number::from(-3i64);
        assert_eq!(n.as_i64(), Some(-3));
        assert_eq!(n.as_u64(), None);
    }

    #[test]
    fn large_u64_is_preserved() {
        let big = u64::MAX - 5;
        let n = Number::from(big);
        assert!(matches!(n, Number::UInt(_)));
        assert_eq!(n.as_u64(), Some(big));
        assert_eq!(n.as_i64(), None);
    }

    #[test]
    fn small_u64_normalizes_to_int() {
        assert!(matches!(Number::from(7u64), Number::Int(7)));
    }

    #[test]
    fn float_integral_accessors() {
        let n = Number::from(8.0);
        assert_eq!(n.as_i64(), Some(8));
        assert_eq!(n.as_u64(), Some(8));
        assert!(!n.is_integer());
    }

    #[test]
    fn float_fractional_has_no_int() {
        assert_eq!(Number::from(1.5).as_i64(), None);
        assert_eq!(Number::from(1.5).as_u64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Number::Int(-12).to_string(), "-12");
        assert_eq!(Number::UInt(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Number::Float(2.5).to_string(), "2.5");
        assert_eq!(Number::Float(3.0).to_string(), "3.0");
    }

    #[test]
    fn cross_variant_eq() {
        assert_eq!(Number::Int(5), Number::UInt(5));
        assert_eq!(Number::Int(5), Number::Float(5.0));
        assert_ne!(Number::Int(-1), Number::UInt(u64::MAX));
    }

    #[test]
    fn ordering() {
        assert!(Number::Int(3) < Number::Int(4));
        assert!(Number::Float(3.5) < Number::Int(4));
        assert!(Number::UInt(10) > Number::Float(9.5));
    }

    #[test]
    fn non_finite_serializes_defensively() {
        assert_eq!(Number::Float(f64::NAN).to_string(), "0.0");
        assert_eq!(Number::Float(f64::INFINITY).to_string(), "0.0");
    }
}
