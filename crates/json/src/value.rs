//! The JSON document model.

use crate::number::Number;
use crate::object::Object;
use crate::parse::{parse, ParseError};
use crate::path::extract_path;
use crate::ser;
use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order; numbers keep integers exact (see
/// [`Number`]). Equality follows JSON semantics: object equality is
/// key-set-based, `1` equals `1.0`.
#[derive(Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (exact integer or float).
    Num(Number),
    /// A UTF-8 string.
    Str(String),
    /// An array of values.
    Arr(Vec<Value>),
    /// An insertion-ordered object.
    Obj(Object),
}

impl Value {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        parse(text)
    }

    /// Serialize without whitespace (the storage format of `crowdnet-store`).
    pub fn to_compact(&self) -> String {
        ser::to_compact(self)
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty(&self) -> String {
        ser::to_pretty(self)
    }

    /// Extract a nested value by dotted path, e.g. `"rounds[0].raised_usd"`.
    /// Returns `None` if any component is missing or of the wrong shape.
    pub fn path(&self, path: &str) -> Option<&Value> {
        extract_path(self, path)
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is an in-range non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&Object> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable object payload, if this is an object.
    pub fn as_obj_mut(&mut self) -> Option<&mut Object> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Array element lookup; `None` for non-arrays and out-of-range indices.
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_arr().and_then(|a| a.get(index))
    }

    /// Deep-merge `patch` into `self` (RFC 7386 JSON-merge-patch semantics):
    /// objects merge recursively, `null` members delete keys, everything
    /// else replaces. Used by the longitudinal pipeline to fold profile
    /// updates into earlier observations.
    ///
    /// ```
    /// use crowdnet_json::{obj, Value};
    /// let mut doc = obj! {"a" => 1, "b" => obj!{"x" => 1, "y" => 2}};
    /// doc.merge(&obj! {"b" => obj!{"y" => 9, "z" => 3}, "a" => Value::Null});
    /// assert_eq!(doc, obj! {"b" => obj!{"x" => 1, "y" => 9, "z" => 3}});
    /// ```
    pub fn merge(&mut self, patch: &Value) {
        match (self, patch) {
            (Value::Obj(base), Value::Obj(patch)) => {
                for (k, v) in patch.iter() {
                    if v.is_null() {
                        base.remove(k);
                    } else if let (Some(slot @ Value::Obj(_)), Value::Obj(_)) =
                        (base.get_mut(k), v)
                    {
                        slot.merge(v);
                    } else {
                        base.insert(k, v.clone());
                    }
                }
            }
            (slot, patch) => *slot = patch.clone(),
        }
    }

    /// A short tag naming the variant — used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug output is valid JSON; convenient in assertion diffs.
        f.write_str(&self.to_compact())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(Number::from(v))
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Num(Number::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Num(Number::from(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Num(Number::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Num(Number::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        // JSON cannot represent non-finite numbers; store null like most
        // web APIs do for missing measurements.
        if v.is_finite() {
            Value::Num(Number::from(v))
        } else {
            Value::Null
        }
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Number> for Value {
    fn from(v: Number) -> Self {
        Value::Num(v)
    }
}
impl From<Object> for Value {
    fn from(v: Object) -> Self {
        Value::Obj(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Build a JSON object literal.
///
/// ```
/// use crowdnet_json::{obj, Value};
/// let v = obj! { "id" => 7, "name" => "x" };
/// assert_eq!(v.get("id").and_then(Value::as_i64), Some(7));
/// ```
#[macro_export]
macro_rules! obj {
    () => { $crate::Value::Obj($crate::Object::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut o = $crate::Object::new();
        $( o.insert($k, $crate::Value::from($v)); )+
        $crate::Value::Obj(o)
    }};
}

/// Build a JSON array literal.
///
/// ```
/// use crowdnet_json::{arr, Value};
/// let v = arr![1, "two", 3.0];
/// assert_eq!(v.at(1).and_then(Value::as_str), Some("two"));
/// ```
#[macro_export]
macro_rules! arr {
    () => { $crate::Value::Arr(Vec::new()) };
    ( $( $v:expr ),+ $(,)? ) => {
        $crate::Value::Arr(vec![ $( $crate::Value::from($v) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn accessors_match_variants() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(2i64).as_i64(), Some(2));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(arr![1, 2].as_arr().map(|a| a.len()), Some(2));
        assert!(obj! {"a" => 1}.as_obj().is_some());
    }

    #[test]
    fn wrong_variant_accessors_are_none() {
        let v = Value::from("text");
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_i64(), None);
        assert_eq!(v.as_arr(), None);
        assert!(v.as_obj().is_none());
        assert_eq!(v.get("k"), None);
        assert_eq!(v.at(0), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(Value::from(f64::NAN).is_null());
        assert!(Value::from(f64::NEG_INFINITY).is_null());
    }

    #[test]
    fn option_from() {
        assert_eq!(Value::from(Some(3i64)).as_i64(), Some(3));
        assert!(Value::from(None::<i64>).is_null());
    }

    #[test]
    fn nested_macro_construction() {
        let v = obj! {
            "company" => obj! { "id" => 10, "tags" => arr!["a", "b"] },
            "ok" => true,
        };
        assert_eq!(v.path("company.tags[1]").and_then(Value::as_str), Some("b"));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn number_semantics_in_equality() {
        assert_eq!(Value::from(1i64), Value::from(1.0));
        assert_ne!(Value::from(1i64), Value::from("1"));
    }

    #[test]
    fn merge_replaces_scalars_and_arrays() {
        let mut v = Value::from(1i64);
        v.merge(&Value::from("x"));
        assert_eq!(v, Value::from("x"));
        let mut a = arr![1, 2];
        a.merge(&arr![3]);
        assert_eq!(a, arr![3]);
    }

    #[test]
    fn merge_nested_objects_recursively() {
        let mut doc = obj! {"u" => obj!{"a" => 1, "deep" => obj!{"k" => 1}}};
        doc.merge(&obj! {"u" => obj!{"deep" => obj!{"k" => 2, "n" => 3}}});
        assert_eq!(
            doc,
            obj! {"u" => obj!{"a" => 1, "deep" => obj!{"k" => 2, "n" => 3}}}
        );
    }

    #[test]
    fn merge_null_deletes() {
        let mut doc = obj! {"keep" => 1, "drop" => 2};
        doc.merge(&obj! {"drop" => Value::Null});
        assert_eq!(doc, obj! {"keep" => 1});
        // Deleting a missing key is a no-op.
        doc.merge(&obj! {"ghost" => Value::Null});
        assert_eq!(doc, obj! {"keep" => 1});
    }

    #[test]
    fn merge_object_over_scalar_replaces() {
        let mut doc = obj! {"x" => 5};
        doc.merge(&obj! {"x" => obj!{"now" => "object"}});
        assert_eq!(doc, obj! {"x" => obj!{"now" => "object"}});
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(arr![].type_name(), "array");
        assert_eq!(obj! {}.type_name(), "object");
    }
}
