//! Property-based tests: any generated JSON value survives a
//! serialize → parse round trip, in both compact and pretty form.

use crowdnet_json::{Object, Value};
use proptest::prelude::*;

/// Strategy for arbitrary JSON values with bounded depth/size.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        any::<u64>().prop_map(Value::from),
        // Finite floats only: JSON cannot encode NaN/inf.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::from),
        // Strings including escapes, control chars, non-ASCII.
        "\\PC*".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..8)
            .prop_map(|bytes| Value::from(String::from_utf8_lossy(&bytes).into_owned())),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::Arr),
            proptest::collection::vec(("[a-z_0-9]{0,12}", inner), 0..8).prop_map(|kvs| {
                Value::Obj(kvs.into_iter().collect::<Object>())
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_roundtrip(v in value_strategy()) {
        let text = v.to_compact();
        let back = Value::parse(&text).expect("serialized JSON must parse");
        prop_assert_eq!(&back, &v);
    }

    #[test]
    fn pretty_roundtrip(v in value_strategy()) {
        let text = v.to_pretty();
        let back = Value::parse(&text).expect("pretty JSON must parse");
        prop_assert_eq!(&back, &v);
    }

    #[test]
    fn compact_is_single_line(v in value_strategy()) {
        prop_assert!(!v.to_compact().contains('\n'));
    }

    #[test]
    fn reserialization_is_stable(v in value_strategy()) {
        // compact(parse(compact(v))) == compact(v): canonical after one trip.
        let once = v.to_compact();
        let twice = Value::parse(&once).unwrap().to_compact();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC*") {
        let _ = Value::parse(&s);
    }

    #[test]
    fn number_display_reparses(i in any::<i64>(), f in any::<f64>().prop_filter("finite", |f| f.is_finite())) {
        let vi = Value::from(i);
        prop_assert_eq!(Value::parse(&vi.to_compact()).unwrap(), vi);
        let vf = Value::from(f);
        let back = Value::parse(&vf.to_compact()).unwrap();
        // f64 display in Rust is shortest-roundtrip, so exact equality holds.
        prop_assert_eq!(back.as_f64(), Some(f));
    }

    #[test]
    fn path_extraction_agrees_with_manual_walk(
        v in value_strategy(),
        key in "[a-z]{1,4}",
        idx in 0usize..4,
    ) {
        // Wrap v so we know a valid path exists, then check path() finds it.
        let doc = crowdnet_json::obj! { key.clone() => Value::Arr(vec![v.clone(); idx + 1]) };
        let path = format!("{key}[{idx}]");
        prop_assert_eq!(doc.path(&path), Some(&v));
    }
}
