//! Property tests for the fixed-bucket histogram: quantile estimates stay
//! within bucket error of the exact quantiles, and snapshot merging is
//! associative and count-preserving.

use crowdnet_telemetry::metrics::{default_bounds, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(bounds: &[u64], samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new(bounds);
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    /// For every quantile, the exact order statistic lies within the
    /// bucket range the histogram reports — the histogram's whole error
    /// contract in one property.
    #[test]
    fn quantile_bounds_bracket_exact_quantiles(
        samples in proptest::collection::vec(0u64..5_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&[10, 50, 100, 500, 1000], &samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        let (lo, hi) = snap.quantile_bounds(q).expect("non-empty snapshot");
        prop_assert!(
            lo <= exact && exact <= hi,
            "q={q}: exact {exact} outside reported bucket [{lo}, {hi}]"
        );
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for snapshots sharing bucket bounds.
    #[test]
    fn merge_is_associative_for_shared_bounds(
        a in proptest::collection::vec(0u64..3_000, 0..50),
        b in proptest::collection::vec(0u64..3_000, 0..50),
        c in proptest::collection::vec(0u64..3_000, 0..50),
    ) {
        let bounds = [16u64, 256, 1024];
        let (sa, sb, sc) = (
            snapshot_of(&bounds, &a),
            snapshot_of(&bounds, &b),
            snapshot_of(&bounds, &c),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging equals recording everything into one histogram.
    #[test]
    fn merge_equals_union_for_shared_bounds(
        a in proptest::collection::vec(0u64..3_000, 0..60),
        b in proptest::collection::vec(0u64..3_000, 0..60),
    ) {
        let bounds = default_bounds();
        let mut merged = snapshot_of(&bounds, &a);
        merged.merge(&snapshot_of(&bounds, &b));
        let mut union: Vec<u64> = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&bounds, &union));
    }

    /// Cross-bounds merge never loses counts and keeps exact sum/min/max.
    #[test]
    fn cross_bounds_merge_preserves_count_and_sum(
        a in proptest::collection::vec(0u64..3_000, 0..60),
        b in proptest::collection::vec(0u64..3_000, 0..60),
    ) {
        let mut merged = snapshot_of(&[100, 1000], &a);
        merged.merge(&snapshot_of(&[7, 77, 777], &b));
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.counts.iter().sum::<u64>(), merged.count);
        prop_assert_eq!(merged.sum, a.iter().sum::<u64>() + b.iter().sum::<u64>());
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.min, all.iter().min().copied());
        prop_assert_eq!(merged.max, all.iter().max().copied());
    }
}
