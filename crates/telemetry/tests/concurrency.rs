//! Contention tests: no lost increments, no lost observations.

use crowdnet_telemetry::Telemetry;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counter_loses_no_increments_under_contention() {
    let t = Telemetry::new();
    crossbeam::thread::scope(|scope| {
        for _ in 0..THREADS {
            let t = t.clone();
            scope.spawn(move |_| {
                let c = t.counter("contended");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(t.counter("contended").value(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_loses_no_observations_under_contention() {
    let t = Telemetry::new();
    crossbeam::thread::scope(|scope| {
        for i in 0..THREADS {
            let t = t.clone();
            scope.spawn(move |_| {
                let h = t.histogram_with("contended", &[8, 64, 512]);
                for j in 0..PER_THREAD {
                    h.record((i as u64 * 31 + j) % 1000);
                }
            });
        }
    })
    .unwrap();
    let snap = t.histogram_with("contended", &[8, 64, 512]).snapshot();
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.count, expected);
    assert_eq!(snap.counts.iter().sum::<u64>(), expected);
    assert_eq!(snap.min, Some(0));
    assert_eq!(snap.max, Some(999));
}

#[test]
fn registry_races_resolve_to_one_metric_per_name() {
    let t = Telemetry::new();
    crossbeam::thread::scope(|scope| {
        for _ in 0..THREADS {
            let t = t.clone();
            scope.spawn(move |_| {
                // Everyone races to create the same names; each inc must
                // land on the single shared counter.
                for name in ["a", "b", "c"] {
                    t.counter(name).inc();
                }
            });
        }
    })
    .unwrap();
    for name in ["a", "b", "c"] {
        assert_eq!(t.counter(name).value(), THREADS as u64, "counter {name}");
    }
    assert_eq!(t.registry().counter_values().len(), 3);
}
