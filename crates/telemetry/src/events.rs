//! Bounded, lossy progress events.
//!
//! Library code emits events unconditionally; the ring keeps the most
//! recent [`DEFAULT_CAPACITY`] of them for the run report and counts what
//! it dropped. Whether an event *also* reaches stderr is decided by the
//! verbosity gate — [`Verbosity::Silent`] by default, so tests and library
//! consumers stay quiet and the old ad-hoc `eprintln!` chatter has a
//! single, opt-in choke point.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

/// Ring capacity used by `Telemetry::new`.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Event importance, ordered: `Progress` < `Debug` detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Coarse stage progress (one per crawl round / fit iteration).
    Progress = 1,
    /// Fine-grained detail.
    Debug = 2,
}

impl Level {
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Progress => "progress",
            Level::Debug => "debug",
        }
    }
}

/// Console gate: events with `level <= verbosity` are printed to stderr.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Nothing on stderr (the default).
    Silent = 0,
    /// Print `Progress` events.
    Progress = 1,
    /// Print `Progress` and `Debug` events.
    Debug = 2,
}

impl Verbosity {
    fn from_u8(v: u8) -> Verbosity {
        match v {
            0 => Verbosity::Silent,
            1 => Verbosity::Progress,
            _ => Verbosity::Debug,
        }
    }

    fn admits(self, level: Level) -> bool {
        (level as u8) <= (self as u8)
    }
}

/// One buffered event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number across the whole run (not reset by drops).
    pub seq: u64,
    pub time_ms: u64,
    pub level: Level,
    /// Component that emitted the event, e.g. `"crawl.bfs"` or `"coda"`.
    pub target: String,
    pub message: String,
}

#[derive(Default)]
struct RingState {
    entries: VecDeque<Event>,
    seq: u64,
    dropped: u64,
}

/// The bounded event buffer shared by all clones of a `Telemetry`.
pub struct EventRing {
    state: Mutex<RingState>,
    verbosity: AtomicU8,
    capacity: usize,
}

impl EventRing {
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            state: Mutex::new(RingState::default()),
            verbosity: AtomicU8::new(Verbosity::Silent as u8),
            capacity: capacity.max(1),
        }
    }

    pub fn set_verbosity(&self, v: Verbosity) {
        self.verbosity.store(v as u8, Ordering::Relaxed);
    }

    pub fn verbosity(&self) -> Verbosity {
        Verbosity::from_u8(self.verbosity.load(Ordering::Relaxed))
    }

    /// Append an event, evicting the oldest when full. Prints to stderr
    /// when the verbosity gate admits `level`.
    pub fn emit(&self, time_ms: u64, level: Level, target: &str, message: String) {
        if self.verbosity().admits(level) {
            eprintln!("[{target}] {message}");
        }
        let mut state = self.state.lock();
        let seq = state.seq;
        state.seq += 1;
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
            state.dropped += 1;
        }
        state.entries.push_back(Event {
            seq,
            time_ms,
            level,
            target: target.to_string(),
            message,
        });
    }

    /// The buffered events (oldest first) and how many were evicted.
    pub fn snapshot(&self) -> (Vec<Event>, u64) {
        let state = self.state.lock();
        (state.entries.iter().cloned().collect(), state.dropped)
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("verbosity", &self.verbosity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = EventRing::new(2);
        ring.emit(0, Level::Progress, "t", "a".into());
        ring.emit(1, Level::Progress, "t", "b".into());
        ring.emit(2, Level::Progress, "t", "c".into());
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 1);
        let messages: Vec<_> = events.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(messages, vec!["b", "c"]);
        // Sequence numbers keep counting across drops.
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
    }

    #[test]
    fn default_verbosity_is_silent() {
        let ring = EventRing::new(4);
        assert_eq!(ring.verbosity(), Verbosity::Silent);
        assert!(!ring.verbosity().admits(Level::Progress));
    }

    #[test]
    fn verbosity_gate_ordering() {
        assert!(Verbosity::Progress.admits(Level::Progress));
        assert!(!Verbosity::Progress.admits(Level::Debug));
        assert!(Verbosity::Debug.admits(Level::Debug));
        assert!(!Verbosity::Silent.admits(Level::Progress));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = EventRing::new(0);
        ring.emit(0, Level::Debug, "t", "x".into());
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
    }
}
