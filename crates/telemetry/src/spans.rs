//! Stage-level timing spans.
//!
//! A span opens with [`crate::Telemetry::span`] and closes when the
//! returned [`SpanGuard`] drops, recording start/end on the injected clock.
//! Nesting is tracked with a simple open-span stack: the span opened most
//! recently (and still open) is the parent of the next one. That model
//! fits the single-threaded orchestration points we instrument (pipeline →
//! crawl stages → analytics operators); guards opened concurrently from
//! worker threads still record correct times but may attribute parents
//! arbitrarily, which is why per-request work uses counters/histograms
//! instead.

use crate::Telemetry;
use parking_lot::Mutex;

/// One timed span. `end_ms` is `None` while the guard is still alive
/// (e.g. when a report is taken mid-run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    pub start_ms: u64,
    pub end_ms: Option<u64>,
    /// Nesting depth at open time: 0 = root.
    pub depth: usize,
    /// Index of the parent span in start order, if any.
    pub parent: Option<usize>,
}

#[derive(Default)]
struct SpanState {
    records: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
}

/// The append-only span log shared by all clones of a [`Telemetry`].
#[derive(Default)]
pub struct SpanLog {
    state: Mutex<SpanState>,
}

impl SpanLog {
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    /// Open a span; returns its index for [`SpanLog::end`].
    pub fn start(&self, name: &str, start_ms: u64) -> usize {
        let mut state = self.state.lock();
        let idx = state.records.len();
        let record = SpanRecord {
            name: name.to_string(),
            start_ms,
            end_ms: None,
            depth: state.stack.len(),
            parent: state.stack.last().copied(),
        };
        state.records.push(record);
        state.stack.push(idx);
        idx
    }

    /// Close the span at `idx`. Out-of-order closes (guards dropped in a
    /// different order than opened) are tolerated: the span is removed from
    /// wherever it sits in the open stack.
    pub fn end(&self, idx: usize, end_ms: u64) {
        let mut state = self.state.lock();
        if let Some(r) = state.records.get_mut(idx) {
            if r.end_ms.is_none() {
                r.end_ms = Some(end_ms);
            }
        }
        state.stack.retain(|&i| i != idx);
    }

    /// All spans in start order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.state.lock().records.clone()
    }
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop.
#[must_use = "a span closes when its guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    telemetry: Telemetry,
    idx: usize,
}

impl SpanGuard {
    pub(crate) fn new(telemetry: Telemetry, idx: usize) -> SpanGuard {
        SpanGuard { telemetry, idx }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.telemetry.end_span(self.idx);
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").field("idx", &self.idx).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_tracks_depth_and_parent() {
        let log = SpanLog::new();
        let a = log.start("outer", 0);
        let b = log.start("inner", 1);
        log.end(b, 2);
        log.end(a, 3);
        let c = log.start("after", 4);
        log.end(c, 5);
        let records = log.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].depth, 1);
        assert_eq!(records[1].parent, Some(0));
        assert_eq!(records[1].end_ms, Some(2));
        assert_eq!(records[2].depth, 0);
        assert_eq!(records[2].parent, None);
    }

    #[test]
    fn out_of_order_end_is_tolerated() {
        let log = SpanLog::new();
        let a = log.start("a", 0);
        let b = log.start("b", 1);
        log.end(a, 2); // outer closes first
        log.end(b, 3);
        let records = log.records();
        assert_eq!(records[0].end_ms, Some(2));
        assert_eq!(records[1].end_ms, Some(3));
        // Stack drained: a new span is a root again.
        let c = log.start("c", 4);
        log.end(c, 5);
        assert_eq!(log.records()[2].depth, 0);
    }

    #[test]
    fn open_span_has_no_end() {
        let log = SpanLog::new();
        log.start("open", 7);
        let records = log.records();
        assert_eq!(records[0].end_ms, None);
    }
}
