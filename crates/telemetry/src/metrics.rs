//! Lock-free metric primitives: sharded counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles are `Arc`s over atomics, so cloning is cheap and recording never
//! takes a lock. Counters and histograms shard their cells by thread id to
//! keep BFS workers from bouncing one cache line; reads sum the shards.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent cells per counter/histogram bucket. Eight covers
/// the worker counts we run (`ExecCtx::auto` caps out well below this on CI
/// hardware) without bloating snapshots.
const SHARDS: usize = 8;

fn shard_index() -> usize {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// A monotonically increasing event count, sharded across [`SHARDS`] cells.
#[derive(Clone, Debug)]
pub struct Counter {
    cells: Arc<[AtomicU64; SHARDS]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    pub fn new() -> Counter {
        Counter {
            cells: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cells[shard_index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum across shards. Exact once writers have quiesced; a live snapshot
    /// may trail in-flight increments.
    pub fn value(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// A last-write-wins instantaneous value (queue depth, frontier size).
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Set to the maximum of the current value and `v`.
    pub fn set_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds: powers of two from 1 ms to
/// 2^20 ms (~17 minutes), plus the implicit overflow bucket.
pub fn default_bounds() -> Vec<u64> {
    (0..=20).map(|e| 1u64 << e).collect()
}

struct HistogramInner {
    /// Strictly increasing bucket upper bounds (inclusive). Values above
    /// the last bound land in the implicit overflow bucket.
    bounds: Vec<u64>,
    /// `SHARDS` shards × (`bounds.len() + 1`) bucket cells, row-major.
    cells: Vec<AtomicU64>,
    sum: AtomicU64,
    /// Initialized to `u64::MAX`; that sentinel means "no samples yet".
    min: AtomicU64,
    max: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (we use it for wait times in
/// milliseconds and per-task row counts). Recording touches one sharded
/// bucket cell plus four scalar atomics — no locks.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.inner.bounds)
            .field("count", &self.inner.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&default_bounds())
    }
}

impl Histogram {
    /// A histogram over the given strictly-increasing upper bounds. An
    /// empty or non-monotonic slice falls back to [`default_bounds`].
    pub fn new(bounds: &[u64]) -> Histogram {
        let valid = !bounds.is_empty() && bounds.windows(2).all(|w| w[0] < w[1]);
        let bounds = if valid {
            bounds.to_vec()
        } else {
            default_bounds()
        };
        let n_cells = SHARDS * (bounds.len() + 1);
        let mut cells = Vec::with_capacity(n_cells);
        cells.resize_with(n_cells, || AtomicU64::new(0));
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                cells,
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// The bucket an observation of `v` falls into (index into
    /// `bounds.len() + 1` buckets; the last is the overflow bucket).
    fn bucket_of(&self, v: u64) -> usize {
        // Bounds are short (≤ ~24); a linear scan beats binary search here
        // and partition_point would obscure the inclusive-upper semantics.
        for (i, &b) in self.inner.bounds.iter().enumerate() {
            if v <= b {
                return i;
            }
        }
        self.inner.bounds.len()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let width = self.inner.bounds.len() + 1;
        let idx = shard_index() * width + self.bucket_of(v);
        self.inner.cells[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.min.fetch_min(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Merge the shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let width = self.inner.bounds.len() + 1;
        let mut counts = vec![0u64; width];
        for shard in 0..SHARDS {
            for (b, slot) in counts.iter_mut().enumerate() {
                *slot = slot.wrapping_add(
                    self.inner.cells[shard * width + b].load(Ordering::Relaxed),
                );
            }
        }
        let count: u64 = counts.iter().copied().fold(0u64, u64::wrapping_add);
        let min = self.inner.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts,
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { None } else { Some(min) },
            max: if count == 0 {
                None
            } else {
                Some(self.inner.max.load(Ordering::Relaxed))
            },
        }
    }
}

/// An immutable, mergeable view of a histogram's buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds; `counts` has one extra overflow slot.
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: Option<u64>,
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// The `[lower, upper]` value range of the bucket containing the
    /// q-quantile observation (rank `ceil(q * count)`), or `None` when the
    /// snapshot is empty. The true quantile lies within the returned
    /// bounds — that is the histogram's error contract. The overflow bucket
    /// reports `upper = u64::MAX`.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] + 1 };
                let upper = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                return Some((lower, upper));
            }
        }
        // count > 0 guarantees the loop returned; this is unreachable but
        // we avoid panicking in lib code.
        None
    }

    /// Fold `other` into `self`. Identical bounds merge bucket-by-bucket;
    /// differing bounds are re-bucketed by replaying each of `other`'s
    /// buckets at its upper bound (overflow replays at `other.max`), which
    /// widens but never loses counts.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds == other.bounds {
            for (s, o) in self.counts.iter_mut().zip(other.counts.iter()) {
                *s = s.wrapping_add(*o);
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let v = other
                    .bounds
                    .get(i)
                    .copied()
                    .or(other.max)
                    .unwrap_or(u64::MAX);
                let bucket = self
                    .bounds
                    .iter()
                    .position(|&b| v <= b)
                    .unwrap_or(self.bounds.len());
                self.counts[bucket] = self.counts[bucket].wrapping_add(c);
            }
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        let d = c.clone();
        d.inc();
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        assert_eq!(g.value(), 9);
        g.set_max(4);
        assert_eq!(g.value(), 9);
        g.set_max(12);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let h = Histogram::new(&[10, 100]);
        h.record(0);
        h.record(10);
        h.record(11);
        h.record(100);
        h.record(101);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 222);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(101));
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::new(&[10]);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.quantile_bounds(0.5), None);
    }

    #[test]
    fn invalid_bounds_fall_back_to_defaults() {
        let h = Histogram::new(&[]);
        assert_eq!(h.snapshot().bounds, default_bounds());
        let h = Histogram::new(&[5, 5]);
        assert_eq!(h.snapshot().bounds, default_bounds());
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantile() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1u64, 5, 9, 50, 75, 500, 999, 2000] {
            h.record(v);
        }
        let s = h.snapshot();
        // rank ceil(0.5*8) = 4 → the 4th smallest sample (50) is in (10,100].
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert!(lo <= 50 && 50 <= hi, "median 50 outside [{lo},{hi}]");
        // Overflow bucket reports u64::MAX as its upper bound.
        let (lo, hi) = s.quantile_bounds(1.0).unwrap();
        assert!(lo <= 2000 && hi == u64::MAX);
    }

    #[test]
    fn merge_same_bounds_adds_counts() {
        let a = Histogram::new(&[10, 100]);
        a.record(5);
        a.record(50);
        let b = Histogram::new(&[10, 100]);
        b.record(7);
        b.record(500);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counts, vec![2, 1, 1]);
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 562);
        assert_eq!(m.min, Some(5));
        assert_eq!(m.max, Some(500));
    }

    #[test]
    fn merge_different_bounds_rebuckets_conservatively() {
        let a = Histogram::new(&[100]);
        a.record(5);
        let b = Histogram::new(&[10]);
        b.record(3);
        b.record(50); // overflow in b, replays at b.max = 50 → ≤100 bucket
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.counts, vec![3, 0]);
    }
}
