//! Run-report serialization.
//!
//! A report is one `crowdnet-json` [`Value`] capturing the registry, span
//! tree and event ring of a [`Telemetry`] handle. Counters, gauges and
//! histograms are emitted in name order and spans/events in start order,
//! so a deterministic run (SimClock, fixed seed) serializes to identical
//! bytes every time — the property the integration suite asserts. The same
//! schema is written to `results/telemetry/<run>.json` by `repro` and to
//! `BENCH_*.json` by the bench harness.

use crate::{Telemetry, Verbosity};
use crowdnet_json::{obj, Object, Value};
use std::io;
use std::path::Path;

/// Schema version stamped into every report.
pub const VERSION: u64 = 1;

/// Counters every full-pipeline report must contain; `scripts/check.sh`
/// and [`validate`] enforce this set.
pub const MANDATORY_COUNTERS: &[&str] = &[
    "crawl.angellist.attempts",
    "crawl.angellist.success",
    "crawl.bfs.companies",
    "crawl.bfs.users",
    "store.append.docs",
    "store.append.bytes",
];

/// Every metric name the workspace registers or reads, beyond
/// [`MANDATORY_COUNTERS`]. The registry hands out counters on first use, so
/// a typo'd name silently reads zero forever — `crowdnet-lint`'s
/// `counter-contract` rule checks every `.counter("…")` / `.gauge("…")` /
/// `.histogram("…")` literal in the workspace against this list (`*`
/// matches one dotted segment, covering names built with `format!`).
/// Add new metrics here when introducing them.
pub const DECLARED_METRICS: &[&str] = &[
    "chaos.connects",
    "chaos.exchanges",
    "chaos.injected.black_holes",
    "chaos.injected.connect_holes",
    "chaos.injected.connect_refused",
    "chaos.injected.delays",
    "chaos.injected.dripped_reads",
    "chaos.injected.partition_drops",
    "chaos.injected.resets",
    "chaos.injected.truncated_writes",
    "coda.iterations",
    "column.appends",
    "column.builds",
    "column.bytes",
    "column.dict.entries",
    "column.rebuilds",
    "column.scan.docs",
    "crawl.*.fail_permanent",
    "crawl.*.retry_ratelimit",
    "crawl.*.retry_transient",
    "crawl.*.wait_ms",
    "crawl.augment.ambiguous",
    "crawl.augment.by_search",
    "crawl.augment.direct",
    "crawl.augment.not_found",
    "crawl.bfs.depth",
    "crawl.bfs.frontier",
    "crawl.bfs.skipped",
    "crawl.facebook.pages",
    "crawl.resume.runs",
    "crawl.resume.skipped",
    "crawl.resume.stages_skipped",
    "crawl.syndicates.docs",
    "crawl.twitter.attempts",
    "crawl.twitter.bad_url",
    "crawl.twitter.profiles",
    "dataflow.queue_depth",
    "dataflow.task_rows",
    "dataflow.tasks",
    "ingest.apply_ms.entities",
    "ingest.apply_ms.graph",
    "ingest.apply_ms.stats",
    "ingest.catchup.scans",
    "ingest.column.save_errors",
    "ingest.docs",
    "ingest.edges",
    "ingest.epoch.version",
    "ingest.epochs",
    "ingest.events",
    "ingest.feed.dropped",
    "ingest.feed.lag",
    "ingest.pagerank.pushes",
    "ingest.pagerank.recomputes",
    "ingest.publish_ms",
    "ingest.recoveries",
    "sbm.restarts",
    "serve.cache.evict",
    "serve.cache.hit",
    "serve.cache.miss",
    "serve.deadline_exceeded",
    "serve.http.idle_closes",
    "serve.keepalive.reuses",
    "serve.latency_ms",
    "serve.queue_depth",
    "serve.requests",
    "serve.shed",
    "shard.*.docs",
    "shard.*.refreshes",
    "shard.router.deadline_skips",
    "shard.router.epoch_builds",
    "shard.router.fanouts",
    "shard.router.partial",
    "shard.router.requests",
    "shard.router.single_shard",
    "shard.set.opened",
    "shard.set.puts",
    "shard.set.recoveries",
    "shardnet.backoff_ms",
    "shardnet.breaker.closes",
    "shardnet.breaker.gray_trips",
    "shardnet.breaker.half_opens",
    "shardnet.breaker.opens",
    "shardnet.breaker.reopens",
    "shardnet.degraded_flips",
    "shardnet.frames.malformed",
    "shardnet.leg_ms.*",
    "shardnet.legs",
    "shardnet.pool.reuse_hits",
    "shardnet.pool.stale_retries",
    "shardnet.retries",
    "shardnet.server.errors",
    "shardnet.server.requests",
    "shardnet.timeouts",
    "store.recovery.quarantined",
    "store.recovery.records_ok",
    "store.recovery.scans",
    "store.recovery.torn_bytes",
    "store.recovery.torn_tails",
    "store.recovery.uncommitted_snapshots",
    "store.recovery.writer_invalidations",
    "store.scan.calls",
    "store.scan.docs",
];

/// Serialize `telemetry` into the run-report [`Value`].
pub fn build(telemetry: &Telemetry) -> Value {
    let registry = telemetry.registry();

    let mut counters = Object::new();
    for (name, value) in registry.counter_values() {
        counters.insert(name, value);
    }

    let mut gauges = Object::new();
    for (name, value) in registry.gauge_values() {
        gauges.insert(name, value);
    }

    let mut histograms = Object::new();
    for (name, snap) in registry.histogram_snapshots() {
        let bounds = Value::Arr(snap.bounds.iter().map(|&b| Value::from(b)).collect());
        let counts = Value::Arr(snap.counts.iter().map(|&c| Value::from(c)).collect());
        histograms.insert(
            name,
            obj! {
                "bounds" => bounds,
                "counts" => counts,
                "count" => snap.count,
                "sum" => snap.sum,
                "min" => snap.min.map(Value::from).unwrap_or(Value::Null),
                "max" => snap.max.map(Value::from).unwrap_or(Value::Null),
            },
        );
    }

    let spans = Value::Arr(
        telemetry
            .span_records()
            .into_iter()
            .map(|s| {
                obj! {
                    "name" => s.name,
                    "start_ms" => s.start_ms,
                    "end_ms" => s.end_ms.map(Value::from).unwrap_or(Value::Null),
                    "depth" => s.depth,
                    "parent" => s.parent.map(Value::from).unwrap_or(Value::Null),
                }
            })
            .collect(),
    );

    let (events, dropped) = telemetry.events();
    let total = events.last().map(|e| e.seq + 1).unwrap_or(dropped);
    let entries = Value::Arr(
        events
            .into_iter()
            .map(|e| {
                obj! {
                    "seq" => e.seq,
                    "time_ms" => e.time_ms,
                    "level" => e.level.as_str(),
                    "target" => e.target,
                    "message" => e.message,
                }
            })
            .collect(),
    );

    obj! {
        "version" => VERSION,
        "counters" => Value::Obj(counters),
        "gauges" => Value::Obj(gauges),
        "histograms" => Value::Obj(histograms),
        "spans" => spans,
        "events" => obj! {
            "dropped" => dropped,
            "total" => total,
            "entries" => entries,
        },
    }
}

/// Check that `report` is structurally a telemetry report and carries the
/// [`MANDATORY_COUNTERS`] expected of a full pipeline run.
pub fn validate(report: &Value) -> Result<(), String> {
    let version = report
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing numeric 'version'".to_string())?;
    if version != VERSION {
        return Err(format!("unsupported report version {version}"));
    }
    for section in ["counters", "gauges", "histograms"] {
        if report.get(section).and_then(Value::as_obj).is_none() {
            return Err(format!("missing object section '{section}'"));
        }
    }
    if report.get("spans").and_then(Value::as_arr).is_none() {
        return Err("missing array section 'spans'".to_string());
    }
    if report
        .get("events")
        .and_then(|e| e.get("entries"))
        .and_then(Value::as_arr)
        .is_none()
    {
        return Err("missing 'events.entries' array".to_string());
    }
    let counters = report
        .get("counters")
        .and_then(Value::as_obj)
        .ok_or_else(|| "missing object section 'counters'".to_string())?;
    for &name in MANDATORY_COUNTERS {
        if counters.get(name).and_then(Value::as_u64).is_none() {
            return Err(format!("missing mandatory counter '{name}'"));
        }
    }
    Ok(())
}

/// Render a human-readable summary of a saved report (the
/// `repro -- telemetry-report` output).
pub fn render_summary(report: &Value) -> String {
    let mut out = String::new();
    out.push_str("telemetry report");
    if let Some(v) = report.get("version").and_then(Value::as_u64) {
        out.push_str(&format!(" (version {v})"));
    }
    out.push('\n');

    if let Some(counters) = report.get("counters").and_then(Value::as_obj) {
        out.push_str(&format!("\ncounters ({}):\n", counters.len()));
        for (name, value) in counters.iter() {
            let v = value.as_u64().unwrap_or(0);
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }

    if let Some(gauges) = report.get("gauges").and_then(Value::as_obj) {
        if !gauges.is_empty() {
            out.push_str(&format!("\ngauges ({}):\n", gauges.len()));
            for (name, value) in gauges.iter() {
                let v = value.as_u64().unwrap_or(0);
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
    }

    if let Some(histograms) = report.get("histograms").and_then(Value::as_obj) {
        if !histograms.is_empty() {
            out.push_str(&format!("\nhistograms ({}):\n", histograms.len()));
            for (name, h) in histograms.iter() {
                let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
                let sum = h.get("sum").and_then(Value::as_u64).unwrap_or(0);
                let mean = if count > 0 { sum / count } else { 0 };
                let min = h
                    .get("min")
                    .and_then(Value::as_u64)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let max = h
                    .get("max")
                    .and_then(Value::as_u64)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_string());
                out.push_str(&format!(
                    "  {name:<40} count={count} mean={mean} min={min} max={max}\n"
                ));
            }
        }
    }

    if let Some(spans) = report.get("spans").and_then(Value::as_arr) {
        if !spans.is_empty() {
            out.push_str(&format!("\nspans ({}):\n", spans.len()));
            for span in spans {
                let name = span.get("name").and_then(Value::as_str).unwrap_or("?");
                let depth = span.get("depth").and_then(Value::as_u64).unwrap_or(0) as usize;
                let start = span.get("start_ms").and_then(Value::as_u64).unwrap_or(0);
                let dur = span
                    .get("end_ms")
                    .and_then(Value::as_u64)
                    .map(|e| format!("{} ms", e.saturating_sub(start)))
                    .unwrap_or_else(|| "open".to_string());
                out.push_str(&format!("  {:indent$}{name} [{dur}]\n", "", indent = depth * 2));
            }
        }
    }

    if let Some(events) = report.get("events") {
        let total = events.get("total").and_then(Value::as_u64).unwrap_or(0);
        let dropped = events.get("dropped").and_then(Value::as_u64).unwrap_or(0);
        out.push_str(&format!("\nevents: {total} emitted, {dropped} dropped\n"));
    }

    out
}

/// Write a pretty-printed report to `path`, creating parent directories.
pub fn write(path: &Path, report: &Value) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = report.to_pretty();
    text.push('\n');
    std::fs::write(path, text)
}

/// Apply `verbosity` parsed from a `-v`/`--verbose` style count.
pub fn verbosity_from_count(count: u8) -> Verbosity {
    match count {
        0 => Verbosity::Silent,
        1 => Verbosity::Progress,
        _ => Verbosity::Debug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedClock, Level};
    use std::sync::Arc;

    fn populated() -> Telemetry {
        let t = Telemetry::with_clock(Arc::new(FixedClock(3)));
        for name in MANDATORY_COUNTERS {
            t.counter(name).inc();
        }
        t.gauge("crawl.bfs.frontier").set(4);
        t.histogram_with("crawl.angellist.wait_ms", &[10, 100]).record(42);
        {
            let _s = t.span("pipeline");
            t.event(Level::Progress, "crawl", "round 1");
        }
        t
    }

    #[test]
    fn report_validates_and_summarizes() {
        let report = populated().report();
        assert_eq!(validate(&report), Ok(()));
        let summary = render_summary(&report);
        assert!(summary.contains("crawl.angellist.attempts"));
        assert!(summary.contains("pipeline"));
        assert!(summary.contains("events: 1 emitted, 0 dropped"));
    }

    #[test]
    fn validate_rejects_missing_counters() {
        let t = Telemetry::new();
        let report = t.report();
        let err = validate(&report).unwrap_err();
        assert!(err.contains("mandatory counter"), "{err}");
    }

    #[test]
    fn validate_rejects_non_reports() {
        assert!(validate(&obj! {"version" => 1}).is_err());
        assert!(validate(&Value::Null).is_err());
        assert!(validate(&obj! {"version" => 99}).is_err());
    }

    #[test]
    fn report_roundtrips_through_parse() {
        let report = populated().report();
        let parsed = Value::parse(&report.to_pretty()).unwrap();
        assert_eq!(validate(&parsed), Ok(()));
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("store.append.docs")).and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("crowdnet-telemetry-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("run.json");
        write(&path, &populated().report()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(validate(&Value::parse(&text).unwrap()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
