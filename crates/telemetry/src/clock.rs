//! The injected time source.
//!
//! Telemetry never reads the wall clock itself (the workspace `no-wallclock`
//! lint forbids it outside `crowdnet-socialsim::clock` and the bench
//! harness). Instead a [`Clock`] is bound into each [`Telemetry`] handle:
//! the crawler binds its `SimClock`, the `repro` binary binds the system
//! clock. The trait is deliberately minimal — `now_ms` only — and is
//! implemented for any `Fn() -> u64` closure, so adapting an external clock
//! type costs one line: `Arc::new(move || sim.now_ms())`.
//!
//! [`Telemetry`]: crate::Telemetry

/// A read-only source of milliseconds timestamps.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds (epoch is whatever the source uses).
    fn now_ms(&self) -> u64;
}

/// A clock frozen at a constant — the default for an unbound [`Telemetry`]
/// (everything stamps `t = 0`), and a handy fixture in tests.
///
/// [`Telemetry`]: crate::Telemetry
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedClock(pub u64);

impl Clock for FixedClock {
    fn now_ms(&self) -> u64 {
        self.0
    }
}

impl<F> Clock for F
where
    F: Fn() -> u64 + Send + Sync,
{
    fn now_ms(&self) -> u64 {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clock_is_constant() {
        let c = FixedClock(77);
        assert_eq!(c.now_ms(), 77);
        assert_eq!(c.now_ms(), 77);
    }

    #[test]
    fn closures_are_clocks() {
        let c = || 5u64;
        assert_eq!(Clock::now_ms(&c), 5);
    }
}
