//! Deterministic observability for the CrowdNet platform.
//!
//! The paper's system is *operational* — a crawler fighting rate limits and
//! transient faults feeding a Spark-style analytics tier — and an
//! operational system needs counters, timings and progress events that can
//! be inspected after a run. This crate is that substrate, with one twist
//! the simulation demands: **everything is deterministic under a virtual
//! clock**. Spans and events are timestamped against an injected
//! [`Clock`], so a pipeline run under `SimClock` produces a byte-identical
//! JSON report every time, while the `repro` binary binds the wall clock
//! and gets real timings from the very same instrumentation.
//!
//! Pieces:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s. Handles are `Arc`s over sharded atomics: the hot path
//!   (a BFS worker bumping `crawl.angellist.attempts`) never takes a lock.
//! * [`SpanGuard`] — RAII stage timings forming a span tree
//!   (`pipeline` → `crawl.angellist` → …), timed on the injected clock.
//! * event ring — a bounded, lossy buffer of progress events replacing
//!   ad-hoc `eprintln!` chatter; a verbosity gate decides whether events
//!   also hit stderr (silent by default, so tests stay quiet).
//! * [`report`] — serializes the whole registry + span tree + events to a
//!   `crowdnet-json` [`Value`](crowdnet_json::Value) with fully sorted
//!   keys, the format written to `results/telemetry/<run>.json` and by the
//!   bench harness to `BENCH_*.json`.
//!
//! The [`Telemetry`] handle is cheaply cloneable and threads through
//! config structs (`CrawlConfig`, `PipelineConfig`, `CodaConfig`, …); a
//! default handle is a fully functional private registry, so library code
//! records unconditionally and callers that never look at the report pay
//! only the atomics.

pub mod clock;
pub mod events;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod spans;

pub use clock::{Clock, FixedClock};
pub use events::{Event, Level, Verbosity};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use spans::{SpanGuard, SpanRecord};

use crowdnet_json::Value;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Inner {
    clock: RwLock<Arc<dyn Clock>>,
    clock_bound: AtomicBool,
    registry: Registry,
    spans: spans::SpanLog,
    events: events::EventRing,
}

/// The shared telemetry handle: a clock, a metrics registry, a span log
/// and an event ring behind one cheaply-cloneable `Arc`.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("clock_bound", &self.clock_is_bound())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A fresh registry with an unbound clock (time frozen at 0 until a
    /// component binds one — see [`Telemetry::bind_clock_if_unbound`]).
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                clock: RwLock::new(Arc::new(FixedClock(0))),
                clock_bound: AtomicBool::new(false),
                registry: Registry::new(),
                spans: spans::SpanLog::new(),
                events: events::EventRing::new(events::DEFAULT_CAPACITY),
            }),
        }
    }

    /// A fresh registry already bound to `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Telemetry {
        let t = Telemetry::new();
        t.bind_clock(clock);
        t
    }

    /// Bind (or rebind) the time source used by spans and events.
    pub fn bind_clock(&self, clock: Arc<dyn Clock>) {
        *self.inner.clock.write() = clock;
        self.inner.clock_bound.store(true, Ordering::SeqCst);
    }

    /// Bind `clock` only when no clock was explicitly bound yet. Components
    /// that own a clock (the crawler and its `SimClock`) call this so an
    /// outer binding — the `repro` binary's wall clock — wins.
    pub fn bind_clock_if_unbound(&self, clock: Arc<dyn Clock>) {
        if !self.inner.clock_bound.swap(true, Ordering::SeqCst) {
            *self.inner.clock.write() = clock;
        }
    }

    /// Has a clock been explicitly bound?
    pub fn clock_is_bound(&self) -> bool {
        self.inner.clock_bound.load(Ordering::SeqCst)
    }

    /// Current time in milliseconds on the bound clock (0 when unbound).
    pub fn now_ms(&self) -> u64 {
        self.inner.clock.read().now_ms()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Get or create the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name)
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.registry.gauge(name)
    }

    /// Get or create the named histogram with the default exponential
    /// bucket bounds (1 ms … ~17 min).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner.registry.histogram(name)
    }

    /// Get or create the named histogram with explicit bucket upper bounds
    /// (strictly increasing; an overflow bucket is implicit).
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.inner.registry.histogram_with(name, bounds)
    }

    /// Open a span; it closes (and records its end time) when the returned
    /// guard drops. Spans are meant for stage-level orchestration points —
    /// guards opened concurrently from worker threads are recorded but may
    /// attribute parents arbitrarily.
    pub fn span(&self, name: &str) -> SpanGuard {
        let start = self.now_ms();
        let idx = self.inner.spans.start(name, start);
        SpanGuard::new(self.clone(), idx)
    }

    pub(crate) fn end_span(&self, idx: usize) {
        let end = self.now_ms();
        self.inner.spans.end(idx, end);
    }

    /// Completed + open span records, in start order.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.inner.spans.records()
    }

    /// Record an event into the ring; when the verbosity gate admits
    /// `level`, it is also printed to stderr.
    pub fn event(&self, level: Level, target: &str, message: impl Into<String>) {
        let now = self.now_ms();
        self.inner.events.emit(now, level, target, message.into());
    }

    /// Console verbosity (default [`Verbosity::Silent`]).
    pub fn set_verbosity(&self, v: Verbosity) {
        self.inner.events.set_verbosity(v);
    }

    /// Current console verbosity.
    pub fn verbosity(&self) -> Verbosity {
        self.inner.events.verbosity()
    }

    /// Snapshot the buffered events (oldest first) plus the drop counter.
    pub fn events(&self) -> (Vec<Event>, u64) {
        self.inner.events.snapshot()
    }

    /// Serialize everything to the run-report JSON value (sorted keys, so
    /// the bytes are deterministic for a deterministic run).
    pub fn report(&self) -> Value {
        report::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_clock_is_frozen_at_zero() {
        let t = Telemetry::new();
        assert!(!t.clock_is_bound());
        assert_eq!(t.now_ms(), 0);
    }

    #[test]
    fn bind_clock_if_unbound_is_first_binding_wins() {
        let t = Telemetry::new();
        t.bind_clock_if_unbound(Arc::new(FixedClock(5)));
        t.bind_clock_if_unbound(Arc::new(FixedClock(9)));
        assert_eq!(t.now_ms(), 5);
        t.bind_clock(Arc::new(FixedClock(9))); // explicit rebind still works
        assert_eq!(t.now_ms(), 9);
    }

    #[test]
    fn closure_clocks_adapt_external_time_sources() {
        let t = Telemetry::new();
        let ticks = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let src = Arc::clone(&ticks);
        t.bind_clock(Arc::new(move || src.load(Ordering::SeqCst)));
        ticks.store(1234, Ordering::SeqCst);
        assert_eq!(t.now_ms(), 1234);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let u = t.clone();
        u.counter("x").inc();
        assert_eq!(t.counter("x").value(), 1);
    }

    #[test]
    fn identical_usage_yields_identical_reports() {
        let run = || {
            let t = Telemetry::with_clock(Arc::new(FixedClock(10)));
            t.counter("a.b").add(3);
            t.gauge("g").set(7);
            t.histogram("h").record(42);
            {
                let _s = t.span("stage");
                t.event(Level::Progress, "stage", "step 1");
            }
            t.report().to_pretty()
        };
        assert_eq!(run(), run());
    }
}
