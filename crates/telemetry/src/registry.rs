//! Name → metric maps.
//!
//! Lookup takes a short read lock on one map at a time; the returned
//! handles are lock-free, so registration cost is paid once per call site
//! (call sites cache handles in hot loops). The three maps are always
//! touched in the order counters → gauges → histograms, one lock per
//! statement, to stay trivially clean under the `lock-ordering` lint.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Named counters, gauges and histograms.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.counters.read().len();
        let gauges = self.gauges.read().len();
        let histograms = self.histograms.read().len();
        f.debug_struct("Registry")
            .field("counters", &counters)
            .field("gauges", &gauges)
            .field("histograms", &histograms)
            .finish()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let found = self.counters.read().get(name).cloned();
        if let Some(c) = found {
            return c;
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let found = self.gauges.read().get(name).cloned();
        if let Some(g) = found {
            return g;
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name` with default bounds.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &crate::metrics::default_bounds())
    }

    /// Get or create the histogram `name`. `bounds` only applies on first
    /// creation; later callers get the existing histogram unchanged.
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Histogram {
        let found = self.histograms.read().get(name).cloned();
        if let Some(h) = found {
            return h;
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// All counters as `(name, value)` in name order.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// All gauges as `(name, value)` in name order.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// All histograms as `(name, snapshot)` in name order.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").value(), 3);
    }

    #[test]
    fn listings_are_name_sorted() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.gauge("m").set(1);
        let names: Vec<_> = r.counter_values().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
        assert_eq!(r.gauge_values(), vec![("m".to_string(), 1)]);
    }

    #[test]
    fn histogram_bounds_fixed_at_creation() {
        let r = Registry::new();
        r.histogram_with("h", &[10, 20]).record(15);
        let again = r.histogram_with("h", &[1000]);
        assert_eq!(again.snapshot().bounds, vec![10, 20]);
        assert_eq!(again.count(), 1);
    }
}
