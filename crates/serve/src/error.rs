//! Error types of the serving tier.
//!
//! Every failure a request can hit maps onto exactly one HTTP status (see
//! [`ServeError::status`]), so the in-process and TCP front ends agree on
//! semantics by construction.

use crowdnet_column::ColumnError;
use crowdnet_dataflow::sql::SqlError;
use crowdnet_store::StoreError;

/// Everything that can go wrong while serving one request.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying store failed (missing namespace, corrupt doc, I/O).
    Store(StoreError),
    /// The column projection failed underneath an artifact build. Reads
    /// fall back to the JSON path on `needs_rebuild` errors, so this only
    /// surfaces for real I/O trouble.
    Column(ColumnError),
    /// The ad-hoc SQL query failed to parse or execute.
    Sql(SqlError),
    /// The request was syntactically fine but semantically unusable
    /// (bad id, missing query parameter, unsupported value).
    BadRequest(String),
    /// The requested entity/route does not exist.
    NotFound(String),
    /// The route exists but not for this method.
    MethodNotAllowed(String),
    /// Admission control rejected the request: the bounded queue was full.
    /// Served as `503` with a `Retry-After` header.
    Shed {
        /// Seconds the client should wait before retrying.
        retry_after_secs: u64,
    },
    /// The request sat in the queue (or ran) past its deadline.
    DeadlineExceeded {
        /// The deadline that was missed, in clock-milliseconds.
        deadline_ms: u64,
        /// The clock reading when the overrun was detected.
        now_ms: u64,
    },
    /// The server is draining and no longer admits new work.
    ShuttingDown,
    /// A socket-level failure on the TCP front end.
    Io(std::io::Error),
}

impl ServeError {
    /// The HTTP status code this error is served as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Store(StoreError::NamespaceNotFound(_))
            | ServeError::Store(StoreError::SnapshotNotFound { .. })
            | ServeError::NotFound(_) => 404,
            ServeError::Store(_) | ServeError::Column(_) | ServeError::Io(_) => 500,
            ServeError::Sql(_) | ServeError::BadRequest(_) => 400,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::Shed { .. } | ServeError::DeadlineExceeded { .. } => 503,
            ServeError::ShuttingDown => 503,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Column(e) => write!(f, "column error: {e}"),
            ServeError::Sql(e) => write!(f, "sql error: {e}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(m) => write!(f, "not found: {m}"),
            ServeError::MethodNotAllowed(m) => write!(f, "method not allowed: {m}"),
            ServeError::Shed { retry_after_secs } => {
                write!(f, "overloaded, retry after {retry_after_secs}s")
            }
            ServeError::DeadlineExceeded {
                deadline_ms,
                now_ms,
            } => write!(f, "deadline {deadline_ms}ms exceeded at {now_ms}ms"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Column(e) => Some(e),
            ServeError::Sql(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<ColumnError> for ServeError {
    fn from(e: ColumnError) -> Self {
        ServeError::Column(e)
    }
}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> Self {
        ServeError::Sql(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_semantics() {
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(
            ServeError::Store(StoreError::NamespaceNotFound("ns".into())).status(),
            404
        );
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::Shed { retry_after_secs: 1 }.status(), 503);
        assert_eq!(
            ServeError::DeadlineExceeded {
                deadline_ms: 5,
                now_ms: 9
            }
            .status(),
            503
        );
        assert_eq!(ServeError::ShuttingDown.status(), 503);
    }

    #[test]
    fn display_and_source_are_wired() {
        let e = ServeError::Store(StoreError::NamespaceNotFound("ns".into()));
        assert!(e.to_string().contains("store error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::ShuttingDown).is_none());
    }
}
