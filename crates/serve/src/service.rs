//! The service core: one opened store + lazily-built artifacts + the
//! result cache, exposed as a single `Request → Response` function.
//!
//! [`Service::handle`] is the whole request path, shared verbatim by the
//! in-process front end (tests, benches, `repro serve --smoke`) and the
//! TCP server — so "everything is also callable without sockets" is a
//! structural property, not a test shim.
//!
//! Artifacts are rebuilt whenever [`Store::version`] moves past the stamp
//! on the cached build; the result cache uses the same version as its
//! invalidation epoch, so a re-crawl invalidates both in one counter bump.

use crate::artifacts::{Artifacts, ArtifactsConfig};
use crate::cache::{CacheConfig, CacheStats, ResultCache};
use crate::error::ServeError;
use crate::http::{Request, Response};
use crate::router;
use crowdnet_column::ColumnCatalog;
use crowdnet_dataflow::ExecCtx;
use crowdnet_store::Store;
use crowdnet_telemetry::{Counter, Histogram, Telemetry};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Service knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Artifact-build knobs (CoDA size/seed, cleaning threshold, …).
    pub artifacts: ArtifactsConfig,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// Maximum rows an ad-hoc SQL response returns (the rest is reported
    /// as `truncated`).
    pub sql_row_limit: usize,
    /// Dataflow threads for scans and SQL execution.
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            artifacts: ArtifactsConfig::default(),
            cache: CacheConfig::default(),
            sql_row_limit: 1000,
            threads: 2,
        }
    }
}

/// The query-serving core.
pub struct Service {
    pub(crate) store: Arc<Store>,
    pub(crate) ctx: ExecCtx,
    pub(crate) telemetry: Telemetry,
    pub(crate) cfg: ServiceConfig,
    artifacts_slot: RwLock<Option<Arc<Artifacts>>>,
    /// Columnar projection of the store, when the owning tier maintains
    /// one. Lazy rebuilds prefer it over re-parsing the JSON log whenever
    /// its version matches the store; any column error falls back to the
    /// JSON path — the projection is derived data and never trusted.
    columns_slot: RwLock<Option<Arc<ColumnCatalog>>>,
    /// Pinned-epoch mode: an external publisher (the ingest tier) owns
    /// artifact freshness via [`Service::install_artifacts`]; requests
    /// read the installed epoch as-is and never rebuild inline.
    pinned: AtomicBool,
    /// Degraded mode: the owning tier is recovering from a crash; requests
    /// keep being answered from the last committed epoch, flagged so
    /// clients can tell the data may trail the store. Surfaced by
    /// `/healthz` and `/stats`.
    degraded: AtomicBool,
    cache: ResultCache,
    requests: Counter,
    latency: Histogram,
}

impl Service {
    /// Wrap an opened store. Nothing is scanned yet — artifacts build on
    /// the first request that needs them.
    pub fn new(store: Arc<Store>, cfg: ServiceConfig, telemetry: Telemetry) -> Service {
        let cache = ResultCache::new(&cfg.cache, &telemetry);
        let requests = telemetry.counter("serve.requests");
        let latency = telemetry.histogram("serve.latency_ms");
        Service {
            ctx: ExecCtx::new(cfg.threads.max(1)),
            store,
            telemetry: telemetry.clone(),
            cfg,
            artifacts_slot: RwLock::new(None),
            columns_slot: RwLock::new(None),
            pinned: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            cache,
            requests,
            latency,
        }
    }

    /// Raise or clear degraded mode. While degraded, requests keep being
    /// served from whatever epoch is installed (possibly trailing the
    /// store) and `/healthz` / `/stats` carry `"degraded": true` so load
    /// balancers and dashboards can tell.
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::Release);
    }

    /// True while the owning tier recovers from a crash.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Atomically install an externally assembled epoch and switch the
    /// service to pinned-epoch mode: every subsequent request answers
    /// from this snapshot (zero rebuild on the request path) until the
    /// next install swaps it out. The result cache keys by the epoch's
    /// version stamp, so entries from older epochs become unreachable at
    /// the same instant the swap lands.
    pub fn install_artifacts(&self, artifacts: Arc<Artifacts>) {
        *self.artifacts_slot.write() = Some(artifacts);
        self.pinned.store(true, Ordering::Release);
    }

    /// Publish a columnar projection for lazy rebuilds to answer from.
    /// Unlike [`Service::install_artifacts`] this does not pin anything:
    /// the next stale-version rebuild simply decodes columns instead of
    /// re-parsing JSON, and a catalog that trails the store is ignored.
    pub fn install_columns(&self, catalog: Arc<ColumnCatalog>) {
        *self.columns_slot.write() = Some(catalog);
    }

    /// The installed columnar projection, if any.
    pub fn columns(&self) -> Option<Arc<ColumnCatalog>> {
        self.columns_slot.read().clone()
    }

    /// The installed epoch, when the service is in pinned-epoch mode.
    pub fn pinned_artifacts(&self) -> Option<Arc<Artifacts>> {
        if !self.pinned.load(Ordering::Acquire) {
            return None;
        }
        self.artifacts_slot.read().clone()
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The telemetry handle every request reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Result-cache occupancy (for `/healthz` and tests).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The artifacts requests answer from. In pinned-epoch mode this is
    /// the installed epoch, untouched by store writes; otherwise the
    /// artifacts for the store's *current* version, building (or
    /// rebuilding, after a write) if the cached build is stale.
    pub fn artifacts(&self) -> Result<Arc<Artifacts>, ServeError> {
        if let Some(pinned) = self.pinned_artifacts() {
            return Ok(pinned);
        }
        let version = self.store.version();
        {
            let slot = self.artifacts_slot.read();
            if let Some(a) = &*slot {
                if a.version == version {
                    return Ok(Arc::clone(a));
                }
            }
        }
        // Build outside any lock — scans and CoDA take real time and the
        // read path above must stay contention-free meanwhile. Prefer the
        // columnar projection when one is installed at exactly this
        // version; any column error (corrupt run, stale manifest) drops
        // to the JSON scan, which is always authoritative.
        let columnar = self
            .columns()
            .filter(|c| c.version() == version)
            .and_then(|c| Artifacts::from_columns(&c, &self.telemetry, &self.cfg.artifacts).ok());
        let built = match columnar {
            Some(a) => Arc::new(a),
            None => Arc::new(Artifacts::build(
                &self.store,
                self.ctx,
                &self.telemetry,
                &self.cfg.artifacts,
            )?),
        };
        let mut slot = self.artifacts_slot.write();
        match &*slot {
            // A racing builder won with an equal-or-newer stamp; use its
            // build so every caller converges on one Arc.
            Some(a) if a.version >= built.version => Ok(Arc::clone(a)),
            _ => {
                *slot = Some(Arc::clone(&built));
                Ok(built)
            }
        }
    }

    /// Serve one request end to end: admission-independent core shared by
    /// the TCP and in-process front ends. Never panics; every failure is a
    /// status-coded JSON response.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.inc();
        let started = self.telemetry.now_ms();
        // Cache epoch: the installed epoch's stamp when pinned (entries
        // survive raw store writes until the next publish), the live
        // store version otherwise.
        let version = match self.pinned_artifacts() {
            Some(a) => a.version,
            None => self.store.version(),
        };
        // Degraded responses carry a flag in their bodies, so they must not
        // share cache entries with healthy ones at the same version.
        let key = if self.is_degraded() {
            format!("{} {} [degraded]", req.method, req.target)
        } else {
            format!("{} {}", req.method, req.target)
        };
        // Health checks bypass the cache (they report live occupancy).
        let cacheable = req.method == "GET" && req.path() != "/healthz";
        if cacheable {
            if let Some(hit) = self.cache.get(&key, version) {
                self.latency.record(self.telemetry.now_ms() - started);
                return hit;
            }
        }
        let response = {
            let _span = self
                .telemetry
                .span(&format!("serve.{}", endpoint_name(req.path())));
            router::respond(self, req)
        };
        if cacheable && response.status == 200 {
            self.cache.put(&key, version, response.clone());
        }
        self.latency.record(self.telemetry.now_ms() - started);
        response
    }

    /// One representative target per endpoint, with real ids from the
    /// current artifacts — the smoke-test surface used by `check.sh` and
    /// `repro serve --smoke`.
    pub fn example_targets(&self) -> Result<Vec<String>, ServeError> {
        let artifacts = self.artifacts()?;
        let mut targets = vec!["/healthz".to_string(), "/stats".to_string()];
        if artifacts.graph.investor_count() > 0 {
            let inv = artifacts.graph.investor_id(0);
            let com = artifacts.graph.company_id(0);
            targets.push(format!("/entity/user/{inv}"));
            targets.push(format!("/entity/company/{com}"));
            targets.push(format!("/investor/{inv}/portfolio"));
            targets.push(format!("/investor/{inv}/communities"));
            targets.push(format!("/company/{com}/investors"));
        }
        targets.push("/communities".to_string());
        if !artifacts.cover.is_empty() {
            targets.push("/communities/0".to_string());
        }
        targets.push("/top/investors?by=degree&k=5".to_string());
        targets.push("/top/investors?by=pagerank&k=5".to_string());
        targets.push(format!(
            "/sql?ns={}&q=SELECT+COUNT(*)+AS+n+FROM+docs",
            crate::artifacts::NS_USERS.replace('/', "%2F")
        ));
        Ok(targets)
    }
}

/// First path segment, for span naming (`serve.stats`, `serve.sql`, …).
fn endpoint_name(path: &str) -> &str {
    let trimmed = path.trim_start_matches('/');
    let seg = trimmed.split('/').next().unwrap_or_default();
    if seg.is_empty() {
        "root"
    } else {
        seg
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::artifacts::{NS_COMPANIES, NS_USERS};
    use crowdnet_json::{obj, Value};
    use crowdnet_store::Document;

    pub(crate) fn seeded_service() -> Service {
        let store = Store::memory(4);
        for id in 0..4u32 {
            store
                .put(
                    NS_COMPANIES,
                    Document::new(
                        format!("company:{id}"),
                        obj! {"id" => u64::from(id), "name" => format!("c{id}"), "funded" => id % 2 == 0},
                    ),
                )
                .unwrap();
        }
        let portfolios: &[(u32, &[u64])] = &[
            (10, &[0, 1, 2, 3]),
            (11, &[0, 1, 2, 3]),
            (12, &[1, 2, 3, 0]),
        ];
        for (id, inv) in portfolios {
            let arr = inv.iter().map(|&c| Value::from(c)).collect::<Vec<_>>();
            store
                .put(
                    NS_USERS,
                    Document::new(
                        format!("user:{id}"),
                        obj! {
                            "id" => u64::from(*id),
                            "role" => "investor",
                            "investments" => Value::Arr(arr),
                        },
                    ),
                )
                .unwrap();
        }
        Service::new(
            Arc::new(store),
            ServiceConfig::default(),
            Telemetry::new(),
        )
    }

    #[test]
    fn artifacts_are_cached_until_a_write() {
        let svc = seeded_service();
        let a1 = svc.artifacts().unwrap();
        let a2 = svc.artifacts().unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        svc.store()
            .put(NS_COMPANIES, Document::new("company:99", obj! {"id" => 99u64}))
            .unwrap();
        let a3 = svc.artifacts().unwrap();
        assert!(!Arc::ptr_eq(&a1, &a3));
        assert!(a3.version > a1.version);
    }

    #[test]
    fn handle_counts_requests_and_caches_gets() {
        let svc = seeded_service();
        let t = svc.telemetry().clone();
        let r1 = svc.handle(&Request::get("/stats"));
        assert_eq!(r1.status, 200);
        let r2 = svc.handle(&Request::get("/stats"));
        assert_eq!(r1, r2);
        assert_eq!(t.counter("serve.requests").value(), 2);
        assert_eq!(t.counter("serve.cache.hit").value(), 1);
        assert_eq!(t.counter("serve.cache.miss").value(), 1);
    }

    #[test]
    fn a_write_invalidates_cached_responses() {
        let svc = seeded_service();
        let before = svc.handle(&Request::get("/stats"));
        svc.store()
            .put(NS_COMPANIES, Document::new("company:77", obj! {"id" => 77u64}))
            .unwrap();
        let after = svc.handle(&Request::get("/stats"));
        assert_ne!(before.body, after.body, "stale stats served after write");
        assert_eq!(svc.telemetry().counter("serve.cache.hit").value(), 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let svc = seeded_service();
        svc.handle(&Request::get("/no/such/route"));
        svc.handle(&Request::get("/no/such/route"));
        assert_eq!(svc.telemetry().counter("serve.cache.hit").value(), 0);
    }

    #[test]
    fn example_targets_all_succeed() {
        let svc = seeded_service();
        for target in svc.example_targets().unwrap() {
            let resp = svc.handle(&Request::get(&target));
            assert_eq!(resp.status, 200, "target {target} failed: {:?}", resp.body);
        }
    }

    #[test]
    fn degraded_flag_reaches_health_and_stats_without_poisoning_the_cache() {
        let svc = seeded_service();
        let parse = |resp: &Response| {
            Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
        };
        let healthy = svc.handle(&Request::get("/stats"));
        assert_eq!(
            parse(&healthy).get("degraded").and_then(Value::as_bool),
            Some(false)
        );

        svc.set_degraded(true);
        let degraded = svc.handle(&Request::get("/stats"));
        assert_eq!(
            parse(&degraded).get("degraded").and_then(Value::as_bool),
            Some(true),
            "cached healthy /stats served while degraded"
        );
        let health = svc.handle(&Request::get("/healthz"));
        assert_eq!(
            parse(&health).get("degraded").and_then(Value::as_bool),
            Some(true)
        );

        // Clearing the flag goes back to the healthy responses (and may
        // reuse the healthy cache entry — same version, same key).
        svc.set_degraded(false);
        let again = svc.handle(&Request::get("/stats"));
        assert_eq!(healthy.body, again.body);
    }

    #[test]
    fn columnar_rebuild_is_used_and_byte_identical_to_json_path() {
        let run = |columnar: bool| {
            let svc = seeded_service();
            if columnar {
                let set = crowdnet_column::ColumnSet::build_from_store(
                    svc.store(),
                    crowdnet_column::ColumnConfig::default(),
                    Some(svc.telemetry()),
                )
                .unwrap();
                svc.install_columns(set.catalog());
            }
            let mut bytes = Vec::new();
            for target in svc.example_targets().unwrap() {
                if target == "/healthz" {
                    continue;
                }
                bytes.extend_from_slice(&svc.handle(&Request::get(&target)).body);
            }
            if columnar {
                // The rebuild really decoded columns: the catalog's scan
                // counter moved. (The JSON fallback never touches it.)
                assert!(
                    svc.telemetry().counter("column.scan.docs").value() > 0,
                    "columnar path was installed but not used"
                );
            }
            bytes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stale_columns_fall_back_to_the_json_scan() {
        let svc = seeded_service();
        let set = crowdnet_column::ColumnSet::build_from_store(
            svc.store(),
            crowdnet_column::ColumnConfig::default(),
            Some(svc.telemetry()),
        )
        .unwrap();
        svc.install_columns(set.catalog());
        // A write moves the store past the catalog; the rebuild must not
        // answer from the stale projection.
        svc.store()
            .put(NS_COMPANIES, Document::new("company:88", obj! {"id" => 88u64}))
            .unwrap();
        let a = svc.artifacts().unwrap();
        assert_eq!(a.version, svc.store().version());
        assert!(a.entity("company", 88).is_some(), "stale columnar epoch served");
    }

    #[test]
    fn identical_requests_are_byte_identical() {
        let run = || {
            let svc = seeded_service();
            let mut bytes = Vec::new();
            for target in svc.example_targets().unwrap() {
                if target == "/healthz" {
                    continue; // healthz reports live cache occupancy
                }
                bytes.extend_from_slice(&svc.handle(&Request::get(&target)).body);
            }
            bytes
        };
        assert_eq!(run(), run());
    }
}
