//! # crowdnet-serve
//!
//! The query-serving tier of the CrowdNet platform — the piece that turns
//! the measurement pipeline into the *exploration service* the paper
//! promises social scientists (§3's "familiar interfaces"), sized for the
//! ROADMAP's "heavy traffic" north star.
//!
//! Three layers (DESIGN.md §7):
//!
//! * [`service`] — the core: an opened [`Store`](crowdnet_store::Store)
//!   plus lazily-built, version-stamped analytic [`artifacts`] (bipartite
//!   graph, CoDA cover with the paper's strength metrics, degree/PageRank
//!   tables), exposed through typed endpoints and ad-hoc SQL ([`router`]).
//! * [`cache`] — a sharded byte-budgeted LRU over rendered responses,
//!   invalidated by the store's content version: a re-crawl never serves
//!   stale results.
//! * [`server`] — the concurrent front end: a hand-rolled HTTP/1.1
//!   listener on loopback ([`http`] is the parser), a fixed worker pool
//!   fed by a *bounded* queue ([`pool`]), admission control shedding
//!   `503 + Retry-After` when full, per-request deadlines on the injected
//!   telemetry clock, graceful drain on shutdown.
//!
//! Everything is callable in-process — [`Service::handle`] for the
//! unqueued core, [`Server::call`] for the full admission-controlled path
//! — so tests and benches exercise the exact production code without
//! sockets, deterministically.

pub mod artifacts;
pub mod cache;
pub mod error;
pub mod http;
pub mod pool;
pub mod router;
pub mod server;
pub mod service;

pub use artifacts::{Artifacts, ArtifactsConfig};
pub use cache::{CacheConfig, CacheStats, ResultCache};
pub use error::ServeError;
pub use http::{Request, RequestParser, Response};
pub use pool::WorkerPool;
pub use server::{bind, RequestHandler, Server, ServerConfig, TcpHandle};
pub use service::{Service, ServiceConfig};
