//! A minimal, defensive HTTP/1.1 request parser and response encoder.
//!
//! The serving tier binds only to loopback and carries JSON, so this is not
//! a general web server — but the parser is written as if it faced the open
//! internet: every limit is enforced (`431` for oversized request lines or
//! header blocks, `413` for oversized bodies), malformed input is an error
//! value, never a panic, and input may arrive in arbitrary split reads
//! (property-tested in `tests/proptest_http.rs`).
//!
//! Connections default to one request (`Connection: close`), the simplest
//! protocol that still lets `curl` talk to the server; a client that sends
//! `Connection: keep-alive` may reuse the connection for a bounded number
//! of requests (see `ServerConfig::max_requests_per_connection`) — the
//! parser already buffers pipelined bytes across [`RequestParser::poll`]
//! calls, so reuse is just not closing.

/// Maximum bytes of the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum bytes of the whole head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 32 * 1024;
/// Maximum number of header fields.
pub const MAX_HEADERS: usize = 100;
/// Maximum request body bytes (`Content-Length` above this is refused).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Parse-level failures, each mapping to one HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line exceeded [`MAX_REQUEST_LINE`] → `431`.
    RequestLineTooLong,
    /// Head (request line + headers) exceeded [`MAX_HEAD_BYTES`] or
    /// [`MAX_HEADERS`] → `431`.
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// Anything structurally wrong: bad request line, bad header syntax,
    /// non-UTF-8 head, unparsable `Content-Length` → `400`.
    Malformed(String),
    /// An HTTP version other than 1.0/1.1 → `505`.
    UnsupportedVersion(String),
}

impl HttpError {
    /// The status code this parse failure is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::RequestLineTooLong | HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Malformed(_) => 400,
            HttpError::UnsupportedVersion(_) => 505,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::RequestLineTooLong => write!(f, "request line too long"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported http version: {v}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verbatim (`GET`, `POST`, …) — not validated against a list.
    pub method: String,
    /// The request target verbatim, e.g. `/sql?q=SELECT+1`.
    pub target: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Header fields in arrival order, names verbatim.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// Convenience constructor for in-process calls: a bodyless GET.
    pub fn get(target: &str) -> Request {
        Request {
            method: "GET".into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First header value matching `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The target's raw query component (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }
}

/// Incremental request parser: [`feed`](RequestParser::feed) bytes as they
/// arrive, then [`poll`](RequestParser::poll) for a complete request.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// Fresh parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Append newly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when no partial request is buffered — the connection is
    /// between requests, so a read stall is client idleness, not a
    /// request cut off mid-flight. (The front end closes idle
    /// connections on a separate, longer budget.)
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    /// Try to parse a complete request from everything fed so far.
    ///
    /// `Ok(None)` means "incomplete — feed more". Errors are terminal: the
    /// connection should be answered with [`HttpError::status`] and closed.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        // Enforce the request-line limit even before a newline shows up, so
        // a newline-free flood is rejected at 8 KiB, not buffered forever.
        let first_nl = self.buf.iter().position(|&b| b == b'\n');
        match first_nl {
            None if self.buf.len() > MAX_REQUEST_LINE => {
                return Err(HttpError::RequestLineTooLong)
            }
            None => return Ok(None),
            Some(i) if i > MAX_REQUEST_LINE => return Err(HttpError::RequestLineTooLong),
            Some(_) => {}
        }

        let head_end = match find_head_end(&self.buf) {
            Some(e) => e,
            None if self.buf.len() > MAX_HEAD_BYTES => return Err(HttpError::HeadTooLarge),
            None => return Ok(None),
        };
        if head_end.head_len > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }

        let head = std::str::from_utf8(&self.buf[..head_end.head_len])
            .map_err(|_| HttpError::Malformed("head is not utf-8".into()))?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
        let (method, target, version) = parse_request_line(request_line)?;

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::HeadTooLarge);
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(HttpError::Malformed(format!("bad header name: {name:?}")));
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }

        let content_length = match headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v:?}")))?,
            None => 0,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }

        let total = head_end.body_start + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end.body_start..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            target,
            version,
            headers,
            body,
        }))
    }
}

struct HeadEnd {
    /// Bytes of the head, excluding the blank-line terminator.
    head_len: usize,
    /// Offset where the body begins (after the terminator).
    body_start: usize,
}

/// Find the blank line ending the head. Accepts `\r\n\r\n` and the sloppy
/// bare-`\n` variants (`\n\n`, `\n\r\n`) that hand-typed clients produce.
fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        // A line just ended at i. Does a blank line follow?
        if buf.get(i + 1) == Some(&b'\n') {
            return Some(HeadEnd {
                head_len: i,
                body_start: i + 2,
            });
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some(HeadEnd {
                head_len: i,
                body_start: i + 3,
            });
        }
        i += 1;
    }
    None
}

fn parse_request_line(line: &str) -> Result<(String, String, String), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed(format!("request line missing target: {line:?}")))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed(format!("request line missing version: {line:?}")))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed(format!(
            "request line has extra fields: {line:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) || method.is_empty() {
        return Err(HttpError::Malformed(format!("bad method: {method:?}")));
    }
    if !(target.starts_with('/') || target == "*") {
        return Err(HttpError::Malformed(format!("bad target: {target:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    Ok((method.to_string(), target.to_string(), version.to_string()))
}

/// Percent-decode one query component; `+` decodes to space. Invalid `%`
/// escapes pass through verbatim rather than erroring — query parsing is
/// already best-effort.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse a raw query string into decoded `(key, value)` pairs.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(kv), String::new()),
        })
        .collect()
}

/// An HTTP response ready to encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length` and `Connection: close`.
    pub headers: Vec<(String, String)>,
    /// The (JSON) body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: the value is serialized compactly.
    pub fn json(status: u16, value: &crowdnet_json::Value) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: value.to_compact().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": message, "status": status}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = crowdnet_json::obj! {
            "error" => message,
            "status" => i64::from(status),
        };
        Response::json(status, &body)
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize status line + headers + body to wire bytes, announcing
    /// the connection will close after this response.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(false)
    }

    /// Serialize with an explicit connection disposition: `keep_alive`
    /// announces the server will take another request on this connection.
    pub fn encode_with(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        out.extend_from_slice(b"Content-Type: application/json\r\n");
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if keep_alive {
            out.extend_from_slice(b"Connection: keep-alive\r\n");
        } else {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new();
        p.feed(bytes);
        p.poll()
    }

    #[test]
    fn parses_a_simple_get() {
        let r = parse_all(b"GET /stats HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/stats");
        assert_eq!(r.path(), "/stats");
        assert_eq!(r.query(), None);
        assert_eq!(r.header("host"), Some("localhost"));
        assert_eq!(r.header("HOST"), Some("localhost"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_across_arbitrary_splits() {
        let wire = b"POST /sql?ns=a HTTP/1.1\r\nContent-Length: 8\r\n\r\nSELECT 1";
        let mut p = RequestParser::new();
        for chunk in wire.chunks(3) {
            p.feed(chunk);
        }
        let r = p.poll().unwrap().unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path(), "/sql");
        assert_eq!(r.query(), Some("ns=a"));
        assert_eq!(r.body, b"SELECT 1");
    }

    #[test]
    fn incomplete_returns_none() {
        let mut p = RequestParser::new();
        p.feed(b"GET /x HTTP/1.1\r\nHost: a");
        assert_eq!(p.poll().unwrap(), None);
        p.feed(b"\r\n\r\n");
        assert!(p.poll().unwrap().is_some());
    }

    #[test]
    fn body_waits_for_content_length() {
        let mut p = RequestParser::new();
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab");
        assert_eq!(p.poll().unwrap(), None);
        p.feed(b"cd");
        assert_eq!(p.poll().unwrap().unwrap().body, b"abcd");
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut line = b"GET /".to_vec();
        line.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE + 10));
        let e = parse_all(&line).unwrap_err();
        assert_eq!(e, HttpError::RequestLineTooLong);
        assert_eq!(e.status(), 431);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            wire.extend_from_slice(format!("X-Filler-{i}: {}\r\n", "v".repeat(20)).as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&wire).unwrap_err().status(), 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADERS + 1 {
            wire.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&wire).unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let wire = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_all(wire.as_bytes()).unwrap_err().status(), 413);
    }

    #[test]
    fn malformed_inputs_are_400() {
        for wire in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let e = parse_all(wire).unwrap_err();
            assert_eq!(e.status(), 400, "wire: {wire:?} -> {e:?}");
        }
    }

    #[test]
    fn bad_version_is_505() {
        assert_eq!(
            parse_all(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err().status(),
            505
        );
    }

    #[test]
    fn bare_lf_head_is_accepted() {
        let r = parse_all(b"GET /x HTTP/1.1\nHost: a\n\n").unwrap().unwrap();
        assert_eq!(r.header("Host"), Some("a"));
    }

    #[test]
    fn query_decoding() {
        assert_eq!(decode_component("a+b%20c%2Fd"), "a b c/d");
        assert_eq!(decode_component("100%"), "100%");
        assert_eq!(decode_component("%zz"), "%zz");
        let q = parse_query("q=SELECT+1&ns=a%2Fb&flag");
        assert_eq!(
            q,
            vec![
                ("q".to_string(), "SELECT 1".to_string()),
                ("ns".to_string(), "a/b".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn response_encodes_with_framing() {
        let r = Response::json(200, &crowdnet_json::obj! {"ok" => true})
            .with_header("Retry-After", "2");
        let wire = String::from_utf8(r.encode()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("Content-Length: 11\r\n"));
        assert!(wire.contains("Connection: close\r\n"));
        assert!(wire.contains("Retry-After: 2\r\n"));
        assert!(wire.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn response_encodes_keep_alive_on_request() {
        let r = Response::json(200, &crowdnet_json::obj! {"ok" => true});
        let wire = String::from_utf8(r.encode_with(true)).unwrap();
        assert!(wire.contains("Connection: keep-alive\r\n"));
        assert!(!wire.contains("Connection: close\r\n"));
        assert_eq!(r.encode(), r.encode_with(false));
    }

    #[test]
    fn pipelined_second_request_stays_buffered() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.poll().unwrap().unwrap().target, "/a");
        assert_eq!(p.poll().unwrap().unwrap().target, "/b");
        assert_eq!(p.poll().unwrap(), None);
    }
}
