//! Version-stamped analytic artifacts built lazily from the store.
//!
//! The typed endpoints (§7 of DESIGN.md) answer from derived structures —
//! the bipartite investment graph, the CoDA cover with strength metrics,
//! degree and PageRank tables, an id → document index — that are expensive
//! to build and cheap to query. [`Artifacts::build`] computes them all in
//! one pass over the store and stamps the result with
//! [`Store::version`](crowdnet_store::Store::version) *read before the
//! scans*: if a crawl appends concurrently, the stamp is conservative and
//! the service rebuilds on the next request rather than serving from a
//! half-updated view.
//!
//! The extraction mirrors `crowdnet-core::features` (user documents with
//! `role == "investor"`, their `investments` array as edges); serve cannot
//! depend on `crowdnet-core` — the `repro` binary there depends on serve.

use crate::error::ServeError;
use crowdnet_dataflow::dataset::scan_store;
use crowdnet_dataflow::ExecCtx;
use crowdnet_graph::fxhash::FxHashMap;
use crowdnet_graph::metrics::{self, Community};
use crowdnet_graph::pagerank::{pagerank, PageRankConfig};
use crowdnet_graph::projection::Projection;
use crowdnet_graph::{BipartiteGraph, Coda, CodaConfig, Cover};
use crowdnet_json::Value;
use crowdnet_store::store::NamespaceStats;
use crowdnet_store::{SnapshotId, Store, StoreError};
use crowdnet_telemetry::Telemetry;

/// Namespaces of the crawled corpus (string-identical to the constants in
/// `crowdnet-crawl`, which serve cannot depend on without pulling in the
/// whole simulator).
pub const NS_COMPANIES: &str = "angellist/companies";
/// AngelList user profiles.
pub const NS_USERS: &str = "angellist/users";

/// Knobs for the artifact build.
#[derive(Debug, Clone)]
pub struct ArtifactsConfig {
    /// Minimum investments for an investor to enter community detection
    /// (the paper's ≥4 cleaning rule).
    pub min_investments: usize,
    /// CoDA community count; `0` picks `√(filtered investors)` (min 2).
    pub communities: usize,
    /// CoDA gradient-ascent iterations.
    pub iterations: usize,
    /// Seed for CoDA initialization.
    pub seed: u64,
    /// Hub cap for the PageRank co-investment projection.
    pub max_company_degree: usize,
}

impl Default for ArtifactsConfig {
    fn default() -> Self {
        ArtifactsConfig {
            min_investments: 4,
            communities: 0,
            iterations: 25,
            seed: 7,
            max_company_degree: 50,
        }
    }
}

/// One community, pre-summarized for the `/communities` endpoint.
#[derive(Debug, Clone)]
pub struct CommunitySummary {
    /// Index into the cover.
    pub id: usize,
    /// Member count.
    pub size: usize,
    /// Average pairwise shared-investment size (paper metric 1).
    pub avg_shared_investment: Option<f64>,
    /// % of invested companies with ≥2 community investors (paper metric 2).
    pub shared_investor_pct: Option<f64>,
}

/// The incrementally maintained inputs to [`Artifacts::assemble`] — what
/// the ingest tier keeps patched in place between epoch publishes.
pub struct ArtifactParts {
    /// Store version the parts are consistent at.
    pub version: u64,
    /// Full investor→company graph.
    pub graph: BipartiteGraph,
    /// `"company:{id}"` / `"user:{id}"` → document body.
    pub entities: FxHashMap<String, Value>,
    /// PageRank scores index-aligned with `graph`'s investors.
    pub pagerank: Vec<f64>,
    /// Per-namespace stats at `version` (None = read live from the store).
    pub stats: Option<Vec<NamespaceStats>>,
}

/// Everything derived from one consistent view of the store.
pub struct Artifacts {
    /// [`Store::version`] observed before the scans began.
    pub version: u64,
    /// Full investor→company graph.
    pub graph: BipartiteGraph,
    /// Graph after the ≥`min_investments` cleaning filter.
    pub filtered: BipartiteGraph,
    /// CoDA cover over `filtered` (investor indices into `filtered`).
    pub cover: Cover,
    /// Per-community strength summaries, index-aligned with `cover`.
    pub communities: Vec<CommunitySummary>,
    /// PageRank over the co-investment projection of the full graph,
    /// index-aligned with its investors.
    pub pagerank: Vec<f64>,
    /// Per-namespace stats frozen at `version` (set by the epoch
    /// publisher so `/stats` answers from the pinned epoch; `None` on
    /// lazily built artifacts, where `/stats` reads the store live).
    pub stats: Option<Vec<NamespaceStats>>,
    /// `"company:{id}"` / `"user:{id}"` → document body.
    entities: FxHashMap<String, Value>,
    /// AngelList investor id → dense index in `graph`.
    investor_idx: FxHashMap<u32, u32>,
    /// AngelList company id → dense index in `graph`.
    company_idx: FxHashMap<u32, u32>,
    /// AngelList investor id → dense index in `filtered`.
    filtered_idx: FxHashMap<u32, u32>,
    /// Dense `filtered` index → community ids.
    membership: FxHashMap<u32, Vec<usize>>,
}

impl Artifacts {
    /// Scan the store and build every artifact. Missing namespaces (an
    /// empty or partial crawl) yield empty-but-valid artifacts rather than
    /// an error, so a freshly-opened service still serves `/stats`.
    pub fn build(
        store: &Store,
        ctx: ExecCtx,
        telemetry: &Telemetry,
        cfg: &ArtifactsConfig,
    ) -> Result<Artifacts, ServeError> {
        let _span = telemetry.span("serve.artifacts.build");
        let version = store.version();

        let mut scans: Vec<(&str, Vec<crowdnet_store::Document>)> = Vec::new();
        for ns in [NS_COMPANIES, NS_USERS] {
            match scan_store(store, ns, SnapshotId(0), ctx) {
                Ok(d) => scans.push((ns, d.collect())),
                Err(StoreError::NamespaceNotFound(_)) => continue,
                Err(e) => return Err(ServeError::Store(e)),
            }
        }
        Ok(Artifacts::from_documents(version, scans, telemetry, cfg))
    }

    /// Build every artifact from the columnar projection instead of the
    /// JSON log. The decoded column rows reproduce the canonical scan
    /// exactly and the pre-extracted edge segments reproduce the
    /// `role == "investor"` edge walk, so the result is byte-identical to
    /// [`Artifacts::build`] at the catalog's version. Absent namespaces
    /// are skipped like `build` skips `NamespaceNotFound`; any decode
    /// error surfaces so the caller can fall back to the JSON path —
    /// the projection is derived data and never trusted over the log.
    pub fn from_columns(
        catalog: &crowdnet_column::ColumnCatalog,
        telemetry: &Telemetry,
        cfg: &ArtifactsConfig,
    ) -> Result<Artifacts, crowdnet_column::ColumnError> {
        let _span = telemetry.span("serve.artifacts.build");
        let version = catalog.version();

        let mut scans: Vec<(&str, Vec<crowdnet_store::Document>)> = Vec::new();
        for ns in [NS_COMPANIES, NS_USERS] {
            if !catalog.has(ns, SnapshotId(0)) {
                continue;
            }
            let docs: Vec<crowdnet_store::Document> = catalog
                .docs_partitioned(ns, SnapshotId(0))?
                .into_iter()
                .flatten()
                .collect();
            scans.push((ns, docs));
        }
        let edges = if catalog.has(NS_USERS, SnapshotId(0)) {
            catalog.edges(NS_USERS, SnapshotId(0))?
        } else {
            Vec::new()
        };

        let mut entities: FxHashMap<String, Value> = FxHashMap::default();
        for (_, docs) in scans {
            for doc in docs {
                entities.insert(doc.key, doc.body);
            }
        }

        let graph = BipartiteGraph::from_edges(edges);
        let pagerank = pagerank(
            &Projection::from_bipartite(&graph, cfg.max_company_degree),
            &PageRankConfig::default(),
        );
        let (artifacts, _) = Artifacts::assemble(
            ArtifactParts {
                version,
                graph,
                entities,
                pagerank,
                stats: None,
            },
            cfg,
            telemetry,
            None,
        );
        Ok(artifacts)
    }

    /// Build every artifact from already-gathered canonical scans of the
    /// corpus namespaces (each `Vec<Document>` in store scan order). This
    /// is [`Artifacts::build`] minus the store access, so a sharded router
    /// can gather the per-shard scans, merge them back into canonical
    /// order, and assemble byte-identical artifacts.
    pub fn from_documents(
        version: u64,
        scans: Vec<(&str, Vec<crowdnet_store::Document>)>,
        telemetry: &Telemetry,
        cfg: &ArtifactsConfig,
    ) -> Artifacts {
        let mut entities: FxHashMap<String, Value> = FxHashMap::default();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (ns, docs) in scans {
            for doc in docs {
                if ns == NS_USERS
                    && doc.body.get("role").and_then(Value::as_str) == Some("investor")
                {
                    let id = doc.body.get("id").and_then(Value::as_u64).unwrap_or(0) as u32;
                    if let Some(arr) = doc.body.get("investments").and_then(Value::as_arr) {
                        edges.extend(
                            arr.iter()
                                .filter_map(Value::as_u64)
                                .map(|c| (id, c as u32)),
                        );
                    }
                }
                entities.insert(doc.key, doc.body);
            }
        }

        let graph = BipartiteGraph::from_edges(edges);
        let pagerank = pagerank(
            &Projection::from_bipartite(&graph, cfg.max_company_degree),
            &PageRankConfig::default(),
        );
        let (artifacts, _) = Artifacts::assemble(
            ArtifactParts {
                version,
                graph,
                entities,
                pagerank,
                stats: None,
            },
            cfg,
            telemetry,
            None,
        );
        artifacts
    }

    /// Assemble servable artifacts from incrementally maintained parts —
    /// the epoch publisher's constructor. Derives the filtered graph, the
    /// CoDA cover (warm-started from a previous epoch's model when
    /// `warm = Some((model, its_filtered_graph))`), strength summaries
    /// and the id→index maps. Returns the fitted CoDA model alongside so
    /// the caller can warm-start the *next* epoch.
    pub fn assemble(
        parts: ArtifactParts,
        cfg: &ArtifactsConfig,
        telemetry: &Telemetry,
        warm: Option<(&Coda, &BipartiteGraph)>,
    ) -> (Artifacts, Option<Coda>) {
        let ArtifactParts {
            version,
            graph,
            entities,
            pagerank,
            stats,
        } = parts;
        let filtered = graph.filter_min_investments(cfg.min_investments);

        let (cover, model): (Cover, Option<Coda>) = if filtered.investor_count() == 0 {
            (Vec::new(), None)
        } else {
            let communities = if cfg.communities > 0 {
                cfg.communities
            } else {
                ((filtered.investor_count() as f64).sqrt().ceil() as usize).max(2)
            };
            let coda_cfg = CodaConfig {
                communities,
                iterations: cfg.iterations,
                seed: cfg.seed,
                telemetry: telemetry.clone(),
                ..CodaConfig::default()
            };
            let model = match warm {
                Some((prev, prev_graph)) => Coda::fit_warm(&filtered, &coda_cfg, prev, prev_graph),
                None => Coda::fit(&filtered, &coda_cfg),
            };
            let cover = model.investor_communities(&filtered, &coda_cfg);
            (cover, Some(model))
        };

        let communities = cover
            .iter()
            .enumerate()
            .map(|(id, c)| CommunitySummary {
                id,
                size: c.members.len(),
                avg_shared_investment: metrics::avg_shared_investment(&filtered, c),
                shared_investor_pct: metrics::pct_companies_with_shared_investors(&filtered, c, 2),
            })
            .collect();

        let index_of = |g: &BipartiteGraph| -> FxHashMap<u32, u32> {
            (0..g.investor_count() as u32)
                .map(|i| (g.investor_id(i), i))
                .collect()
        };
        let investor_idx = index_of(&graph);
        let filtered_idx = index_of(&filtered);
        let company_idx: FxHashMap<u32, u32> = (0..graph.company_count() as u32)
            .map(|c| (graph.company_id(c), c))
            .collect();

        let mut membership: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for (cid, community) in cover.iter().enumerate() {
            for &m in &community.members {
                membership.entry(m).or_default().push(cid);
            }
        }

        (
            Artifacts {
                version,
                graph,
                filtered,
                cover,
                communities,
                pagerank,
                stats,
                entities,
                investor_idx,
                company_idx,
                filtered_idx,
                membership,
            },
            model,
        )
    }

    /// The document body stored under `"{kind}:{id}"`, if any.
    pub fn entity(&self, kind: &str, id: u32) -> Option<&Value> {
        self.entities.get(&format!("{kind}:{id}"))
    }

    /// Dense index of an AngelList investor id in the full graph.
    pub fn investor_index(&self, id: u32) -> Option<u32> {
        self.investor_idx.get(&id).copied()
    }

    /// Dense index of an AngelList company id in the full graph.
    pub fn company_index(&self, id: u32) -> Option<u32> {
        self.company_idx.get(&id).copied()
    }

    /// Community ids an investor (by AngelList id) belongs to, with its
    /// dense index in the filtered graph. `None` when the investor did not
    /// survive the ≥k cleaning filter.
    pub fn investor_membership(&self, id: u32) -> Option<(u32, &[usize])> {
        let idx = self.filtered_idx.get(&id).copied()?;
        let communities = self
            .membership
            .get(&idx)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        Some((idx, communities))
    }

    /// The community at `id`, as `(summary, members as AngelList ids)`.
    pub fn community(&self, id: usize) -> Option<(&CommunitySummary, Vec<u32>)> {
        let summary = self.communities.get(id)?;
        let members = self
            .cover
            .get(id)?
            .members
            .iter()
            .map(|&m| self.filtered.investor_id(m))
            .collect();
        Some((summary, members))
    }

    /// Strength metrics recomputable for ad-hoc member sets (used by
    /// tests to cross-check the cached summaries).
    pub fn strength_of(&self, members: &[u32]) -> (Option<f64>, Option<f64>) {
        let community = Community {
            members: members.to_vec(),
        };
        (
            metrics::avg_shared_investment(&self.filtered, &community),
            metrics::pct_companies_with_shared_investors(&self.filtered, &community, 2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_json::obj;
    use crowdnet_store::Document;

    fn seeded_store() -> Store {
        let store = Store::memory(4);
        for id in 0..6u32 {
            store
                .put(
                    NS_COMPANIES,
                    Document::new(
                        format!("company:{id}"),
                        obj! {"id" => u64::from(id), "name" => format!("c{id}")},
                    ),
                )
                .unwrap();
        }
        // Investors 100..104: two "herds" investing in overlapping companies,
        // each with >= 4 investments so they survive the cleaning filter.
        let portfolios: &[(u32, &[u64])] = &[
            (100, &[0, 1, 2, 3]),
            (101, &[0, 1, 2, 3]),
            (102, &[0, 1, 2, 4]),
            (103, &[2, 3, 4, 5]),
            (104, &[1, 2]), // below the filter
        ];
        for (id, inv) in portfolios {
            let arr = inv.iter().map(|&c| Value::from(c)).collect::<Vec<_>>();
            store
                .put(
                    NS_USERS,
                    Document::new(
                        format!("user:{id}"),
                        obj! {
                            "id" => u64::from(*id),
                            "role" => "investor",
                            "investments" => Value::Arr(arr),
                        },
                    ),
                )
                .unwrap();
        }
        // A non-investor user contributes no edges.
        store
            .put(
                NS_USERS,
                Document::new(
                    "user:200",
                    obj! {"id" => 200u64, "role" => "founder"},
                ),
            )
            .unwrap();
        store
    }

    fn build(store: &Store) -> Artifacts {
        Artifacts::build(
            store,
            ExecCtx::new(2),
            &Telemetry::new(),
            &ArtifactsConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn builds_graph_and_indices_from_documents() {
        let store = seeded_store();
        let a = build(&store);
        assert_eq!(a.version, store.version());
        assert_eq!(a.graph.investor_count(), 5);
        assert_eq!(a.graph.company_count(), 6);
        assert_eq!(a.filtered.investor_count(), 4); // 104 filtered out
        let idx = a.investor_index(100).unwrap();
        assert_eq!(a.graph.investor_id(idx), 100);
        assert!(a.investor_index(999).is_none());
        assert!(a.company_index(5).is_some());
        assert_eq!(a.pagerank.len(), a.graph.investor_count());
    }

    #[test]
    fn entities_are_addressable_by_kind_and_id() {
        let a = build(&seeded_store());
        let c = a.entity("company", 3).unwrap();
        assert_eq!(c.get("name").and_then(Value::as_str), Some("c3"));
        assert!(a.entity("user", 104).is_some());
        assert!(a.entity("company", 77).is_none());
    }

    #[test]
    fn cover_and_membership_agree() {
        let a = build(&seeded_store());
        assert_eq!(a.communities.len(), a.cover.len());
        for summary in &a.communities {
            let (s2, members) = a.community(summary.id).unwrap();
            assert_eq!(s2.size, members.len());
            // Every member id maps back into at least this community.
            for id in members {
                let (_, cids) = a.investor_membership(id).unwrap();
                assert!(cids.contains(&summary.id));
            }
        }
        // Filtered-out investors have no membership.
        assert!(a.investor_membership(104).is_none());
    }

    #[test]
    fn empty_store_builds_empty_artifacts() {
        let store = Store::memory(2);
        let a = build(&store);
        assert_eq!(a.graph.investor_count(), 0);
        assert!(a.cover.is_empty());
        assert!(a.entity("company", 0).is_none());
    }

    #[test]
    fn summaries_match_recomputed_metrics() {
        let a = build(&seeded_store());
        for summary in &a.communities {
            let (_, members_ids) = a.community(summary.id).unwrap();
            let members: Vec<u32> = members_ids
                .iter()
                .filter_map(|&id| a.investor_membership(id).map(|(idx, _)| idx))
                .collect();
            let (avg, pct) = a.strength_of(&members);
            assert_eq!(avg, summary.avg_shared_investment);
            assert_eq!(pct, summary.shared_investor_pct);
        }
    }
}
