//! Fixed worker pool fed by a *bounded* queue — the admission-control
//! primitive of the serving tier.
//!
//! The queue is a `std::sync::mpsc::sync_channel` (bounded by
//! construction, per the workspace `unbounded-channel` lint); workers
//! share the receiver behind a mutex, taking jobs one at a time.
//! [`WorkerPool::try_submit`] never blocks: a full queue returns the job
//! to the caller, which is exactly the load-shedding decision point —
//! callers answer `503 Retry-After` instead of queueing unboundedly.
//!
//! Shutdown is graceful by the channel's own semantics: dropping the
//! sender lets workers drain every job already admitted, then exit.

use crowdnet_telemetry::{Gauge, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of queued work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool over a bounded queue.
pub struct WorkerPool {
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    depth: Arc<AtomicUsize>,
    depth_gauge: Gauge,
    capacity: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue admitting at most
    /// `queue_capacity` waiting jobs. The current depth is exported as the
    /// `serve.queue_depth` gauge (set_max, so the report shows the peak).
    pub fn new(workers: usize, queue_capacity: usize, telemetry: &Telemetry) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let depth = Arc::clone(&depth);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &depth))
                    .unwrap_or_else(|e| panic!("spawn serve worker: {e}"))
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            depth,
            depth_gauge: telemetry.gauge("serve.queue_depth"),
            capacity: queue_capacity.max(1),
        }
    }

    /// Queue capacity (jobs that can wait beyond the ones executing).
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently admitted but not yet finished.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Non-blocking submit. `Err` returns the job when the queue is full
    /// (shed it) or the pool is shutting down.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        let guard = self.tx.lock();
        let tx = match &*guard {
            Some(tx) => tx,
            None => return Err(job),
        };
        // Count before sending so a worker that dequeues immediately can't
        // observe a negative-looking depth.
        let depth = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        match tx.try_send(job) {
            Ok(()) => {
                self.depth_gauge.set_max(depth as u64);
                Ok(())
            }
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Err(job)
            }
        }
    }

    /// Stop admitting work, drain everything already queued, join the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender closes the channel; workers finish the
        // buffered jobs and then see Disconnected.
        drop(self.tx.lock().take());
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, depth: &AtomicUsize) {
    loop {
        // Hold the receiver lock only to dequeue, never while running the
        // job — other workers must be able to pull concurrently-queued work.
        let job = {
            let guard = rx.lock();
            // lint:allow(lock-order-global): the guard exists to serialise recv across workers; senders never take this lock, so no cycle
            guard.recv()
        };
        match job {
            Ok(job) => {
                job();
                depth.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => return, // all senders dropped and queue drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let t = Telemetry::new();
        let pool = WorkerPool::new(4, 16, &t);
        let (done_tx, done_rx) = mpsc::channel();
        for i in 0..16u32 {
            let done = done_tx.clone();
            pool.try_submit(Box::new(move || {
                done.send(i).unwrap();
            }))
            .unwrap_or_else(|_| panic!("queue unexpectedly full"));
        }
        let mut got: Vec<u32> = (0..16).map(|_| done_rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let t = Telemetry::new();
        // One worker, blocked on a rendezvous; queue of 2.
        let pool = WorkerPool::new(1, 2, &t);
        let (block_tx, block_rx) = mpsc::sync_channel::<()>(0);
        let (started_tx, started_rx) = mpsc::channel();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        }))
        .unwrap_or_else(|_| panic!("first job rejected"));
        started_rx.recv().unwrap(); // worker is now occupied
        pool.try_submit(Box::new(|| {})).unwrap_or_else(|_| panic!("q1"));
        pool.try_submit(Box::new(|| {})).unwrap_or_else(|_| panic!("q2"));
        // Queue (capacity 2) is now full; the next submit must shed.
        assert!(pool.try_submit(Box::new(|| {})).is_err());
        assert_eq!(pool.depth(), 3);
        block_tx.send(()).unwrap(); // unblock
        pool.shutdown();
        assert_eq!(pool.depth(), 0);
        assert!(t.gauge("serve.queue_depth").value() >= 3);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let t = Telemetry::new();
        let pool = WorkerPool::new(2, 32, &t);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("queue full"));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let t = Telemetry::new();
        let pool = WorkerPool::new(1, 4, &t);
        pool.shutdown();
        assert!(pool.try_submit(Box::new(|| {})).is_err());
        pool.shutdown(); // idempotent
    }
}
