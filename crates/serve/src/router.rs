//! Route table: maps parsed requests onto the service's typed endpoints.
//!
//! | Endpoint | Answers |
//! |---|---|
//! | `GET /healthz` | liveness + cache occupancy (uncached) |
//! | `GET /stats` | per-namespace store stats, reconciling with `Store::stats` |
//! | `GET /entity/{company\|user}/{id}` | the crawled document body |
//! | `GET /investor/{id}/portfolio` | companies, degree, PageRank |
//! | `GET /investor/{id}/communities` | community membership |
//! | `GET /company/{id}/investors` | inbound investor neighbors |
//! | `GET /communities` | cover summary with both strength metrics |
//! | `GET /communities/{id}` | one community, members + metrics |
//! | `GET /top/investors?by=degree\|pagerank&k=N` | ranked investors |
//! | `GET\|POST /sql?ns=…&q=…` | ad-hoc SQL via `dataflow::sql::query` |
//!
//! Handlers return `Result<Value, ServeError>`; this module renders either
//! side to a [`Response`], so status mapping lives in exactly one place.

use crate::error::ServeError;
use crate::http::{parse_query, Request, Response};
use crate::service::Service;
use crowdnet_dataflow::dataset::scan_store;
use crowdnet_dataflow::sql;
use crowdnet_json::{obj, Value};
use crowdnet_store::SnapshotId;

/// Serve `req` against `service`, rendering errors as JSON envelopes.
pub fn respond(service: &Service, req: &Request) -> Response {
    match route(service, req) {
        Ok(value) => Response::json(200, &value),
        Err(e) => error_response(&e),
    }
}

/// Render a [`ServeError`] with its status and (for 503s) a `Retry-After`.
pub fn error_response(e: &ServeError) -> Response {
    let resp = Response::error(e.status(), &e.to_string());
    match e {
        ServeError::Shed { retry_after_secs } => {
            resp.with_header("Retry-After", &retry_after_secs.to_string())
        }
        ServeError::DeadlineExceeded { .. } | ServeError::ShuttingDown => {
            resp.with_header("Retry-After", "1")
        }
        _ => resp,
    }
}

fn route(service: &Service, req: &Request) -> Result<Value, ServeError> {
    let path = req.path().to_string();
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let is_sql_post = req.method == "POST" && segs.as_slice() == ["sql"];
    if req.method != "GET" && !is_sql_post {
        return Err(ServeError::MethodNotAllowed(format!(
            "{} {}",
            req.method, path
        )));
    }
    match segs.as_slice() {
        ["healthz"] => healthz(service),
        ["stats"] => stats(service),
        ["entity", kind, id] => entity(service, kind, parse_id(id)?),
        ["investor", id, "portfolio"] => portfolio(service, parse_id(id)?),
        ["investor", id, "communities"] => investor_communities(service, parse_id(id)?),
        ["company", id, "investors"] => company_investors(service, parse_id(id)?),
        ["communities"] => communities(service),
        ["communities", id] => community(service, id),
        ["top", "investors"] => top_investors(service, req),
        ["sql"] => sql_endpoint(service, req),
        _ => Err(ServeError::NotFound(path)),
    }
}

/// Parse a path segment as an entity id (shared with the shard router so
/// both render the same 400 envelope).
pub fn parse_id(s: &str) -> Result<u32, ServeError> {
    s.parse::<u32>()
        .map_err(|_| ServeError::BadRequest(format!("bad id: {s:?}")))
}

/// First query parameter named `name`, percent-decoded.
pub fn param(req: &Request, name: &str) -> Option<String> {
    parse_query(req.query().unwrap_or_default())
        .into_iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

/// `Some(x)` → number, `None` → JSON null.
pub fn opt_f64(v: Option<f64>) -> Value {
    v.map(Value::from).unwrap_or(Value::Null)
}

/// Render entity ids as a JSON array of numbers.
pub fn id_array(ids: impl IntoIterator<Item = u32>) -> Value {
    Value::Arr(ids.into_iter().map(|i| Value::from(u64::from(i))).collect())
}

fn healthz(service: &Service) -> Result<Value, ServeError> {
    let cache = service.cache_stats();
    Ok(obj! {
        "ok" => true,
        "degraded" => service.is_degraded(),
        "version" => service.store().version(),
        "cache" => obj! {
            "entries" => cache.entries,
            "bytes" => cache.bytes,
            "capacity_bytes" => cache.capacity_bytes,
        },
    })
}

fn stats(service: &Service) -> Result<Value, ServeError> {
    // Pinned-epoch mode: answer from the stats frozen into the epoch, at
    // the epoch's version — consistent with every other endpoint even
    // while the store takes writes. Otherwise read the store live.
    let mut rendered = match service.pinned_artifacts() {
        Some(epoch) if epoch.stats.is_some() => {
            render_stats(epoch.stats.as_deref().unwrap_or_default(), epoch.version)
        }
        _ => render_stats(&service.store().stats()?, service.store().version()),
    };
    if let Some(o) = rendered.as_obj_mut() {
        o.insert("degraded", Value::Bool(service.is_degraded()));
    }
    Ok(rendered)
}

/// Render namespace stats + version as the `/stats` envelope (shared with
/// the shard router, which merges per-shard stats into the same shape).
pub fn render_stats(stats: &[crowdnet_store::store::NamespaceStats], version: u64) -> Value {
    let namespaces = stats
        .iter()
        .map(|n| {
            obj! {
                "namespace" => n.namespace.as_str(),
                "documents" => n.documents,
                "encoded_bytes" => n.encoded_bytes,
                "snapshots" => n.snapshots,
            }
        })
        .collect();
    obj! {
        "version" => version,
        "namespaces" => Value::Arr(namespaces),
    }
}

fn entity(service: &Service, kind: &str, id: u32) -> Result<Value, ServeError> {
    if kind != "company" && kind != "user" {
        return Err(ServeError::BadRequest(format!(
            "unknown entity kind: {kind:?} (company|user)"
        )));
    }
    let artifacts = service.artifacts()?;
    let body = artifacts
        .entity(kind, id)
        .cloned()
        .ok_or_else(|| ServeError::NotFound(format!("{kind}:{id}")))?;
    Ok(obj! {"kind" => kind, "id" => u64::from(id), "body" => body})
}

fn portfolio(service: &Service, id: u32) -> Result<Value, ServeError> {
    let artifacts = service.artifacts()?;
    let idx = artifacts
        .investor_index(id)
        .ok_or_else(|| ServeError::NotFound(format!("investor {id}")))?;
    let companies = artifacts.graph.companies_of(idx);
    // Sorted by id so the listing is canonical regardless of dense-index
    // assignment order (and therefore identical under sharding).
    let mut ids: Vec<u32> = companies
        .iter()
        .map(|&c| artifacts.graph.company_id(c))
        .collect();
    ids.sort_unstable();
    Ok(obj! {
        "id" => u64::from(id),
        "degree" => companies.len(),
        "pagerank" => artifacts.pagerank.get(idx as usize).copied().unwrap_or(0.0),
        "companies" => id_array(ids),
    })
}

fn investor_communities(service: &Service, id: u32) -> Result<Value, ServeError> {
    let artifacts = service.artifacts()?;
    if artifacts.investor_index(id).is_none() {
        return Err(ServeError::NotFound(format!("investor {id}")));
    }
    let (filtered, communities) = match artifacts.investor_membership(id) {
        Some((_, cids)) => (true, cids.to_vec()),
        None => (false, Vec::new()),
    };
    Ok(obj! {
        "id" => u64::from(id),
        // Investors below the >=k cleaning threshold carry no communities.
        "in_filtered_graph" => filtered,
        "communities" => Value::Arr(communities.into_iter().map(Value::from).collect()),
    })
}

fn company_investors(service: &Service, id: u32) -> Result<Value, ServeError> {
    let artifacts = service.artifacts()?;
    let idx = artifacts
        .company_index(id)
        .ok_or_else(|| ServeError::NotFound(format!("company {id}")))?;
    let investors = artifacts.graph.investors_of(idx);
    // Sorted by id: canonical independent of dense-index assignment order.
    let mut ids: Vec<u32> = investors
        .iter()
        .map(|&i| artifacts.graph.investor_id(i))
        .collect();
    ids.sort_unstable();
    Ok(obj! {
        "id" => u64::from(id),
        "degree" => investors.len(),
        "investors" => id_array(ids),
    })
}

fn community_summary(artifacts: &crate::artifacts::Artifacts, id: usize) -> Option<Value> {
    let s = artifacts.communities.get(id)?;
    Some(obj! {
        "id" => s.id,
        "size" => s.size,
        "avg_shared_investment" => opt_f64(s.avg_shared_investment),
        "shared_investor_pct" => opt_f64(s.shared_investor_pct),
    })
}

fn communities(service: &Service) -> Result<Value, ServeError> {
    let artifacts = service.artifacts()?;
    let list = (0..artifacts.communities.len())
        .filter_map(|i| community_summary(&artifacts, i))
        .collect();
    Ok(obj! {
        "count" => artifacts.communities.len(),
        "filtered_investors" => artifacts.filtered.investor_count(),
        "communities" => Value::Arr(list),
    })
}

fn community(service: &Service, raw_id: &str) -> Result<Value, ServeError> {
    let id = raw_id
        .parse::<usize>()
        .map_err(|_| ServeError::BadRequest(format!("bad community id: {raw_id:?}")))?;
    let artifacts = service.artifacts()?;
    let (_, members) = artifacts
        .community(id)
        .ok_or_else(|| ServeError::NotFound(format!("community {id}")))?;
    let mut summary = community_summary(&artifacts, id)
        .ok_or_else(|| ServeError::NotFound(format!("community {id}")))?;
    if let Some(o) = summary.as_obj_mut() {
        o.insert("members", id_array(members));
    }
    Ok(summary)
}

fn top_investors(service: &Service, req: &Request) -> Result<Value, ServeError> {
    let by = param(req, "by").unwrap_or_else(|| "degree".into());
    let k = match param(req, "k") {
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| ServeError::BadRequest(format!("bad k: {raw:?}")))?,
        None => 10,
    };
    let artifacts = service.artifacts()?;
    let scores: Vec<f64> = match by.as_str() {
        "degree" => artifacts
            .graph
            .investor_degrees()
            .into_iter()
            .map(|d| d as f64)
            .collect(),
        "pagerank" => artifacts.pagerank.clone(),
        other => {
            return Err(ServeError::BadRequest(format!(
                "unknown ranking: {other:?} (degree|pagerank)"
            )))
        }
    };
    let mut ranked: Vec<(u32, f64)> = scores
        .into_iter()
        .enumerate()
        .map(|(i, s)| (artifacts.graph.investor_id(i as u32), s))
        .collect();
    // Ties break by ascending id so the ranking is deterministic.
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    let rows = ranked
        .into_iter()
        .map(|(id, score)| obj! {"id" => u64::from(id), "score" => score})
        .collect();
    Ok(obj! {"by" => by, "k" => k, "investors" => Value::Arr(rows)})
}

fn sql_endpoint(service: &Service, req: &Request) -> Result<Value, ServeError> {
    let ns = param(req, "ns")
        .ok_or_else(|| ServeError::BadRequest("missing ?ns= namespace".into()))?;
    let query_text = if req.method == "POST" && !req.body.is_empty() {
        String::from_utf8(req.body.clone())
            .map_err(|_| ServeError::BadRequest("sql body is not utf-8".into()))?
    } else {
        param(req, "q").ok_or_else(|| ServeError::BadRequest("missing ?q= query".into()))?
    };
    let docs = scan_store(service.store(), &ns, SnapshotId(0), service.ctx)?;
    let table = sql::query(&query_text, docs.map(|d| d.body))?;
    let total = table.rows.len();
    let limit = service.cfg.sql_row_limit;
    let rows = table
        .rows
        .into_iter()
        .take(limit)
        .map(Value::Arr)
        .collect();
    Ok(obj! {
        "columns" => Value::Arr(table.columns.into_iter().map(Value::from).collect()),
        "rows" => Value::Arr(rows),
        "row_count" => total,
        "truncated" => total > limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests::seeded_service;

    fn get(svc: &Service, target: &str) -> (u16, Value) {
        let resp = svc.handle(&Request::get(target));
        let body = std::str::from_utf8(&resp.body).unwrap();
        (resp.status, Value::parse(body).unwrap())
    }

    #[test]
    fn stats_reconciles_with_store() {
        let svc = seeded_service();
        let (status, v) = get(&svc, "/stats");
        assert_eq!(status, 200);
        let direct = svc.store().stats().unwrap();
        let served = v.get("namespaces").and_then(Value::as_arr).unwrap();
        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.get("namespace").and_then(Value::as_str), Some(d.namespace.as_str()));
            assert_eq!(
                s.get("documents").and_then(Value::as_u64),
                Some(d.documents as u64)
            );
            assert_eq!(
                s.get("encoded_bytes").and_then(Value::as_u64),
                Some(d.encoded_bytes as u64)
            );
        }
    }

    #[test]
    fn entity_lookup_hits_and_misses() {
        let svc = seeded_service();
        let (status, v) = get(&svc, "/entity/company/1");
        assert_eq!(status, 200);
        assert_eq!(
            v.get("body").and_then(|b| b.get("name")).and_then(Value::as_str),
            Some("c1")
        );
        assert_eq!(get(&svc, "/entity/company/999").0, 404);
        assert_eq!(get(&svc, "/entity/planet/1").0, 400);
        assert_eq!(get(&svc, "/entity/company/xyz").0, 400);
    }

    #[test]
    fn neighbor_queries_are_mutually_consistent() {
        let svc = seeded_service();
        let (_, portfolio) = get(&svc, "/investor/10/portfolio");
        let companies = portfolio.get("companies").and_then(Value::as_arr).unwrap();
        assert_eq!(companies.len(), 4);
        for c in companies {
            let cid = c.as_u64().unwrap();
            let (_, investors) = get(&svc, &format!("/company/{cid}/investors"));
            let ids: Vec<u64> = investors
                .get("investors")
                .and_then(Value::as_arr)
                .unwrap()
                .iter()
                .filter_map(Value::as_u64)
                .collect();
            assert!(ids.contains(&10), "company {cid} lost investor 10");
        }
        assert_eq!(get(&svc, "/investor/9999/portfolio").0, 404);
    }

    #[test]
    fn communities_listing_and_membership() {
        let svc = seeded_service();
        let (status, v) = get(&svc, "/communities");
        assert_eq!(status, 200);
        let count = v.get("count").and_then(Value::as_u64).unwrap();
        if count > 0 {
            let (s2, one) = get(&svc, "/communities/0");
            assert_eq!(s2, 200);
            assert!(one.get("members").and_then(Value::as_arr).is_some());
        }
        assert_eq!(get(&svc, &format!("/communities/{}", count + 10)).0, 404);
        let (s3, m) = get(&svc, "/investor/10/communities");
        assert_eq!(s3, 200);
        assert_eq!(m.get("in_filtered_graph"), Some(&Value::Bool(true)));
    }

    #[test]
    fn top_investors_rankings() {
        let svc = seeded_service();
        let (status, v) = get(&svc, "/top/investors?by=degree&k=2");
        assert_eq!(status, 200);
        let rows = v.get("investors").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        // All three investors have degree 4; ties break by id.
        assert_eq!(rows[0].get("id").and_then(Value::as_u64), Some(10));
        assert_eq!(rows[1].get("id").and_then(Value::as_u64), Some(11));
        assert_eq!(get(&svc, "/top/investors?by=pagerank&k=3").0, 200);
        assert_eq!(get(&svc, "/top/investors?by=fame").0, 400);
        assert_eq!(get(&svc, "/top/investors?k=nope").0, 400);
    }

    #[test]
    fn sql_get_and_post_agree() {
        let svc = seeded_service();
        let (status, v) = get(
            &svc,
            "/sql?ns=angellist%2Fusers&q=SELECT+COUNT(*)+AS+n+FROM+docs",
        );
        assert_eq!(status, 200);
        assert_eq!(v.get("rows").and_then(Value::as_arr).unwrap().len(), 1);
        let post = svc.handle(&Request {
            method: "POST".into(),
            target: "/sql?ns=angellist%2Fusers".into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: b"SELECT COUNT(*) AS n FROM docs".to_vec(),
        });
        assert_eq!(post.status, 200);
        assert_eq!(post.body, svc.handle(&Request::get(
            "/sql?ns=angellist%2Fusers&q=SELECT+COUNT(*)+AS+n+FROM+docs",
        )).body);
        // Errors map to statuses.
        assert_eq!(get(&svc, "/sql?q=SELECT+1").0, 400); // missing ns
        assert_eq!(get(&svc, "/sql?ns=angellist%2Fusers").0, 400); // missing q
        assert_eq!(get(&svc, "/sql?ns=ghost&q=SELECT+COUNT(*)+FROM+docs").0, 404);
        assert_eq!(get(&svc, "/sql?ns=angellist%2Fusers&q=NOT+SQL").0, 400);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let svc = seeded_service();
        assert_eq!(get(&svc, "/nope").0, 404);
        assert_eq!(get(&svc, "/").0, 404);
        let resp = svc.handle(&Request {
            method: "DELETE".into(),
            target: "/stats".into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        });
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn shed_errors_carry_retry_after() {
        let resp = error_response(&ServeError::Shed { retry_after_secs: 3 });
        assert_eq!(resp.status, 503);
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "3"));
    }
}
