//! The concurrent front end: admission control, deadlines, and the
//! loopback TCP listener.
//!
//! Both entry points — [`Server::call`] (in-process) and the TCP accept
//! loop — push work through the same bounded [`WorkerPool`]; when the
//! queue is full the request is **shed** with `503 + Retry-After` instead
//! of waiting, so the server never blocks unboundedly no matter the burst
//! (`serve.shed` counts every shed). A request may carry a deadline
//! (`X-Deadline-Ms`, milliseconds of patience on the telemetry clock);
//! if it is still waiting when the deadline passes, the worker answers
//! `503` without doing the work — late answers to a gone client are pure
//! waste. Deadlines run on the *injected* clock, so tests drive them
//! deterministically and `repro` binds a wall clock.
//!
//! Shutdown is graceful: the listener stops accepting, the queue drains
//! every admitted request, then workers exit.

use crate::error::ServeError;
use crate::http::{Request, RequestParser, Response};
use crate::pool::WorkerPool;
use crate::router;
use crate::service::Service;
use crowdnet_chaos::{Conn, RealTcp, Transport};
use crowdnet_telemetry::{Counter, Telemetry};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Front-end knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Requests allowed to wait beyond the executing ones; the shed
    /// threshold.
    pub queue_capacity: usize,
    /// Deadline applied when a request carries no `X-Deadline-Ms`.
    /// `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Advertised `Retry-After` on shed responses.
    pub retry_after_secs: u64,
    /// Socket read timeout while a request is mid-flight (bytes of it
    /// have arrived but it is not complete).
    pub read_timeout_ms: u64,
    /// Read timeout while a connection is *between* requests — a
    /// keep-alive client holding a worker slot without sending anything.
    /// Expiry closes the connection and counts under
    /// `serve.http.idle_closes`.
    pub idle_timeout_ms: u64,
    /// Requests a keep-alive connection may serve before the server
    /// closes it anyway — a reused connection occupies its worker, so the
    /// bound caps how long one client can hold a pool slot.
    pub max_requests_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: None,
            retry_after_secs: 1,
            read_timeout_ms: 5_000,
            idle_timeout_ms: 10_000,
            max_requests_per_connection: 64,
        }
    }
}

/// Anything the server front end can execute a request against: the
/// single-store [`Service`], or a scatter-gather router fanning out over
/// shards. The front end owns admission control and deadlines; the
/// handler owns routing, caching and response rendering.
pub trait RequestHandler: Send + Sync {
    /// Answer one request. Must not panic; errors are rendered as
    /// status-coded responses.
    fn handle(&self, req: &Request) -> Response;
}

impl RequestHandler for Service {
    fn handle(&self, req: &Request) -> Response {
        Service::handle(self, req)
    }
}

/// Admission-controlled request executor wrapping a [`RequestHandler`].
pub struct Server {
    handler: Arc<dyn RequestHandler>,
    /// Present only for the classic single-store path; scatter-gather
    /// handlers run without one.
    service: Option<Arc<Service>>,
    telemetry: Telemetry,
    pool: WorkerPool,
    cfg: ServerConfig,
    shed: Counter,
    deadline_exceeded: Counter,
    keepalive_reuses: Counter,
    idle_closes: Counter,
}

impl Server {
    /// Spawn the worker pool around `service`.
    pub fn new(service: Arc<Service>, cfg: ServerConfig) -> Server {
        let telemetry = service.telemetry().clone();
        let mut server = Server::with_handler(Arc::clone(&service) as _, telemetry, cfg);
        server.service = Some(service);
        server
    }

    /// Spawn the worker pool around an arbitrary handler (e.g. a sharded
    /// scatter-gather router). The telemetry handle supplies the deadline
    /// clock and the shed/deadline counters.
    pub fn with_handler(
        handler: Arc<dyn RequestHandler>,
        telemetry: Telemetry,
        cfg: ServerConfig,
    ) -> Server {
        Server {
            pool: WorkerPool::new(cfg.workers, cfg.queue_capacity, &telemetry),
            shed: telemetry.counter("serve.shed"),
            deadline_exceeded: telemetry.counter("serve.deadline_exceeded"),
            keepalive_reuses: telemetry.counter("serve.keepalive.reuses"),
            idle_closes: telemetry.counter("serve.http.idle_closes"),
            handler,
            service: None,
            telemetry,
            cfg,
        }
    }

    /// The wrapped service, when the server fronts one directly.
    pub fn service(&self) -> Option<&Arc<Service>> {
        self.service.as_ref()
    }

    /// The telemetry handle driving deadlines and front-end counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Jobs admitted but not yet finished (observability for tests).
    pub fn queue_depth(&self) -> usize {
        self.pool.depth()
    }

    /// Absolute deadline (clock ms) for a request arriving now.
    fn deadline_for(&self, req: &Request) -> Option<u64> {
        let patience = match req.header("x-deadline-ms") {
            Some(raw) => raw.parse::<u64>().ok(),
            None => self.cfg.default_deadline_ms,
        }?;
        Some(self.telemetry.now_ms().saturating_add(patience))
    }

    /// Deadline check + service dispatch: the worker-side half of every
    /// request, TCP or in-process.
    fn execute(&self, req: &Request, deadline: Option<u64>) -> Response {
        if let Some(d) = deadline {
            let now = self.telemetry.now_ms();
            if now > d {
                self.deadline_exceeded.inc();
                return router::error_response(&ServeError::DeadlineExceeded {
                    deadline_ms: d,
                    now_ms: now,
                });
            }
        }
        self.handler.handle(req)
    }

    /// The shed response admission control answers with.
    fn shed_response(&self) -> Response {
        self.shed.inc();
        router::error_response(&ServeError::Shed {
            retry_after_secs: self.cfg.retry_after_secs,
        })
    }

    /// Serve one request through admission control, in-process: queue it,
    /// block until a worker answers. Returns `503` immediately when the
    /// queue is full — this call never waits on a full queue.
    pub fn call(self: &Arc<Self>, req: Request) -> Response {
        let deadline = self.deadline_for(&req);
        let (reply_tx, reply_rx) = sync_channel::<Response>(1);
        let server = Arc::clone(self);
        let job = Box::new(move || {
            let response = server.execute(&req, deadline);
            // The caller may have given up; a dead receiver is fine.
            let _ = reply_tx.send(response);
        });
        if self.pool.try_submit(job).is_err() {
            return self.shed_response();
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| router::error_response(&ServeError::ShuttingDown))
    }

    /// Stop admitting, drain every queued request, join workers.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

/// A running loopback TCP front end.
pub struct TcpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    server: Arc<Server>,
}

impl TcpHandle {
    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain admitted connections,
    /// join everything.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection (through
        // the transport seam: the front end dials no raw sockets).
        let _ = RealTcp.connect(self.addr, std::time::Duration::from_millis(250));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.server.shutdown();
    }
}

/// Bind the TCP front end on loopback (`port` 0 picks a free port) and
/// start accepting. Each accepted connection is one job in the bounded
/// queue; when the queue is full the accept thread writes the `503` shed
/// response inline and closes — accepting never blocks on the pool.
pub fn bind(server: Arc<Server>, port: u16) -> Result<TcpHandle, ServeError> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_server = Arc::clone(&server);
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || loop {
            let (stream, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(_) => {
                    if accept_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
            };
            if accept_stop.load(Ordering::SeqCst) {
                return; // the poke connection, or late arrivals while draining
            }
            let conn_server = Arc::clone(&accept_server);
            let admitted_ms = conn_server.telemetry.now_ms();
            // Responses are written head-then-body; Nagle would hold the
            // tail write hostage to the client's delayed ACK on keep-alive
            // connections. Done here because past this point the stream is
            // an abstract `Conn` with no socket options.
            let _ = stream.set_nodelay(true);
            // A dup of the socket, kept out of the job so a shed decision
            // can still answer the client.
            let shed_stream = stream.try_clone().ok();
            let job = Box::new(move || handle_connection(&conn_server, stream, admitted_ms));
            if accept_server.pool.try_submit(job).is_err() {
                // Shed inline: the queue is full and this thread must get
                // back to accept() immediately.
                if let Some(mut stream) = shed_stream {
                    let response = accept_server.shed_response();
                    write_response(&mut stream, &response);
                }
            }
        })
        .map_err(ServeError::Io)?;
    Ok(TcpHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        server,
    })
}

/// One connection: parse requests, answer them. A connection closes after
/// its first response unless the client asked for `Connection: keep-alive`,
/// in which case it may serve up to `max_requests_per_connection` requests
/// before the server closes it anyway (the connection holds a worker slot
/// for its whole life, so reuse is bounded, never open-ended).
///
/// Reads run under two budgets: `read_timeout_ms` while a request is
/// mid-flight, `idle_timeout_ms` while the connection is between requests
/// — an idle keep-alive client occupies a worker, so idleness is shed on
/// its own (longer) clock and counted under `serve.http.idle_closes`.
///
/// Generic over [`Conn`] so chaos drills can drive the exact production
/// loop through an injected transport; the accept loop instantiates it
/// with a plain `TcpStream`.
fn handle_connection<C: Conn>(server: &Arc<Server>, mut stream: C, admitted_ms: u64) {
    let read_budget = std::time::Duration::from_millis(server.cfg.read_timeout_ms.max(1));
    let idle_budget = std::time::Duration::from_millis(server.cfg.idle_timeout_ms.max(1));
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 4096];
    let max_requests = server.cfg.max_requests_per_connection.max(1);
    let mut served = 0usize;
    // Tracks the budget currently armed on the socket so switching is a
    // syscall only when idleness actually flips.
    let mut armed_idle: Option<bool> = None;
    loop {
        let request = loop {
            match parser.poll() {
                Ok(Some(req)) => break req,
                Ok(None) => {}
                Err(e) => {
                    write_response(&mut stream, &Response::error(e.status(), &e.to_string()));
                    return;
                }
            }
            let idle = parser.is_idle();
            if armed_idle != Some(idle) {
                let budget = if idle { idle_budget } else { read_budget };
                let _ = stream.set_read_timeout(Some(budget));
                armed_idle = Some(idle);
            }
            match stream.read(&mut buf) {
                Ok(0) => return, // client went away between/mid requests
                Ok(n) => parser.feed(&buf[..n]),
                Err(e) => {
                    // A timeout with no request in flight is an idle
                    // keep-alive client (or a connect-and-say-nothing one)
                    // being shed; mid-request stalls and resets close
                    // silently as before.
                    if idle
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        )
                    {
                        server.idle_closes.inc();
                    }
                    return;
                }
            }
        };
        if served > 0 {
            server.keepalive_reuses.inc();
        }
        // The deadline countdown starts when the request could first be
        // acted on: admission for the first request (queue time counts),
        // parse completion for keep-alive follow-ups.
        let patience_from = if served == 0 {
            admitted_ms
        } else {
            server.telemetry.now_ms()
        };
        let deadline = req_patience(server, &request)
            .map(|p| patience_from.saturating_add(p));
        served += 1;
        let keep_alive = served < max_requests && wants_keep_alive(&request);
        let response = server.execute(&request, deadline);
        let _ = stream.write_all(&response.encode_with(keep_alive));
        let _ = stream.flush();
        if !keep_alive {
            return;
        }
    }
}

/// Keep-alive is strictly opt-in: only an explicit `Connection: keep-alive`
/// (any token in a comma-separated list) reuses the connection. HTTP/1.1's
/// default-persistent rule is deliberately not honored — existing clients
/// of this loopback server read to EOF.
fn wants_keep_alive(req: &Request) -> bool {
    req.header("connection").is_some_and(|v| {
        v.split(',')
            .any(|t| t.trim().eq_ignore_ascii_case("keep-alive"))
    })
}

fn req_patience(server: &Arc<Server>, req: &Request) -> Option<u64> {
    match req.header("x-deadline-ms") {
        Some(raw) => raw.parse::<u64>().ok(),
        None => server.cfg.default_deadline_ms,
    }
}

fn write_response<C: Conn>(stream: &mut C, response: &Response) {
    let _ = stream.write_all(&response.encode());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests::seeded_service;
    use crowdnet_json::Value;
    use std::io::Read;
    use std::net::TcpStream;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    fn server(cfg: ServerConfig) -> Arc<Server> {
        Arc::new(Server::new(Arc::new(seeded_service()), cfg))
    }

    /// A job that parks a worker until told to continue.
    fn block_one_worker(server: &Arc<Server>) -> (mpsc::SyncSender<()>, mpsc::Receiver<()>) {
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(0);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Submit directly so the blocking happens inside a worker.
        let _ = server.pool.try_submit(Box::new(move || {
            started_tx.send(()).ok();
            release_rx.recv().ok();
        }));
        (release_tx, started_rx)
    }

    #[test]
    fn in_process_call_answers() {
        let s = server(ServerConfig::default());
        let resp = s.call(Request::get("/healthz"));
        assert_eq!(resp.status, 200);
        let body = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(body.get("ok"), Some(&Value::Bool(true)));
        s.shutdown();
    }

    #[test]
    fn burst_beyond_queue_sheds_503_and_recovers() {
        let s = server(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let (release, started) = block_one_worker(&s);
        started.recv().unwrap();
        // Fill the queue from threads (call() blocks on its reply).
        let shed_count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                let shed_count = Arc::clone(&shed_count);
                scope.spawn(move |_| {
                    let resp = s.call(Request::get("/healthz"));
                    if resp.status == 503 {
                        shed_count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert!(resp
                            .headers
                            .iter()
                            .any(|(k, _)| k.eq_ignore_ascii_case("retry-after")));
                    } else {
                        assert_eq!(resp.status, 200);
                    }
                });
                // Give each call a moment to enqueue or shed so at least
                // some arrive while the queue is saturated.
                std::thread::sleep(Duration::from_millis(5));
            }
            // Unblock after the burst: queued calls finish as 200s.
            release.send(()).unwrap();
        })
        .unwrap();
        let shed = shed_count.load(std::sync::atomic::Ordering::SeqCst);
        assert!(shed >= 1, "burst should shed at least once");
        assert!(shed < 8, "some requests must be admitted");
        assert_eq!(s.telemetry().counter("serve.shed").value(), shed as u64);
        s.shutdown();
    }

    #[test]
    fn deadline_exceeded_while_queued_is_503() {
        let svc = Arc::new(seeded_service());
        let ticks = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&ticks);
        svc.telemetry().bind_clock(Arc::new(move || src.load(Ordering::SeqCst)));
        let s = Arc::new(Server::new(
            svc,
            ServerConfig {
                workers: 1,
                queue_capacity: 4,
                ..ServerConfig::default()
            },
        ));
        let (release, started) = block_one_worker(&s);
        started.recv().unwrap();
        // Queue a request with 10ms of patience, then move the clock past
        // it before the worker frees up.
        let caller = Arc::clone(&s);
        let handle = std::thread::spawn(move || {
            caller.call(Request {
                method: "GET".into(),
                target: "/stats".into(),
                version: "HTTP/1.1".into(),
                headers: vec![("X-Deadline-Ms".into(), "10".into())],
                body: Vec::new(),
            })
        });
        // Wait until the request is queued behind the blocker.
        while s.queue_depth() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        ticks.store(50, Ordering::SeqCst);
        release.send(()).unwrap();
        let resp = handle.join().unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(s.telemetry().counter("serve.deadline_exceeded").value(), 1);
        s.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        let s = server(ServerConfig::default());
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut wire = String::new();
        stream.read_to_string(&mut wire).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK"), "got: {wire}");
        assert!(wire.contains("\"ok\":true"));
        handle.shutdown();
    }

    /// Read exactly one response off a keep-alive connection: head up to
    /// the blank line, then `Content-Length` body bytes.
    fn read_one_response(stream: &mut TcpStream) -> String {
        let mut bytes = Vec::new();
        let mut one = [0u8; 1];
        while !bytes.ends_with(b"\r\n\r\n") {
            match Read::read(stream, &mut one) {
                Ok(1) => bytes.push(one[0]),
                _ => panic!("connection closed mid-head: {:?}", String::from_utf8_lossy(&bytes)),
            }
        }
        let head = String::from_utf8(bytes.clone()).unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(|v| v.trim().parse().unwrap()))
            .expect("response without content-length");
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).unwrap();
        head + &String::from_utf8_lossy(&body)
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let s = server(ServerConfig::default());
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        for i in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let wire = read_one_response(&mut stream);
            assert!(wire.starts_with("HTTP/1.1 200"), "request {i} got: {wire}");
            assert!(
                wire.contains("Connection: keep-alive"),
                "request {i} not kept alive: {wire}"
            );
        }
        // Without the opt-in header the connection closes after the reply.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let wire = read_one_response(&mut stream);
        assert!(wire.contains("Connection: close"), "got: {wire}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "bytes after close: {rest:?}");
        assert_eq!(s.telemetry().counter("serve.keepalive.reuses").value(), 3);
        handle.shutdown();
    }

    #[test]
    fn keep_alive_connection_is_bounded() {
        let s = server(ServerConfig {
            max_requests_per_connection: 2,
            ..ServerConfig::default()
        });
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let first = read_one_response(&mut stream);
        assert!(first.contains("Connection: keep-alive"), "got: {first}");
        // The second (= max) request is answered with close and the
        // connection ends, opt-in header notwithstanding.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let second = read_one_response(&mut stream);
        assert!(second.contains("Connection: close"), "got: {second}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server exceeded the per-connection bound");
        handle.shutdown();
    }

    #[test]
    fn idle_keep_alive_connection_is_closed_and_counted() {
        let s = server(ServerConfig {
            idle_timeout_ms: 60,
            ..ServerConfig::default()
        });
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // One real request keeps the connection open...
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let wire = read_one_response(&mut stream);
        assert!(wire.contains("Connection: keep-alive"), "got: {wire}");
        // ...then the client goes silent. The server must shed the idle
        // connection (EOF to us) instead of parking a worker on it.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "unexpected bytes on idle close: {rest:?}");
        assert_eq!(s.telemetry().counter("serve.http.idle_closes").value(), 1);
        handle.shutdown();
    }

    #[test]
    fn mid_request_stall_closes_without_counting_as_idle() {
        let s = server(ServerConfig {
            read_timeout_ms: 60,
            idle_timeout_ms: 10_000,
            ..ServerConfig::default()
        });
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Half a request line, then silence: this is a mid-request stall,
        // which closes on the (short) read budget but is not idleness.
        stream.write_all(b"GET /heal").unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "got a response to half a request: {rest:?}");
        assert_eq!(s.telemetry().counter("serve.http.idle_closes").value(), 0);
        handle.shutdown();
    }

    #[test]
    fn tcp_malformed_request_gets_status_not_panic() {
        let s = server(ServerConfig::default());
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut wire = String::new();
        stream.read_to_string(&mut wire).unwrap();
        assert!(wire.starts_with("HTTP/1.1 400"), "got: {wire}");
        // Server still serves afterwards.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut ok = String::new();
        stream.read_to_string(&mut ok).unwrap();
        assert!(ok.starts_with("HTTP/1.1 200"));
        handle.shutdown();
    }

    #[test]
    fn tcp_burst_sheds_and_never_hangs() {
        let s = server(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        });
        let (release, started) = block_one_worker(&s);
        started.recv().unwrap();
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let addr = handle.addr();
        // With the lone worker blocked, connections pile into the queue
        // (capacity 1); the rest must be shed with 503, never hang.
        let mut statuses = Vec::new();
        for _ in 0..6 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .unwrap();
            let mut wire = Vec::new();
            // Shed responses arrive immediately; queued ones only after
            // release — read in a thread so a slow one can't wedge the loop.
            let reader = std::thread::spawn(move || {
                let _ = stream.read_to_end(&mut wire);
                wire
            });
            match reader.join() {
                Ok(w) if !w.is_empty() => {
                    let line = String::from_utf8_lossy(&w[..16.min(w.len())]).to_string();
                    statuses.push(line);
                    // First shed seen → stop hammering.
                    if statuses.last().is_some_and(|l| l.contains("503")) {
                        break;
                    }
                }
                _ => statuses.push("<none>".into()),
            }
        }
        assert!(
            statuses.iter().any(|l| l.contains("503")),
            "burst never shed: {statuses:?}"
        );
        release.send(()).unwrap();
        handle.shutdown();
        assert!(s.telemetry().counter("serve.shed").value() >= 1);
    }

    #[test]
    fn shutdown_drains_inflight_tcp_requests() {
        let s = server(ServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        });
        let handle = bind(Arc::clone(&s), 0).unwrap();
        let addr = handle.addr();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).ok()?;
                    stream.write_all(b"GET /stats HTTP/1.1\r\n\r\n").ok()?;
                    let mut wire = String::new();
                    stream.read_to_string(&mut wire).ok()?;
                    Some(wire)
                })
            })
            .collect();
        // Give the clients a moment to be admitted, then shut down.
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown();
        for c in clients {
            if let Some(wire) = c.join().unwrap() {
                assert!(
                    wire.starts_with("HTTP/1.1 200") || wire.starts_with("HTTP/1.1 503"),
                    "got: {wire}"
                );
            }
        }
    }
}
