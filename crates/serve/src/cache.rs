//! Sharded in-memory result cache with byte-budgeted LRU-approximate
//! eviction and a read-mostly hit path.
//!
//! Keys are canonical request strings (`"GET /stats"`); values are fully
//! rendered [`Response`]s. Every entry is stamped with the store's content
//! version at the time it was computed — a lookup under a newer version
//! treats the entry as absent and removes it, so **a re-crawl can never
//! serve stale results** (DESIGN.md §7).
//!
//! Shards are independent `parking_lot` RwLocks selected by FNV-1a of the
//! key. The hot path — a hit — takes only the *read* lock: recency is
//! recorded by storing a global atomic tick into the entry's
//! `last_access`, not by relinking the LRU list (which would need the
//! write lock). BENCH_serve_latency.json showed the previous
//! mutex-per-shard design inverting worker scaling (~70k rps at 1 worker
//! down to ~50k at 4–8) because every hit serialized on the shard mutex;
//! with shared read locks, concurrent hits on the same shard no longer
//! contend.
//!
//! Eviction is CLOCK-style second chance: entries are linked in insertion
//! order, and the evictor walks from the tail; an entry whose
//! `last_access` moved past the tick it was last linked at has been hit
//! since — it is relinked to the front (one second chance per resident
//! entry per eviction pass) instead of evicted. Misses, inserts and
//! evictions take the write lock as before.
//!
//! The list is intrusive: entries live in a slab (`Vec<Option<Entry>>`
//! plus a free list) and carry `prev`/`next` slab indices, so relinking
//! and eviction are O(1) with no per-operation allocation.

use crate::http::Response;
use crowdnet_telemetry::{Counter, Telemetry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// "Null pointer" of the intrusive list.
const NIL: usize = usize::MAX;
/// Accounting overhead charged per entry on top of key + body bytes
/// (slab slot, map entry, headers).
const ENTRY_OVERHEAD: usize = 128;

/// Cache sizing.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total byte budget across all shards.
    pub capacity_bytes: usize,
    /// Shard count (rounded up to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 16 * 1024 * 1024,
            shards: 8,
        }
    }
}

/// Point-in-time cache occupancy, summed over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Charged bytes (key + body + [`ENTRY_OVERHEAD`] per entry).
    pub bytes: usize,
    /// Total byte budget.
    pub capacity_bytes: usize,
}

struct Entry {
    key: String,
    version: u64,
    value: Response,
    cost: usize,
    /// Global tick when the entry was last (re-)linked into the list.
    linked_tick: u64,
    /// Global tick of the most recent hit; written under the *read* lock,
    /// which is why it is atomic. `> linked_tick` means "hit since linked"
    /// — the CLOCK reference bit.
    last_access: AtomicU64,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<String, usize>,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Most-recently-linked slab index.
    head: usize,
    /// Eviction candidate end of the list.
    tail: usize,
    bytes: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity,
        }
    }

    fn slot(&self, idx: usize) -> Option<&Entry> {
        self.slab.get(idx).and_then(Option::as_ref)
    }

    fn slot_mut(&mut self, idx: usize) -> Option<&mut Entry> {
        self.slab.get_mut(idx).and_then(Option::as_mut)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = match self.slot(idx) {
            Some(e) => (e.prev, e.next),
            None => return,
        };
        match prev {
            NIL => self.head = next,
            p => {
                if let Some(e) = self.slot_mut(p) {
                    e.next = next;
                }
            }
        }
        match next {
            NIL => self.tail = prev,
            n => {
                if let Some(e) = self.slot_mut(n) {
                    e.prev = prev;
                }
            }
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        if let Some(e) = self.slot_mut(idx) {
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            if let Some(e) = self.slot_mut(old_head) {
                e.prev = idx;
            }
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn remove(&mut self, idx: usize) -> Option<Entry> {
        self.unlink(idx);
        let entry = self.slab.get_mut(idx)?.take()?;
        self.map.remove(&entry.key);
        self.bytes -= entry.cost;
        self.free.push(idx);
        Some(entry)
    }

    fn insert(&mut self, entry: Entry) {
        self.bytes += entry.cost;
        let key = entry.key.clone();
        let idx = match self.free.pop().filter(|&i| i < self.slab.len()) {
            Some(i) => {
                if let Some(slot) = self.slab.get_mut(i) {
                    *slot = Some(entry);
                }
                i
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Evict from the tail until under budget; returns evictions
    /// performed. CLOCK second chance: a tail entry hit since it was last
    /// linked is relinked to the front (its reference "bit" consumed by
    /// advancing `linked_tick` to `now_tick`) instead of evicted — at most
    /// once per resident entry per pass, so the sweep always terminates.
    fn evict_to_fit(&mut self, now_tick: u64) -> u64 {
        let mut evicted = 0;
        let mut second_chances = self.map.len();
        while self.bytes > self.capacity && self.tail != NIL {
            let tail = self.tail;
            let touched = self.slot(tail).is_some_and(|e| {
                e.last_access.load(Ordering::Relaxed) > e.linked_tick
            });
            if touched && second_chances > 0 {
                second_chances -= 1;
                self.unlink(tail);
                if let Some(e) = self.slot_mut(tail) {
                    e.linked_tick = now_tick;
                }
                self.push_front(tail);
            } else {
                self.remove(tail);
                evicted += 1;
            }
        }
        evicted
    }
}

/// The sharded, version-stamped result cache.
pub struct ResultCache {
    shards: Vec<parking_lot::RwLock<Shard>>,
    /// Global recency clock; bumped per hit and per insert.
    tick: AtomicU64,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    capacity_bytes: usize,
}

impl ResultCache {
    /// Build with `cfg` sizing; counters register as
    /// `serve.cache.{hit,miss,evict}` on `telemetry`.
    pub fn new(cfg: &CacheConfig, telemetry: &Telemetry) -> ResultCache {
        let shards = cfg.shards.max(1);
        let per_shard = (cfg.capacity_bytes / shards).max(1);
        ResultCache {
            shards: (0..shards)
                .map(|_| parking_lot::RwLock::new(Shard::new(per_shard)))
                .collect(),
            tick: AtomicU64::new(0),
            hits: telemetry.counter("serve.cache.hit"),
            misses: telemetry.counter("serve.cache.miss"),
            evictions: telemetry.counter("serve.cache.evict"),
            capacity_bytes: per_shard * shards,
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        // FNV-1a, the same cheap hash the store uses for partitioning.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up `key` computed at store-content `version`. An entry stamped
    /// with a different version counts as a miss and is dropped on sight.
    /// A hit touches only the shard's read lock.
    pub fn get(&self, key: &str, version: u64) -> Option<Response> {
        let slot = self.shards.get(self.shard_of(key))?;
        {
            let shard = slot.read();
            match shard.map.get(key).and_then(|&i| shard.slot(i)) {
                Some(e) if e.version == version => {
                    let t = self.next_tick();
                    e.last_access.fetch_max(t, Ordering::Relaxed);
                    let value = e.value.clone();
                    drop(shard);
                    self.hits.inc();
                    return Some(value);
                }
                Some(_) => {} // stale: fall through to the write path
                None => {
                    drop(shard);
                    self.misses.inc();
                    return None;
                }
            }
        }
        // Version mismatch: take the write lock to drop the stale entry.
        // Re-check under it — a racing put may have refreshed the entry.
        let mut shard = slot.write();
        if let Some(&idx) = shard.map.get(key) {
            match shard.slot(idx) {
                Some(e) if e.version == version => {
                    let t = self.next_tick();
                    e.last_access.fetch_max(t, Ordering::Relaxed);
                    let value = e.value.clone();
                    drop(shard);
                    self.hits.inc();
                    return Some(value);
                }
                _ => {
                    shard.remove(idx);
                }
            }
        }
        drop(shard);
        self.misses.inc();
        None
    }

    /// Insert `key → value` stamped with `version`. Values whose charged
    /// cost exceeds a whole shard's budget are not cached at all (they
    /// would evict everything and then be evicted themselves).
    pub fn put(&self, key: &str, version: u64, value: Response) {
        let cost = key.len() + value.body.len() + ENTRY_OVERHEAD;
        let Some(slot) = self.shards.get(self.shard_of(key)) else {
            return;
        };
        let mut shard = slot.write();
        if cost > shard.capacity {
            return;
        }
        if let Some(&old) = shard.map.get(key) {
            shard.remove(old);
        }
        let now_tick = self.next_tick();
        shard.insert(Entry {
            key: key.to_string(),
            version,
            value,
            cost,
            linked_tick: now_tick,
            last_access: AtomicU64::new(now_tick),
            prev: NIL,
            next: NIL,
        });
        let evicted = shard.evict_to_fit(now_tick);
        drop(shard);
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    /// Occupancy summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for slot in &self.shards {
            let shard = slot.read();
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        CacheStats {
            entries,
            bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(body: &str) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn cache(capacity: usize, shards: usize) -> (ResultCache, Telemetry) {
        let t = Telemetry::new();
        let c = ResultCache::new(
            &CacheConfig {
                capacity_bytes: capacity,
                shards,
            },
            &t,
        );
        (c, t)
    }

    #[test]
    fn get_put_roundtrip_and_counters() {
        let (c, t) = cache(1 << 20, 4);
        assert!(c.get("GET /a", 1).is_none());
        c.put("GET /a", 1, resp("hello"));
        assert_eq!(c.get("GET /a", 1).unwrap().body, b"hello");
        assert_eq!(t.counter("serve.cache.hit").value(), 1);
        assert_eq!(t.counter("serve.cache.miss").value(), 1);
    }

    #[test]
    fn version_mismatch_is_a_miss_and_drops_the_entry() {
        let (c, t) = cache(1 << 20, 1);
        c.put("k", 1, resp("v1"));
        assert!(c.get("k", 2).is_none());
        assert_eq!(c.stats().entries, 0);
        // Even asking for the original version misses now.
        assert!(c.get("k", 1).is_none());
        assert_eq!(t.counter("serve.cache.hit").value(), 0);
        assert_eq!(t.counter("serve.cache.miss").value(), 2);
    }

    #[test]
    fn lru_evicts_least_recent_first() {
        // One shard; room for ~2 entries of this size.
        let (c, t) = cache(2 * (1 + 4 + ENTRY_OVERHEAD), 1);
        c.put("a", 1, resp("aaaa"));
        c.put("b", 1, resp("bbbb"));
        // Touch "a" so "b" is the eviction victim.
        assert!(c.get("a", 1).is_some());
        c.put("c", 1, resp("cccc"));
        assert!(c.get("b", 1).is_none(), "LRU entry should be evicted");
        assert!(c.get("a", 1).is_some());
        assert!(c.get("c", 1).is_some());
        assert_eq!(t.counter("serve.cache.evict").value(), 1);
    }

    #[test]
    fn hits_do_not_take_the_write_lock() {
        // A held read lock would deadlock a hit that needed the write
        // lock; it must not block the read-only hit path.
        let (c, _t) = cache(1 << 20, 1);
        c.put("k", 1, resp("v"));
        let slot = c.shards.first().unwrap();
        let _read_guard = slot.read();
        assert_eq!(c.get("k", 1).unwrap().body, b"v");
    }

    #[test]
    fn second_chance_spares_entries_hit_since_linked() {
        // Room for 3 entries; hit "p" and "q", then overflow: the
        // untouched "r" must be the victim even though it is not the
        // list tail's natural LRU order after relinks.
        let (c, t) = cache(3 * (1 + 2 + ENTRY_OVERHEAD), 1);
        c.put("p", 1, resp("xy"));
        c.put("q", 1, resp("xy"));
        c.put("r", 1, resp("xy"));
        assert!(c.get("p", 1).is_some());
        assert!(c.get("q", 1).is_some());
        c.put("s", 1, resp("xy"));
        assert!(c.get("p", 1).is_some(), "hit entry evicted");
        assert!(c.get("q", 1).is_some(), "hit entry evicted");
        assert!(c.get("s", 1).is_some(), "fresh insert evicted");
        assert!(c.get("r", 1).is_none(), "untouched entry should go first");
        assert_eq!(t.counter("serve.cache.evict").value(), 1);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let (c, _t) = cache(256, 1);
        c.put("big", 1, resp(&"x".repeat(1024)));
        assert_eq!(c.stats().entries, 0);
        assert!(c.get("big", 1).is_none());
    }

    #[test]
    fn overwrite_replaces_in_place() {
        let (c, _t) = cache(1 << 20, 2);
        c.put("k", 1, resp("old"));
        c.put("k", 1, resp("new"));
        assert_eq!(c.get("k", 1).unwrap().body, b"new");
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let (c, _t) = cache(3 * (1 + 2 + ENTRY_OVERHEAD), 1);
        for round in 0..10u64 {
            for k in ["p", "q", "r", "s"] {
                c.put(k, round, resp("xy"));
            }
        }
        let stats = c.stats();
        assert!(stats.entries <= 3);
        assert!(stats.bytes <= stats.capacity_bytes);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (c, _t) = cache(1 << 16, 8);
        let c = std::sync::Arc::new(c);
        crossbeam::thread::scope(|s| {
            for t in 0..8u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move |_| {
                    for i in 0..500u64 {
                        let key = format!("k{}", (t * 7 + i) % 50);
                        if c.get(&key, i % 3).is_none() {
                            c.put(&key, i % 3, resp("payload"));
                        }
                    }
                });
            }
        })
        .unwrap();
        let stats = c.stats();
        assert!(stats.bytes <= stats.capacity_bytes);
    }
}
