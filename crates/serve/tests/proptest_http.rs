//! Property tests for the HTTP/1.1 request parser: arbitrary bytes in
//! arbitrary split patterns must never panic, valid requests must parse
//! identically however the stream is chunked, and every size limit must
//! hold as a typed rejection (`431`/`413`), not a hang or a crash.

use crowdnet_serve::http::{
    HttpError, Request, RequestParser, MAX_BODY_BYTES, MAX_HEADERS, MAX_REQUEST_LINE,
};
use proptest::prelude::*;

/// Feed `wire` in the chunk sizes dictated by `splits` (cycled), polling
/// after every feed like the real connection loop does.
fn parse_chunked(wire: &[u8], splits: &[usize]) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new();
    let mut offset = 0;
    let mut split_idx = 0;
    while offset < wire.len() {
        let step = splits
            .get(split_idx % splits.len())
            .copied()
            .unwrap_or(1)
            .clamp(1, wire.len() - offset);
        split_idx += 1;
        parser.feed(&wire[offset..offset + step]);
        offset += step;
        match parser.poll() {
            Ok(Some(req)) => return Ok(Some(req)),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
    parser.poll()
}

/// A syntactically valid request generated from structured parts.
fn valid_request() -> impl Strategy<Value = (String, Vec<u8>)> {
    (
        "[A-Z]{3,7}",
        "/[a-z0-9/]{0,30}",
        proptest::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,10}", "[ -~]{0,20}"), 0..6),
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(method, path, headers, body)| {
            let mut wire = format!("{method} {path} HTTP/1.1\r\n");
            for (name, value) in &headers {
                wire.push_str(&format!("{name}: {value}\r\n"));
            }
            wire.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
            let mut bytes = wire.into_bytes();
            bytes.extend_from_slice(&body);
            (format!("{method} {path}"), bytes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz: arbitrary byte soup, arbitrary chunking — the parser returns
    /// a `Result` in all cases and never panics.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let _ = parse_chunked(&bytes, &splits);
    }

    /// Fuzz biased toward almost-valid requests: mutate one byte of a
    /// valid wire image. Still a `Result`, never a panic.
    #[test]
    fn mutated_requests_never_panic(
        (_, mut wire) in valid_request(),
        flip_at in any::<u32>(),
        flip_to in any::<u8>(),
        splits in proptest::collection::vec(1usize..16, 1..4),
    ) {
        if !wire.is_empty() {
            let at = flip_at as usize % wire.len();
            wire[at] = flip_to;
        }
        let _ = parse_chunked(&wire, &splits);
    }

    /// Valid requests parse to the same result under every chunking.
    #[test]
    fn split_invariance(
        (label, wire) in valid_request(),
        splits in proptest::collection::vec(1usize..48, 1..6),
    ) {
        let whole = parse_chunked(&wire, &[wire.len().max(1)]);
        let chunked = parse_chunked(&wire, &splits);
        prop_assert_eq!(&whole, &chunked);
        let req = whole.expect("valid request must parse").expect("must be complete");
        prop_assert_eq!(format!("{} {}", req.method, req.target), label);
    }

    /// Oversized request lines are rejected with 431 at any chunking, even
    /// when the line never terminates.
    #[test]
    fn oversized_request_line_is_431(
        extra in 1usize..4096,
        splits in proptest::collection::vec(1usize..512, 1..4),
        terminated in any::<bool>(),
    ) {
        let mut wire = b"GET /".to_vec();
        wire.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE + extra));
        if terminated {
            wire.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        }
        let err = parse_chunked(&wire, &splits).expect_err("must reject");
        prop_assert_eq!(err.status(), 431);
    }

    /// Header floods are rejected with 431, never buffered unboundedly.
    #[test]
    fn header_flood_is_431(
        count in (MAX_HEADERS + 1)..(MAX_HEADERS + 64),
        splits in proptest::collection::vec(1usize..256, 1..4),
    ) {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..count {
            wire.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        let err = parse_chunked(&wire, &splits).expect_err("must reject");
        prop_assert_eq!(err.status(), 431);
    }

    /// Bodies above the limit are refused by declared length (413) before
    /// any body byte needs to arrive.
    #[test]
    fn oversized_body_is_413(extra in 1u64..1_000_000) {
        let wire = format!(
            "POST /sql HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES as u64 + extra
        );
        let err = parse_chunked(wire.as_bytes(), &[7]).expect_err("must reject");
        prop_assert_eq!(err.status(), 413);
    }
}
