//! The transport seam: every outbound socket on the serving path is a
//! [`Conn`] produced by a [`Transport`], so fault injection is a
//! constructor argument instead of a test-only network namespace.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One established connection. The surface is exactly what the shard
/// client and the serve front end need — byte I/O plus deadline budgets —
/// so a fault-injecting wrapper can interpose on every operation.
pub trait Conn: Send {
    /// Read up to `buf.len()` bytes; `Ok(0)` means orderly close.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write the whole buffer or fail.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush buffered bytes to the peer.
    fn flush(&mut self) -> io::Result<()>;
    /// Budget for each subsequent read.
    fn set_read_timeout(&mut self, budget: Option<Duration>) -> io::Result<()>;
    /// Budget for each subsequent write.
    fn set_write_timeout(&mut self, budget: Option<Duration>) -> io::Result<()>;
}

/// Dials connections. Implementations: [`RealTcp`] (production) and
/// [`FaultNet`](crate::FaultNet) (seeded fault injection around an inner
/// transport).
pub trait Transport: Send + Sync {
    /// Connect to `addr` within `timeout`.
    fn connect(&self, addr: SocketAddr, timeout: Duration) -> io::Result<Box<dyn Conn>>;
}

impl Conn for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        io::Write::flush(self)
    }

    fn set_read_timeout(&mut self, budget: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, budget)
    }

    fn set_write_timeout(&mut self, budget: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, budget)
    }
}

/// The production transport: plain loopback TCP.
pub struct RealTcp;

impl Transport for RealTcp {
    fn connect(&self, addr: SocketAddr, timeout: Duration) -> io::Result<Box<dyn Conn>> {
        let conn = TcpStream::connect_timeout(&addr, timeout.max(Duration::from_millis(1)))?;
        // Leg requests go out as head + frame in two writes; with Nagle
        // on, the second write stalls behind the peer's delayed ACK
        // (~40ms per exchange on loopback), which would dominate every
        // leg budget.
        conn.set_nodelay(true)?;
        Ok(Box::new(conn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    #[test]
    fn real_tcp_round_trips_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            Read::read_exact(&mut sock, &mut buf).unwrap();
            Write::write_all(&mut sock, &buf).unwrap();
        });
        let mut conn = RealTcp.connect(addr, Duration::from_millis(500)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        conn.write_all(b"hello").unwrap();
        conn.flush().unwrap();
        let mut back = [0u8; 5];
        let mut got = 0;
        while got < back.len() {
            let n = conn.read(&mut back[got..]).unwrap();
            assert!(n > 0, "peer closed early");
            got += n;
        }
        assert_eq!(&back, b"hello");
        echo.join().unwrap();
    }

    #[test]
    fn real_tcp_connect_to_dead_port_errors() {
        // Bind then drop: the port existed a moment ago, nothing listens now.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = RealTcp.connect(addr, Duration::from_millis(200));
        assert!(err.is_err(), "connect to a dropped listener succeeded");
    }
}
