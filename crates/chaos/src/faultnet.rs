//! [`FaultNet`]: deterministic network-fault injection behind the
//! [`Transport`] seam — the network twin of the store's `FailpointFs`.
//!
//! Faults fire on a pure `(seed, op-counter)` schedule: an xorshift64*
//! stream (seeded exactly like `FailpointFs`) is advanced once per
//! *connect attempt* and once per *exchange* (the first write after a
//! connect or after a read — one request/response round on the wire).
//! The roll decides the connection's or exchange's **fate** up front, so
//! the number of raw `read` calls a response happens to need — which
//! depends on kernel buffering and is not deterministic — never shifts
//! the schedule. Two `FaultNet`s built from equal plans misbehave
//! identically, which is what lets a drill assert byte-identical replay
//! at the same seed.
//!
//! One-way partitions are structural, not probabilistic: while a
//! [`Partition`] is set it overrides the schedule without consuming
//! rolls, so healing a partition leaves the stream exactly where an
//! unpartitioned run would have it.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crowdnet_telemetry::{Counter, Telemetry};
use parking_lot::Mutex;

use crate::transport::{Conn, Transport};

/// Ceiling on any simulated stall (black holes, partition drops): the
/// injected stall honors the caller's own read/write budget but never
/// sleeps longer than this, so a drill with a generous budget stays fast.
const HOLE_CAP_MS: u64 = 2_000;

/// Fallback stall when the caller never set a timeout on the faulted op.
const HOLE_DEFAULT_MS: u64 = 100;

/// Which side of a one-way partition is cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// No partition: the probabilistic schedule is in charge.
    None,
    /// Client → server cut: connects and request writes black-hole.
    /// The far side never hears from us.
    DropRequests,
    /// Server → client cut: requests arrive and are processed, the
    /// responses never come back — the gray half of an asymmetric
    /// partition, indistinguishable from a slow shard until a budget
    /// expires.
    DropResponses,
}

/// Which faults a [`FaultNet`] injects, and how often.
///
/// Probabilities are per sample point — `connect_refused` and
/// `connect_black_hole` per connect attempt, the rest per exchange —
/// drawn from an xorshift stream seeded by `seed`: two plans with equal
/// fields produce identical schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a connect attempt is refused outright.
    pub connect_refused: f64,
    /// Probability a connect attempt black-holes until its budget expires.
    pub connect_black_hole: f64,
    /// Probability an exchange's request is cut mid-frame by a reset:
    /// a strict prefix lands, then the write errors.
    pub reset: f64,
    /// Probability an exchange's request is silently truncated: a strict
    /// prefix lands, the tail vanishes, the write *reports success* —
    /// the failure only surfaces when the response never arrives.
    pub truncate_write: f64,
    /// Probability an exchange's response arrives one byte per read.
    pub drip_read: f64,
    /// Probability an exchange's response is swallowed: the request is
    /// delivered and processed, every read stalls to its budget.
    pub black_hole: f64,
    /// Probability an exchange is delayed by `delay_ms` before the
    /// request goes out.
    pub delay: f64,
    /// Added latency per delayed exchange.
    pub delay_ms: u64,
    /// Structural one-way partition overriding the schedule.
    pub partition: Partition,
}

impl NetFaultPlan {
    /// A plan that injects nothing (useful as a base to tweak).
    pub fn none(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            connect_refused: 0.0,
            connect_black_hole: 0.0,
            reset: 0.0,
            truncate_write: 0.0,
            drip_read: 0.0,
            black_hole: 0.0,
            delay: 0.0,
            delay_ms: 0,
            partition: Partition::None,
        }
    }

    /// A plan that only applies a one-way partition.
    pub fn partitioned(seed: u64, partition: Partition) -> NetFaultPlan {
        NetFaultPlan {
            partition,
            ..NetFaultPlan::none(seed)
        }
    }
}

/// Counts of every fault actually injected — the ground truth drills
/// print and the `chaos.*` counters are checked against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedNetFaults {
    /// Connect attempts that reached the schedule.
    pub connects: u64,
    /// Exchanges (request/response rounds) that reached the schedule.
    pub exchanges: u64,
    /// Connects refused outright.
    pub connect_refused: u64,
    /// Connects stalled to their budget.
    pub connect_holes: u64,
    /// Exchanges reset mid-frame.
    pub resets: u64,
    /// Exchanges whose request tail silently vanished.
    pub truncated_writes: u64,
    /// Exchanges served one byte per read.
    pub dripped: u64,
    /// Exchanges whose response was swallowed.
    pub black_holes: u64,
    /// Exchanges delayed by `delay_ms`.
    pub delays: u64,
    /// Operations dropped by a structural one-way partition.
    pub partition_drops: u64,
}

impl InjectedNetFaults {
    /// One deterministic line for drill transcripts.
    pub fn summary(&self) -> String {
        format!(
            "connects={} exchanges={} refused={} connect_holes={} resets={} truncated={} \
             dripped={} black_holes={} delays={} partition_drops={}",
            self.connects,
            self.exchanges,
            self.connect_refused,
            self.connect_holes,
            self.resets,
            self.truncated_writes,
            self.dripped,
            self.black_holes,
            self.delays,
            self.partition_drops,
        )
    }
}

/// Marker in fault errors so drills (and tests) can tell injected faults
/// from real network problems.
pub const NET_FAULT_MARKER: &str = "[faultnet]";

fn fault_err(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("{NET_FAULT_MARKER} {what}"))
}

/// Is this error one a [`FaultNet`] injected (as opposed to a real one)?
pub fn is_injected_net_fault(e: &io::Error) -> bool {
    e.to_string().contains(NET_FAULT_MARKER)
}

/// What the schedule decided for one exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    Clean,
    /// Reset mid-frame; the roll picks the cut point.
    Reset(f64),
    /// Silent truncation; the roll picks the cut point.
    Truncate(f64),
    Drip,
    BlackHole,
    Delay(u64),
    /// Structural partition: requests never leave.
    PartitionWrite,
    /// Structural partition: responses never return.
    PartitionRead,
}

#[derive(Debug, Clone, Copy)]
enum ConnectFate {
    Proceed,
    Refused,
    Hole,
}

struct ChaosState {
    rng: u64,
    ops: u64,
    injected: InjectedNetFaults,
}

/// Plan + mutable schedule state, shared between the [`FaultNet`] and
/// every connection it has dialed (connections consume the same op
/// stream as connect attempts — the link doesn't care who issued the
/// operation).
struct ChaosCore {
    plan: Mutex<NetFaultPlan>,
    state: Mutex<ChaosState>,
}

impl ChaosCore {
    /// Advance the schedule by one sample point; uniform roll in `[0, 1)`.
    fn tick(&self) -> f64 {
        let mut s = self.state.lock();
        s.ops += 1;
        // xorshift64*: cheap, deterministic, good enough for scheduling.
        s.rng ^= s.rng << 13;
        s.rng ^= s.rng >> 7;
        s.rng ^= s.rng << 17;
        (s.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn note(&self, f: impl FnOnce(&mut InjectedNetFaults)) {
        f(&mut self.state.lock().injected)
    }

    /// Deterministic cut point for a truncated/reset request of `len`
    /// bytes: a strict prefix, derived from the same roll that triggered
    /// the fault (re-hashed so it is independent of the threshold
    /// comparison).
    fn cut(roll: f64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let scaled = (roll * 7919.0).fract();
        ((scaled * len as f64) as usize).min(len - 1)
    }

    fn sample_connect(&self) -> ConnectFate {
        let plan = *self.plan.lock();
        if plan.partition == Partition::DropRequests {
            // Structural: no roll consumed, so healing leaves the stream
            // where an unpartitioned run would have it.
            self.note(|i| i.partition_drops += 1);
            return ConnectFate::Hole;
        }
        self.note(|i| i.connects += 1);
        let roll = self.tick();
        if roll < plan.connect_refused {
            ConnectFate::Refused
        } else if roll < plan.connect_refused + plan.connect_black_hole {
            ConnectFate::Hole
        } else {
            ConnectFate::Proceed
        }
    }

    fn sample_exchange(&self) -> Fate {
        let plan = *self.plan.lock();
        match plan.partition {
            Partition::DropRequests => return Fate::PartitionWrite,
            Partition::DropResponses => return Fate::PartitionRead,
            Partition::None => {}
        }
        self.note(|i| i.exchanges += 1);
        let roll = self.tick();
        let mut threshold = plan.reset;
        if roll < threshold {
            return Fate::Reset(roll);
        }
        threshold += plan.truncate_write;
        if roll < threshold {
            return Fate::Truncate(roll);
        }
        threshold += plan.drip_read;
        if roll < threshold {
            return Fate::Drip;
        }
        threshold += plan.black_hole;
        if roll < threshold {
            return Fate::BlackHole;
        }
        threshold += plan.delay;
        if roll < threshold {
            return Fate::Delay(plan.delay_ms);
        }
        Fate::Clean
    }
}

struct ChaosCounters {
    connects: Counter,
    exchanges: Counter,
    refused: Counter,
    connect_holes: Counter,
    resets: Counter,
    truncated: Counter,
    dripped: Counter,
    black_holes: Counter,
    delays: Counter,
    partition_drops: Counter,
}

impl ChaosCounters {
    fn new(telemetry: &Telemetry) -> ChaosCounters {
        ChaosCounters {
            connects: telemetry.counter("chaos.connects"),
            exchanges: telemetry.counter("chaos.exchanges"),
            refused: telemetry.counter("chaos.injected.connect_refused"),
            connect_holes: telemetry.counter("chaos.injected.connect_holes"),
            resets: telemetry.counter("chaos.injected.resets"),
            truncated: telemetry.counter("chaos.injected.truncated_writes"),
            dripped: telemetry.counter("chaos.injected.dripped_reads"),
            black_holes: telemetry.counter("chaos.injected.black_holes"),
            delays: telemetry.counter("chaos.injected.delays"),
            partition_drops: telemetry.counter("chaos.injected.partition_drops"),
        }
    }
}

/// Deterministic fault-injecting [`Transport`] wrapper. See [`NetFaultPlan`].
pub struct FaultNet {
    inner: Arc<dyn Transport>,
    core: Arc<ChaosCore>,
    counters: Arc<ChaosCounters>,
}

impl FaultNet {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn Transport>, plan: NetFaultPlan, telemetry: &Telemetry) -> FaultNet {
        FaultNet {
            inner,
            core: Arc::new(ChaosCore {
                plan: Mutex::new(plan),
                state: Mutex::new(ChaosState {
                    // SplitMix64 scramble so nearby seeds give unrelated
                    // streams; force odd to avoid the all-zero fixpoint.
                    rng: plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                    ops: 0,
                    injected: InjectedNetFaults::default(),
                }),
            }),
            counters: Arc::new(ChaosCounters::new(telemetry)),
        }
    }

    /// Convenience: wrap the real TCP transport.
    pub fn over_real(plan: NetFaultPlan, telemetry: &Telemetry) -> FaultNet {
        FaultNet::new(Arc::new(crate::RealTcp), plan, telemetry)
    }

    /// Swap the plan (a drill moving to its next phase). The schedule
    /// stream restarts from the new plan's seed so each phase replays
    /// identically regardless of how many ops the previous phase burned;
    /// injected-fault counts keep accumulating.
    pub fn set_plan(&self, plan: NetFaultPlan) {
        *self.core.plan.lock() = plan;
        self.core.state.lock().rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    }

    /// Stop injecting anything: the link is whole again.
    pub fn heal(&self) {
        let seed = self.core.plan.lock().seed;
        self.set_plan(NetFaultPlan::none(seed));
    }

    /// The plan currently in force.
    pub fn plan(&self) -> NetFaultPlan {
        *self.core.plan.lock()
    }

    /// Ground truth of every fault injected so far.
    pub fn injected(&self) -> InjectedNetFaults {
        self.core.state.lock().injected
    }

    /// Stall for the faulted operation's own budget (capped).
    fn stall(budget_ms: Option<u64>) {
        let ms = budget_ms.unwrap_or(HOLE_DEFAULT_MS).min(HOLE_CAP_MS);
        std::thread::sleep(Duration::from_millis(ms));
    }
}

impl Transport for FaultNet {
    fn connect(&self, addr: SocketAddr, timeout: Duration) -> io::Result<Box<dyn Conn>> {
        match self.core.sample_connect() {
            ConnectFate::Refused => {
                self.core.note(|i| i.connect_refused += 1);
                self.counters.refused.inc();
                Err(fault_err(io::ErrorKind::ConnectionRefused, "connect refused"))
            }
            ConnectFate::Hole => {
                self.core.note(|i| i.connect_holes += 1);
                self.counters.connect_holes.inc();
                FaultNet::stall(Some((timeout.as_millis() as u64).max(1)));
                Err(fault_err(io::ErrorKind::TimedOut, "connect black-holed"))
            }
            ConnectFate::Proceed => {
                self.counters.connects.inc();
                let inner = self.inner.connect(addr, timeout)?;
                Ok(Box::new(FaultConn {
                    inner,
                    core: Arc::clone(&self.core),
                    counters: Arc::clone(&self.counters),
                    fate: Fate::Clean,
                    needs_fate: true,
                    swallow_writes: false,
                    read_timeout_ms: None,
                    write_timeout_ms: None,
                }))
            }
        }
    }
}

/// One faulted connection: holds the fate the schedule dealt its current
/// exchange and replays it across the exchange's writes and reads.
struct FaultConn {
    inner: Box<dyn Conn>,
    core: Arc<ChaosCore>,
    counters: Arc<ChaosCounters>,
    fate: Fate,
    /// The next write starts a new exchange and must sample a fresh fate.
    needs_fate: bool,
    /// After a silent truncation the rest of the request vanishes too.
    swallow_writes: bool,
    read_timeout_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
}

impl FaultConn {
    fn begin_exchange_if_needed(&mut self) {
        if !self.needs_fate {
            return;
        }
        self.needs_fate = false;
        self.swallow_writes = false;
        self.fate = self.core.sample_exchange();
        self.counters.exchanges.inc();
        if let Fate::Delay(ms) = self.fate {
            self.core.note(|i| i.delays += 1);
            self.counters.delays.inc();
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

impl Conn for FaultConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Any read ends the request half of the exchange: the next write
        // starts a new one.
        self.needs_fate = true;
        match self.fate {
            Fate::BlackHole => {
                self.core.note(|i| i.black_holes += 1);
                self.counters.black_holes.inc();
                FaultNet::stall(self.read_timeout_ms);
                Err(fault_err(io::ErrorKind::TimedOut, "response black-holed"))
            }
            Fate::PartitionRead => {
                self.core.note(|i| i.partition_drops += 1);
                self.counters.partition_drops.inc();
                FaultNet::stall(self.read_timeout_ms);
                Err(fault_err(io::ErrorKind::TimedOut, "response dropped by partition"))
            }
            Fate::Drip => {
                let cap = buf.len().min(1);
                match buf.get_mut(..cap) {
                    Some(slice) => self.inner.read(slice),
                    None => Ok(0),
                }
            }
            _ => self.inner.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.begin_exchange_if_needed();
        if self.swallow_writes {
            return Ok(());
        }
        match self.fate {
            Fate::Reset(roll) => {
                let cut = ChaosCore::cut(roll, buf.len());
                let _ = self.inner.write_all(buf.get(..cut).unwrap_or_default());
                self.core.note(|i| i.resets += 1);
                self.counters.resets.inc();
                Err(fault_err(io::ErrorKind::ConnectionReset, "reset mid-frame"))
            }
            Fate::Truncate(roll) => {
                let cut = ChaosCore::cut(roll, buf.len());
                self.inner.write_all(buf.get(..cut).unwrap_or_default())?;
                self.swallow_writes = true;
                self.core.note(|i| i.truncated_writes += 1);
                self.counters.truncated.inc();
                // The caller sees success; the failure surfaces when the
                // peer, still waiting for the tail, never answers.
                Ok(())
            }
            Fate::PartitionWrite => {
                self.core.note(|i| i.partition_drops += 1);
                self.counters.partition_drops.inc();
                FaultNet::stall(self.write_timeout_ms);
                Err(fault_err(io::ErrorKind::TimedOut, "request dropped by partition"))
            }
            Fate::Drip => {
                self.core.note(|i| i.dripped += 1);
                self.counters.dripped.inc();
                self.inner.write_all(buf)
            }
            _ => self.inner.write_all(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn set_read_timeout(&mut self, budget: Option<Duration>) -> io::Result<()> {
        self.read_timeout_ms = budget.map(|d| (d.as_millis() as u64).max(1));
        self.inner.set_read_timeout(budget)
    }

    fn set_write_timeout(&mut self, budget: Option<Duration>) -> io::Result<()> {
        self.write_timeout_ms = budget.map(|d| (d.as_millis() as u64).max(1));
        self.inner.set_write_timeout(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::RealTcp;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// An echo server that answers each 4-byte request with the same bytes.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut sock, _)) = listener.accept() {
                let mut buf = [0u8; 4];
                loop {
                    match Read::read_exact(&mut sock, &mut buf) {
                        Ok(()) => {
                            if Write::write_all(&mut sock, &buf).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                if buf == *b"stop" {
                    break;
                }
            }
        });
        (addr, handle)
    }

    fn exchange(conn: &mut Box<dyn Conn>, msg: &[u8; 4]) -> io::Result<[u8; 4]> {
        conn.write_all(msg)?;
        conn.flush()?;
        let mut back = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            let n = conn.read(&mut back[got..])?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
            }
            got += n;
        }
        Ok(back)
    }

    fn stop(addr: SocketAddr) {
        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
            let _ = Write::write_all(&mut s, b"stop");
            let mut back = [0u8; 4];
            let _ = Read::read_exact(&mut s, &mut back);
        }
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let (addr, server) = echo_server();
        let t = Telemetry::new();
        let net = FaultNet::over_real(NetFaultPlan::none(7), &t);
        let mut conn = net.connect(addr, Duration::from_millis(500)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        for _ in 0..3 {
            assert_eq!(exchange(&mut conn, b"ping").unwrap(), *b"ping");
        }
        let injected = net.injected();
        assert_eq!(injected.connects, 1);
        assert_eq!(injected.exchanges, 3);
        assert_eq!(
            injected,
            InjectedNetFaults {
                connects: 1,
                exchanges: 3,
                ..InjectedNetFaults::default()
            }
        );
        drop(conn);
        stop(addr);
        server.join().unwrap();
    }

    #[test]
    fn same_seed_same_schedule() {
        // Two FaultNets with equal plans must fire identical fault
        // sequences — the property every drill's replay leans on.
        let run = |seed: u64| -> Vec<String> {
            let (addr, server) = echo_server();
            let t = Telemetry::new();
            let plan = NetFaultPlan {
                reset: 0.3,
                black_hole: 0.2,
                drip_read: 0.2,
                ..NetFaultPlan::none(seed)
            };
            let net = FaultNet::over_real(plan, &t);
            let mut outcomes = Vec::new();
            for _ in 0..12 {
                let mut conn = match net.connect(addr, Duration::from_millis(500)) {
                    Ok(c) => c,
                    Err(e) => {
                        outcomes.push(format!("connect:{}", e.kind() as u8));
                        continue;
                    }
                };
                conn.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
                match exchange(&mut conn, b"ping") {
                    Ok(back) => outcomes.push(format!("ok:{}", String::from_utf8_lossy(&back))),
                    Err(e) => outcomes.push(format!("err:{}", e.kind() as u8)),
                }
            }
            outcomes.push(net.injected().summary());
            stop(addr);
            server.join().unwrap();
            outcomes
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed, different fault schedule");
        assert!(
            a.iter().any(|o| o.starts_with("err:")),
            "plan with 70% fault mass never fired: {a:?}"
        );
    }

    #[test]
    fn drop_responses_is_one_way() {
        let (addr, server) = echo_server();
        let t = Telemetry::new();
        let net = FaultNet::over_real(
            NetFaultPlan::partitioned(3, Partition::DropResponses),
            &t,
        );
        let mut conn = net.connect(addr, Duration::from_millis(500)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        // The request goes through (the echo server will process it);
        // the response never comes back.
        conn.write_all(b"ping").unwrap();
        let err = conn.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(is_injected_net_fault(&err), "not marked injected: {err}");
        assert!(net.injected().partition_drops >= 1);
        // Free the single-threaded echo server for the next connection.
        drop(conn);

        // Heal: the same wrapped transport carries clean exchanges again.
        net.heal();
        let mut conn = net.connect(addr, Duration::from_millis(500)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        assert_eq!(exchange(&mut conn, b"ping").unwrap(), *b"ping");
        drop(conn);
        stop(addr);
        server.join().unwrap();
    }

    #[test]
    fn drop_requests_black_holes_the_connect() {
        let (addr, server) = echo_server();
        let t = Telemetry::new();
        let net = FaultNet::over_real(
            NetFaultPlan::partitioned(3, Partition::DropRequests),
            &t,
        );
        let err = match net.connect(addr, Duration::from_millis(20)) {
            Err(e) => e,
            Ok(_) => panic!("partitioned connect succeeded"),
        };
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(net.injected().partition_drops >= 1);
        stop(addr);
        server.join().unwrap();
    }

    #[test]
    fn truncated_write_reports_success_but_starves_the_peer() {
        let (addr, server) = echo_server();
        let t = Telemetry::new();
        let net = FaultNet::over_real(
            NetFaultPlan {
                truncate_write: 1.0,
                ..NetFaultPlan::none(11)
            },
            &t,
        );
        let mut conn = net.connect(addr, Duration::from_millis(500)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(40))).unwrap();
        // The write "succeeds" — the tail silently vanished.
        conn.write_all(b"ping").unwrap();
        // The echo server never got 4 bytes, so the read times out.
        assert!(conn.read(&mut [0u8; 4]).is_err());
        assert_eq!(net.injected().truncated_writes, 1);
        drop(conn);
        stop(addr);
        server.join().unwrap();
    }
}
