//! `crowdnet-chaos`: the network twin of the store's `FailpointFs`.
//!
//! PR 5 put a `Vfs` seam under the disk so every torn write and crash
//! point became a deterministic, replayable input. This crate does the
//! same for the TCP path the out-of-process shard tier lives on:
//!
//! * [`Transport`] / [`Conn`] — the seam. Everything that dials a
//!   socket on the serving path goes through a `Transport`; the
//!   `transport-only-net` lint rule keeps it that way.
//! * [`RealTcp`] — the production transport: `TcpStream::connect_timeout`
//!   plus `TCP_NODELAY`, exactly what the shard client did before the
//!   seam existed.
//! * [`FaultNet`] — a wrapper transport that injects connect refusals
//!   and black holes, mid-frame connection resets, byte-truncated
//!   writes, added latency, slow-drip reads, and one-way partitions on
//!   a pure `(seed, op-counter)` schedule: two `FaultNet`s built from
//!   equal plans misbehave identically, so a drill that fails replays
//!   byte-for-byte under the same seed.
//!
//! Injected faults are double-entried: ground truth in
//! [`InjectedNetFaults`] (what the schedule actually fired) and
//! `chaos.*` telemetry counters (what the rest of the system can see).

pub mod faultnet;
pub mod transport;

pub use faultnet::{FaultNet, InjectedNetFaults, NetFaultPlan, Partition};
pub use transport::{Conn, RealTcp, Transport};
