//! Facebook and Twitter profile crawls (§3).
//!
//! "The AngelList dataset includes links to startups' available Facebook and
//! Twitter URLs." Facebook fetches use the Graph API after the short→long
//! token exchange; Twitter fetches extract the username from the URL ("the
//! string after the last '/' symbol") and shard calls across a
//! [`TokenPool`](crate::tokens::TokenPool) to ride through the
//! 180-calls/15-minutes windows.

use crate::error::CrawlError;
use crate::retry::{with_retry_metered, RetryPolicy, RetryTelemetry};
use crate::tokens::TokenPool;
use crowdnet_json::Value;
use crowdnet_telemetry::Telemetry;
use crowdnet_socialsim::sources::facebook::FacebookApi;
use crowdnet_socialsim::sources::twitter::TwitterApi;
use crowdnet_socialsim::sources::ApiError;
use crowdnet_socialsim::Clock;
use crowdnet_store::{Document, Store};
use parking_lot::Mutex;
use std::sync::Arc;

/// Store namespace for Facebook page documents.
pub const NS_FACEBOOK: &str = "facebook/pages";
/// Store namespace for Twitter profile documents.
pub const NS_TWITTER: &str = "twitter/profiles";

/// Counters from a social-media crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocialStats {
    /// Facebook pages stored.
    pub facebook_pages: usize,
    /// Twitter profiles stored.
    pub twitter_profiles: usize,
    /// Linked accounts that permanently failed (404 after retries).
    pub missing: usize,
    /// Links whose URL carries no username segment (empty or trailing-`/`):
    /// skipped rather than fetched as an empty username.
    pub bad_urls: usize,
    /// Targets already present in the store from an interrupted earlier run
    /// — skipped without a fetch, so a resumed crawl is idempotent.
    pub already_stored: usize,
}

impl SocialStats {
    /// Documents present in the store after this crawl: newly stored this
    /// run plus those an interrupted earlier run had already persisted.
    pub fn stored_total(&self) -> usize {
        self.facebook_pages + self.twitter_profiles + self.already_stored
    }
}

/// Keys already persisted under `ns` (empty for a namespace that does not
/// exist yet). Resumable stages consult this so re-running after a crash
/// never duplicates documents.
pub(crate) fn existing_keys(
    store: &Store,
    ns: &str,
) -> Result<std::collections::HashSet<String>, CrawlError> {
    match store.scan(ns) {
        Ok(docs) => Ok(docs.into_iter().map(|d| d.key).collect()),
        Err(crowdnet_store::StoreError::NamespaceNotFound(_)) => Ok(Default::default()),
        Err(e) => Err(e.into()),
    }
}

/// Extract `(angellist_id, url)` pairs for a given URL field from the
/// crawled AngelList company documents.
fn linked_urls(store: &Store, field: &str) -> Result<Vec<(u64, String)>, CrawlError> {
    Ok(store
        .scan(crate::bfs::NS_COMPANIES)?
        .into_iter()
        .filter_map(|doc| {
            let id = doc.body.get("id").and_then(Value::as_u64)?;
            let url = doc.body.get(field).and_then(Value::as_str)?.to_string();
            Some((id, url))
        })
        .collect())
}

/// Crawl every linked Facebook page. Performs the login + token exchange
/// once, then fetches pages in parallel under the long-lived token.
pub fn crawl_facebook(
    api: &FacebookApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    workers: usize,
    telemetry: &Telemetry,
) -> Result<SocialStats, CrawlError> {
    let rt = RetryTelemetry::for_source(telemetry, "facebook");
    let pages_counter = telemetry.counter("crawl.facebook.pages");
    let token = api
        .exchange_token(&api.login())
        .map_err(CrawlError::Api)?;
    let existing = existing_keys(store, NS_FACEBOOK)?;
    let skipped_counter = telemetry.counter("crawl.resume.skipped");
    let mut seed_stats = SocialStats::default();
    let targets: Vec<(u64, String)> = linked_urls(store, "facebook_url")?
        .into_iter()
        .filter(|(id, _)| {
            let fresh = !existing.contains(&format!("company:{id}"));
            if !fresh {
                skipped_counter.inc();
                seed_stats.already_stored += 1;
            }
            fresh
        })
        .collect();
    let stats = Mutex::new(seed_stats);
    let queue = Mutex::new(targets.into_iter());
    let fatal: Mutex<Option<CrawlError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let item = { queue.lock().next() };
                let Some((id, url)) = item else { break };
                match with_retry_metered(clock.as_ref(), retry, Some(&rt), || {
                    api.page(&url, &token)
                }) {
                    Ok(page) => {
                        if let Err(e) =
                            store.put(NS_FACEBOOK, Document::new(format!("company:{id}"), page))
                        {
                            *fatal.lock() = Some(e.into());
                            queue.lock().by_ref().for_each(drop);
                        } else {
                            pages_counter.inc();
                            stats.lock().facebook_pages += 1;
                        }
                    }
                    Err(CrawlError::Api(ApiError::NotFound)) => {
                        stats.lock().missing += 1;
                    }
                    Err(e) => {
                        *fatal.lock() = Some(e);
                        queue.lock().by_ref().for_each(drop);
                    }
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner() {
        return Err(e);
    }
    Ok(stats.into_inner())
}

/// Crawl every linked Twitter profile through the token pool.
///
/// Rate-limited tokens are parked in the pool and the call retried on the
/// next available token, so the crawl's virtual wall-clock shrinks roughly
/// linearly with pool size (the paper's multi-machine trick; measured by the
/// `crawl_throughput` bench).
pub fn crawl_twitter(
    api: &TwitterApi,
    store: &Store,
    pool: &TokenPool,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    workers: usize,
    telemetry: &Telemetry,
) -> Result<SocialStats, CrawlError> {
    let rt = RetryTelemetry::for_source(telemetry, "twitter");
    let profiles_counter = telemetry.counter("crawl.twitter.profiles");
    let bad_url_counter = telemetry.counter("crawl.twitter.bad_url");
    let existing = existing_keys(store, NS_TWITTER)?;
    let skipped_counter = telemetry.counter("crawl.resume.skipped");
    let mut seed_stats = SocialStats::default();
    let targets: Vec<(u64, String)> = linked_urls(store, "twitter_url")?
        .into_iter()
        .filter(|(id, _)| {
            let fresh = !existing.contains(&format!("company:{id}"));
            if !fresh {
                skipped_counter.inc();
                seed_stats.already_stored += 1;
            }
            fresh
        })
        .collect();
    let stats = Mutex::new(seed_stats);
    let queue = Mutex::new(targets.into_iter());
    let fatal: Mutex<Option<CrawlError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let item = { queue.lock().next() };
                let Some((id, url)) = item else { break };
                // §3: the username is the string after the last '/'. Empty
                // or trailing-`/` URLs yield no username — fetching "" would
                // 404 every such link into `missing`; count them separately.
                let username = url.rsplit('/').next().unwrap_or_default().to_string();
                if username.is_empty() {
                    bad_url_counter.inc();
                    stats.lock().bad_urls += 1;
                    continue;
                }
                match fetch_with_pool(api, pool, clock, retry, &rt, &username) {
                    Ok(profile) => {
                        if let Err(e) = store
                            .put(NS_TWITTER, Document::new(format!("company:{id}"), profile))
                        {
                            *fatal.lock() = Some(e.into());
                            queue.lock().by_ref().for_each(drop);
                        } else {
                            profiles_counter.inc();
                            stats.lock().twitter_profiles += 1;
                        }
                    }
                    Err(CrawlError::Api(ApiError::NotFound)) => {
                        stats.lock().missing += 1;
                    }
                    Err(e) => {
                        *fatal.lock() = Some(e);
                        queue.lock().by_ref().for_each(drop);
                    }
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner() {
        return Err(e);
    }
    Ok(stats.into_inner())
}

/// One profile fetch: lease a token; on 429 park it and lease another; on
/// transient 5xx back off per the policy.
fn fetch_with_pool(
    api: &TwitterApi,
    pool: &TokenPool,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    rt: &RetryTelemetry,
    username: &str,
) -> Result<Value, CrawlError> {
    let mut transient = 0u32;
    loop {
        let token = pool.lease();
        rt.attempts.inc();
        match api.user_by_username(username, &token) {
            Ok(v) => {
                rt.success.inc();
                return Ok(v);
            }
            Err(ApiError::RateLimited { retry_after_ms }) => {
                rt.retry_ratelimit.inc();
                rt.wait_ms.record(retry_after_ms);
                pool.park(&token, retry_after_ms);
            }
            Err(ApiError::ServerError) => {
                transient += 1;
                if transient >= retry.max_attempts {
                    rt.fail_permanent.inc();
                    return Err(CrawlError::Api(ApiError::ServerError));
                }
                let wait = retry.delay_ms(transient - 1);
                rt.retry_transient.inc();
                rt.wait_ms.record(wait);
                clock.sleep_ms(wait);
            }
            Err(permanent) => {
                rt.fail_permanent.inc();
                return Err(CrawlError::Api(permanent));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{crawl_angellist, BfsConfig};
    use crowdnet_socialsim::clock::{RecordingClock, SimClock};
    use crowdnet_socialsim::sources::angellist::AngelListApi;
    use crowdnet_socialsim::sources::FaultModel;
    use crowdnet_socialsim::{World, WorldConfig};

    fn crawled(seed: u64) -> (Arc<World>, Store, Arc<dyn Clock>) {
        crawled_at(seed, WorldConfig::tiny(seed))
    }

    fn crawled_at(_seed: u64, cfg: WorldConfig) -> (Arc<World>, Store, Arc<dyn Clock>) {
        let world = Arc::new(World::generate(&cfg));
        let api = AngelListApi::reliable(Arc::clone(&world));
        let store = Store::memory(4);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        (world, store, clock)
    }

    #[test]
    fn facebook_crawl_covers_linked_pages() {
        let (world, store, clock) = crawled(42);
        let api = FacebookApi::new(Arc::clone(&world), Arc::new(SimClock::new()), FaultModel::none());
        let stats =
            crawl_facebook(&api, &store, &clock, &RetryPolicy::default(), 4, &Telemetry::new()).unwrap();
        let _ = &world;
        let linked = linked_urls(&store, "facebook_url").unwrap().len();
        assert_eq!(stats.facebook_pages, linked);
        assert_eq!(stats.missing, 0);
        assert_eq!(store.doc_count(NS_FACEBOOK).unwrap(), linked);
    }

    #[test]
    fn twitter_crawl_covers_linked_profiles_despite_rate_limits() {
        // Enough companies that >180 Twitter links exist, forcing at least
        // one full rate-limit window ride with a single token.
        let (world, store, _) = crawled_at(
            42,
            WorldConfig::at_scale(
                42,
                crowdnet_socialsim::Scale::Custom { companies: 4_000, users: 1_200 },
            ),
        );
        let sim = Arc::new(SimClock::new());
        let clock: Arc<dyn Clock> = Arc::new(RecordingClock::new());
        let api = TwitterApi::new(Arc::clone(&world), sim.clone(), FaultModel::none());
        // Deliberately tiny pool: one token ⇒ the 15-minute window must be
        // ridden out (virtually) several times if >180 profiles are linked.
        let pool = TokenPool::register(&api, sim.clone(), &["m1"], 1).unwrap();
        let stats =
            crawl_twitter(&api, &store, &pool, &clock, &RetryPolicy::default(), 2, &Telemetry::new()).unwrap();
        let _ = &world;
        let linked = linked_urls(&store, "twitter_url").unwrap().len();
        assert!(linked > 180, "need enough links to trip the limit: {linked}");
        assert_eq!(stats.twitter_profiles, linked);
        assert_eq!(store.doc_count(NS_TWITTER).unwrap(), linked);
        // The single token had to ride out at least one 15-minute window.
        assert!(sim.now_ms() >= crowdnet_socialsim::sources::twitter::WINDOW_MS / 2);
    }

    #[test]
    fn twitter_docs_have_engagement_fields() {
        let (world, store, _) = crawled(7);
        let sim = Arc::new(SimClock::new());
        let clock: Arc<dyn Clock> = sim.clone();
        let api = TwitterApi::new(Arc::clone(&world), sim.clone(), FaultModel::none());
        let pool = TokenPool::register(&api, sim.clone(), &["m1", "m2"], 5).unwrap();
        crawl_twitter(&api, &store, &pool, &clock, &RetryPolicy::default(), 4, &Telemetry::new()).unwrap();
        for doc in store.scan(NS_TWITTER).unwrap().iter().take(30) {
            assert!(doc.body.get("followers_count").and_then(Value::as_u64).is_some());
            assert!(doc.body.get("statuses_count").and_then(Value::as_u64).is_some());
        }
    }

    #[test]
    fn more_tokens_mean_less_virtual_waiting() {
        let (world, store, _) = crawled(42);
        let waiting_with = |tokens_per_owner: usize, owners: &[&str]| {
            let sim = Arc::new(SimClock::new());
            let api = TwitterApi::new(Arc::clone(&world), sim.clone(), FaultModel::none());
            let pool = TokenPool::register(&api, sim.clone(), owners, tokens_per_owner).unwrap();
            let clock = Arc::new(RecordingClock::new());
            let dyn_clock: Arc<dyn Clock> = clock.clone();
            crawl_twitter(&api, &store, &pool, &dyn_clock, &RetryPolicy::default(), 2, &Telemetry::new())
                .unwrap();
            sim.now_ms() // virtual time the *service* clock advanced (parked waits)
        };
        let one = waiting_with(1, &["a"]);
        let many = waiting_with(5, &["a", "b", "c"]);
        assert!(
            many <= one,
            "15 tokens ({many} ms) should not wait longer than 1 token ({one} ms)"
        );
    }

    #[test]
    fn malformed_twitter_urls_are_counted_not_fetched() {
        use crowdnet_json::obj;
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let store = Store::memory(2);
        // Hand-built company docs: a trailing-slash URL and an empty URL
        // carry no username segment; both must be skipped, not fetched as
        // the empty string (which would 404 into `missing`).
        for (id, url) in [(1u64, "https://twitter.com/"), (2, ""), (3, "https://twitter.com/ghost")] {
            store
                .put(
                    crate::bfs::NS_COMPANIES,
                    Document::new(format!("company:{id}"), obj! {"id" => id, "twitter_url" => url}),
                )
                .unwrap();
        }
        let sim = Arc::new(SimClock::new());
        let clock: Arc<dyn Clock> = sim.clone();
        let api = TwitterApi::new(Arc::clone(&world), sim.clone(), FaultModel::none());
        let pool = TokenPool::register(&api, sim, &["m1"], 2).unwrap();
        let telemetry = Telemetry::new();
        let stats =
            crawl_twitter(&api, &store, &pool, &clock, &RetryPolicy::default(), 2, &telemetry).unwrap();
        assert_eq!(stats.bad_urls, 2);
        // The well-formed link is attempted; whether it resolves or 404s it
        // is accounted for, never silently dropped.
        assert_eq!(stats.twitter_profiles + stats.missing, 1);
        assert_eq!(telemetry.counter("crawl.twitter.bad_url").value(), 2);
    }

    #[test]
    fn rerunning_social_crawls_skips_already_stored_targets() {
        let (world, store, clock) = crawled(42);
        let fb = FacebookApi::new(Arc::clone(&world), Arc::new(SimClock::new()), FaultModel::none());
        let first = crawl_facebook(&fb, &store, &clock, &RetryPolicy::default(), 4, &Telemetry::new())
            .unwrap();
        let telemetry = Telemetry::new();
        let second =
            crawl_facebook(&fb, &store, &clock, &RetryPolicy::default(), 4, &telemetry).unwrap();
        // Second pass fetches nothing and duplicates nothing.
        assert_eq!(second.facebook_pages, 0);
        assert_eq!(second.already_stored, first.facebook_pages);
        assert_eq!(second.stored_total(), first.stored_total());
        assert_eq!(store.doc_count(NS_FACEBOOK).unwrap(), first.facebook_pages);
        assert_eq!(
            telemetry.counter("crawl.resume.skipped").value(),
            first.facebook_pages as u64
        );
    }

    #[test]
    fn facebook_crawl_retries_through_faults() {
        let (world, store, clock) = crawled(42);
        let api = FacebookApi::new(
            Arc::clone(&world),
            Arc::new(SimClock::new()),
            FaultModel::new(0.15, 3),
        );
        let stats =
            crawl_facebook(&api, &store, &clock, &RetryPolicy::default(), 4, &Telemetry::new()).unwrap();
        let _ = &world;
        let linked = linked_urls(&store, "facebook_url").unwrap().len();
        assert_eq!(stats.facebook_pages, linked);
    }
}
