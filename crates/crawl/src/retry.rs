//! Retry with exponential backoff.
//!
//! Two failure classes get different treatment, as in any production
//! crawler:
//!
//! * `ServerError` (transient 5xx) — retry after exponentially growing,
//!   deterministically jittered delays;
//! * `RateLimited { retry_after_ms }` — sleep exactly what the service asked
//!   for, then retry (these do not count against the attempt budget: the
//!   service told us when to come back);
//! * everything else (404, 401, 400) — permanent, returned immediately.

use crate::error::CrawlError;
use crowdnet_socialsim::sources::{ApiError, ApiResult};
use crowdnet_socialsim::Clock;
use crowdnet_json::Value;

/// Backoff policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts for transient errors (≥ 1).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base_delay_ms: u64,
    /// Exponential growth factor numerator / 100 (200 = double each time).
    pub multiplier_pct: u64,
    /// Hard cap on a single delay.
    pub max_delay_ms: u64,
    /// Cap on rate-limit sleeps (defensive: a buggy server could ask us to
    /// sleep for a year).
    pub max_rate_limit_wait_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 100,
            multiplier_pct: 200,
            max_delay_ms: 10_000,
            max_rate_limit_wait_ms: 20 * 60 * 1000,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `n` (0-based retry index), with a small
    /// deterministic jitter so synchronized workers fan out.
    pub fn delay_ms(&self, retry_index: u32) -> u64 {
        let mut d = self.base_delay_ms.max(1);
        for _ in 0..retry_index {
            d = (d.saturating_mul(self.multiplier_pct)) / 100;
            if d >= self.max_delay_ms {
                return self.max_delay_ms;
            }
        }
        let jitter = (retry_index as u64 * 37) % (d / 4 + 1);
        (d + jitter).min(self.max_delay_ms)
    }
}

/// Run `call` under the policy, sleeping on the provided clock.
pub fn with_retry<F>(clock: &dyn Clock, policy: &RetryPolicy, mut call: F) -> Result<Value, CrawlError>
where
    F: FnMut() -> ApiResult,
{
    let mut transient_failures = 0u32;
    loop {
        match call() {
            Ok(v) => return Ok(v),
            Err(ApiError::RateLimited { retry_after_ms }) => {
                clock.sleep_ms(retry_after_ms.min(policy.max_rate_limit_wait_ms));
            }
            Err(ApiError::ServerError) => {
                transient_failures += 1;
                if transient_failures >= policy.max_attempts {
                    return Err(CrawlError::Api(ApiError::ServerError));
                }
                clock.sleep_ms(policy.delay_ms(transient_failures - 1));
            }
            Err(permanent) => return Err(CrawlError::Api(permanent)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_json::obj;
    use crowdnet_socialsim::clock::RecordingClock;
    use std::cell::Cell;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn success_passes_through() {
        let clock = RecordingClock::new();
        let out = with_retry(&clock, &policy(), || Ok(obj! {"ok" => true})).unwrap();
        assert_eq!(out.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(clock.total_slept_ms(), 0);
    }

    #[test]
    fn transient_errors_retry_then_succeed() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0);
        let out = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            if attempts.get() < 3 {
                Err(ApiError::ServerError)
            } else {
                Ok(obj! {"attempt" => attempts.get()})
            }
        })
        .unwrap();
        assert_eq!(out.get("attempt").and_then(Value::as_i64), Some(3));
        assert!(clock.total_slept_ms() >= 100 + 200);
    }

    #[test]
    fn transient_errors_exhaust_attempts() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let err = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            Err(ApiError::ServerError)
        })
        .unwrap_err();
        assert!(matches!(err, CrawlError::Api(ApiError::ServerError)));
        assert_eq!(attempts.get(), policy().max_attempts);
    }

    #[test]
    fn rate_limits_sleep_the_requested_time() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let out = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            if attempts.get() == 1 {
                Err(ApiError::RateLimited {
                    retry_after_ms: 90_000,
                })
            } else {
                Ok(obj! {})
            }
        });
        assert!(out.is_ok());
        assert_eq!(clock.total_slept_ms(), 90_000);
    }

    #[test]
    fn rate_limit_sleeps_are_capped() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let _ = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            if attempts.get() == 1 {
                Err(ApiError::RateLimited {
                    retry_after_ms: u64::MAX,
                })
            } else {
                Ok(obj! {})
            }
        });
        assert_eq!(clock.total_slept_ms(), policy().max_rate_limit_wait_ms);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let err = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            Err(ApiError::NotFound)
        })
        .unwrap_err();
        assert!(matches!(err, CrawlError::Api(ApiError::NotFound)));
        assert_eq!(attempts.get(), 1);
        assert_eq!(clock.total_slept_ms(), 0);
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let p = policy();
        assert!(p.delay_ms(0) >= 100);
        assert!(p.delay_ms(1) >= 200);
        assert!(p.delay_ms(2) >= 400);
        assert_eq!(p.delay_ms(30), p.max_delay_ms);
    }
}
