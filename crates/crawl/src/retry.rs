//! Retry with exponential backoff.
//!
//! Two failure classes get different treatment, as in any production
//! crawler:
//!
//! * `ServerError` (transient 5xx) — retry after exponentially growing,
//!   deterministically jittered delays;
//! * `RateLimited { retry_after_ms }` — sleep exactly what the service asked
//!   for, then retry (these do not count against the attempt budget: the
//!   service told us when to come back);
//! * everything else (404, 401, 400) — permanent, returned immediately.

use crate::error::CrawlError;
use crowdnet_socialsim::sources::{ApiError, ApiResult};
use crowdnet_socialsim::Clock;
use crowdnet_json::Value;
use crowdnet_telemetry::{Counter, Histogram, Telemetry};

/// Backoff policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts for transient errors (≥ 1).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base_delay_ms: u64,
    /// Exponential growth factor numerator / 100 (200 = double each time).
    pub multiplier_pct: u64,
    /// Hard cap on a single delay.
    pub max_delay_ms: u64,
    /// Cap on rate-limit sleeps (defensive: a buggy server could ask us to
    /// sleep for a year).
    pub max_rate_limit_wait_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 100,
            multiplier_pct: 200,
            max_delay_ms: 10_000,
            max_rate_limit_wait_ms: 20 * 60 * 1000,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `n` (0-based retry index), with a small
    /// deterministic jitter so synchronized workers fan out.
    pub fn delay_ms(&self, retry_index: u32) -> u64 {
        let mut d = self.base_delay_ms.max(1);
        for _ in 0..retry_index {
            d = (d.saturating_mul(self.multiplier_pct)) / 100;
            if d >= self.max_delay_ms {
                return self.max_delay_ms;
            }
        }
        let jitter = (retry_index as u64 * 37) % (d / 4 + 1);
        (d + jitter).min(self.max_delay_ms)
    }
}

/// Per-source retry-loop metrics, resolved once and cached by callers so
/// the hot loop touches only lock-free handles. The counter identity
/// `attempts == success + retry_transient + retry_ratelimit +
/// fail_permanent` holds by construction: every call records `attempts`
/// and exactly one outcome.
#[derive(Clone, Debug)]
pub struct RetryTelemetry {
    pub(crate) attempts: Counter,
    pub(crate) success: Counter,
    pub(crate) retry_transient: Counter,
    pub(crate) retry_ratelimit: Counter,
    pub(crate) fail_permanent: Counter,
    pub(crate) wait_ms: Histogram,
}

impl RetryTelemetry {
    /// Handles for `crawl.<source>.{attempts,success,retry_transient,
    /// retry_ratelimit,fail_permanent}` and the `crawl.<source>.wait_ms`
    /// backoff histogram.
    pub fn for_source(telemetry: &Telemetry, source: &str) -> RetryTelemetry {
        RetryTelemetry {
            attempts: telemetry.counter(&format!("crawl.{source}.attempts")),
            success: telemetry.counter(&format!("crawl.{source}.success")),
            retry_transient: telemetry.counter(&format!("crawl.{source}.retry_transient")),
            retry_ratelimit: telemetry.counter(&format!("crawl.{source}.retry_ratelimit")),
            fail_permanent: telemetry.counter(&format!("crawl.{source}.fail_permanent")),
            wait_ms: telemetry.histogram(&format!("crawl.{source}.wait_ms")),
        }
    }
}

/// Run `call` under the policy, sleeping on the provided clock.
pub fn with_retry<F>(clock: &dyn Clock, policy: &RetryPolicy, call: F) -> Result<Value, CrawlError>
where
    F: FnMut() -> ApiResult,
{
    with_retry_metered(clock, policy, None, call)
}

/// [`with_retry`] with optional per-source metrics: each loop iteration
/// bumps `attempts` plus exactly one outcome counter, and every backoff or
/// rate-limit sleep lands in the `wait_ms` histogram.
pub fn with_retry_metered<F>(
    clock: &dyn Clock,
    policy: &RetryPolicy,
    telemetry: Option<&RetryTelemetry>,
    mut call: F,
) -> Result<Value, CrawlError>
where
    F: FnMut() -> ApiResult,
{
    let mut transient_failures = 0u32;
    loop {
        if let Some(t) = telemetry {
            t.attempts.inc();
        }
        match call() {
            Ok(v) => {
                if let Some(t) = telemetry {
                    t.success.inc();
                }
                return Ok(v);
            }
            Err(ApiError::RateLimited { retry_after_ms }) => {
                let wait = retry_after_ms.min(policy.max_rate_limit_wait_ms);
                if let Some(t) = telemetry {
                    t.retry_ratelimit.inc();
                    t.wait_ms.record(wait);
                }
                clock.sleep_ms(wait);
            }
            Err(ApiError::ServerError) => {
                transient_failures += 1;
                if transient_failures >= policy.max_attempts {
                    if let Some(t) = telemetry {
                        t.fail_permanent.inc();
                    }
                    return Err(CrawlError::Api(ApiError::ServerError));
                }
                let wait = policy.delay_ms(transient_failures - 1);
                if let Some(t) = telemetry {
                    t.retry_transient.inc();
                    t.wait_ms.record(wait);
                }
                clock.sleep_ms(wait);
            }
            Err(permanent) => {
                if let Some(t) = telemetry {
                    t.fail_permanent.inc();
                }
                return Err(CrawlError::Api(permanent));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_json::obj;
    use crowdnet_socialsim::clock::RecordingClock;
    use std::cell::Cell;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn success_passes_through() {
        let clock = RecordingClock::new();
        let out = with_retry(&clock, &policy(), || Ok(obj! {"ok" => true})).unwrap();
        assert_eq!(out.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(clock.total_slept_ms(), 0);
    }

    #[test]
    fn transient_errors_retry_then_succeed() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0);
        let out = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            if attempts.get() < 3 {
                Err(ApiError::ServerError)
            } else {
                Ok(obj! {"attempt" => attempts.get()})
            }
        })
        .unwrap();
        assert_eq!(out.get("attempt").and_then(Value::as_i64), Some(3));
        assert!(clock.total_slept_ms() >= 100 + 200);
    }

    #[test]
    fn transient_errors_exhaust_attempts() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let err = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            Err(ApiError::ServerError)
        })
        .unwrap_err();
        assert!(matches!(err, CrawlError::Api(ApiError::ServerError)));
        assert_eq!(attempts.get(), policy().max_attempts);
    }

    #[test]
    fn rate_limits_sleep_the_requested_time() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let out = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            if attempts.get() == 1 {
                Err(ApiError::RateLimited {
                    retry_after_ms: 90_000,
                })
            } else {
                Ok(obj! {})
            }
        });
        assert!(out.is_ok());
        assert_eq!(clock.total_slept_ms(), 90_000);
    }

    #[test]
    fn rate_limit_sleeps_are_capped() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let _ = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            if attempts.get() == 1 {
                Err(ApiError::RateLimited {
                    retry_after_ms: u64::MAX,
                })
            } else {
                Ok(obj! {})
            }
        });
        assert_eq!(clock.total_slept_ms(), policy().max_rate_limit_wait_ms);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let clock = RecordingClock::new();
        let attempts = Cell::new(0u32);
        let err = with_retry(&clock, &policy(), || {
            attempts.set(attempts.get() + 1);
            Err(ApiError::NotFound)
        })
        .unwrap_err();
        assert!(matches!(err, CrawlError::Api(ApiError::NotFound)));
        assert_eq!(attempts.get(), 1);
        assert_eq!(clock.total_slept_ms(), 0);
    }

    #[test]
    fn metered_counters_reconcile() {
        let telemetry = Telemetry::new();
        let rt = RetryTelemetry::for_source(&telemetry, "angellist");
        let clock = RecordingClock::new();
        // One clean success.
        let _ = with_retry_metered(&clock, &policy(), Some(&rt), || Ok(obj! {}));
        // One success after a transient failure and a rate limit.
        let attempts = Cell::new(0u32);
        let _ = with_retry_metered(&clock, &policy(), Some(&rt), || {
            attempts.set(attempts.get() + 1);
            match attempts.get() {
                1 => Err(ApiError::ServerError),
                2 => Err(ApiError::RateLimited { retry_after_ms: 500 }),
                _ => Ok(obj! {}),
            }
        });
        // One permanent failure.
        let _ = with_retry_metered(&clock, &policy(), Some(&rt), || Err(ApiError::NotFound));

        let get = |n: &str| telemetry.counter(&format!("crawl.angellist.{n}")).value();
        assert_eq!(get("attempts"), 5);
        assert_eq!(get("success"), 2);
        assert_eq!(get("retry_transient"), 1);
        assert_eq!(get("retry_ratelimit"), 1);
        assert_eq!(get("fail_permanent"), 1);
        assert_eq!(
            get("attempts"),
            get("success") + get("retry_transient") + get("retry_ratelimit") + get("fail_permanent")
        );
        let waits = telemetry.histogram("crawl.angellist.wait_ms").snapshot();
        assert_eq!(waits.count, 2);
        assert_eq!(waits.count, get("retry_transient") + get("retry_ratelimit"));
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let p = policy();
        assert!(p.delay_ms(0) >= 100);
        assert!(p.delay_ms(1) >= 200);
        assert!(p.delay_ms(2) >= 400);
        assert_eq!(p.delay_ms(30), p.max_delay_ms);
    }
}
