//! Syndicate crawling.
//!
//! §2 of the paper: "AngelList also allows investors to invite other
//! accredited investors to form syndicates for investment." Syndicates are
//! the *observable* face of co-investment communities, so the crawler
//! fetches the public syndicate directory alongside the BFS — giving the
//! analytics layer a crawled group structure to validate detected
//! communities against.

use crate::error::CrawlError;
use crate::retry::{with_retry_metered, RetryPolicy, RetryTelemetry};
use crowdnet_json::Value;
use crowdnet_telemetry::Telemetry;
use crowdnet_socialsim::sources::angellist::AngelListApi;
use crowdnet_socialsim::Clock;
use crowdnet_store::{Document, Store};
use std::sync::Arc;

/// Store namespace for syndicate documents.
pub const NS_SYNDICATES: &str = "angellist/syndicates";

/// Crawl the full syndicate directory; returns how many were stored.
pub fn crawl_syndicates(
    api: &AngelListApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    telemetry: &Telemetry,
) -> Result<usize, CrawlError> {
    let rt = RetryTelemetry::for_source(telemetry, "angellist");
    let docs_counter = telemetry.counter("crawl.syndicates.docs");
    let mut ids = Vec::new();
    let mut page = 1usize;
    loop {
        let doc = with_retry_metered(clock.as_ref(), retry, Some(&rt), || api.syndicates(page))?;
        if let Some(items) = doc.get("items").and_then(Value::as_arr) {
            ids.extend(
                items
                    .iter()
                    .filter_map(|i| i.get("id").and_then(Value::as_u64)),
            );
        }
        let last = doc.get("last_page").and_then(Value::as_u64).unwrap_or(1);
        if page as u64 >= last {
            break;
        }
        page += 1;
    }
    let existing = crate::social::existing_keys(store, NS_SYNDICATES)?;
    let skipped_counter = telemetry.counter("crawl.resume.skipped");
    let mut stored = 0usize;
    for id in ids {
        let key = format!("syndicate:{id}");
        // An interrupted earlier run may have persisted this syndicate
        // already; re-putting would duplicate the document.
        if existing.contains(&key) {
            skipped_counter.inc();
            stored += 1;
            continue;
        }
        let doc = with_retry_metered(clock.as_ref(), retry, Some(&rt), || api.syndicate(id as u32))?;
        store.put(NS_SYNDICATES, Document::new(key, doc))?;
        docs_counter.inc();
        stored += 1;
    }
    Ok(stored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_socialsim::clock::SimClock;
    use crowdnet_socialsim::{Scale, World, WorldConfig};

    #[test]
    fn crawls_every_listed_syndicate() {
        let world = Arc::new(World::generate(&WorldConfig::at_scale(
            9,
            Scale::Custom {
                companies: 20_000,
                users: 60_000,
            },
        )));
        let api = AngelListApi::reliable(Arc::clone(&world));
        let store = Store::memory(4);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let stored =
            crawl_syndicates(&api, &store, &clock, &RetryPolicy::default(), &Telemetry::new()).unwrap();
        assert_eq!(stored, world.syndicates.len());
        assert!(stored > 0);
        let docs = store.scan(NS_SYNDICATES).unwrap();
        assert_eq!(docs.len(), stored);
        for doc in docs.iter().take(10) {
            let backers = doc.body.get("backers").and_then(Value::as_arr).unwrap();
            assert!(backers.len() >= 2);
        }
    }
}
