//! # crowdnet-crawl
//!
//! The data-collection half of the CrowdNet platform (Figure 2 of the
//! paper): "a number of high-performance parallel crawlers are used to
//! gather social media inputs from Facebook, Twitter, CrunchBase, and
//! AngelList … We adhere to the Web APIs supplied by each company."
//!
//! Components, in the order the paper describes its collection process (§3):
//!
//! * [`bfs`] — the breadth-first frontier crawl over AngelList: start from
//!   the ~4000 currently-raising startups, expand through startup followers,
//!   then through each user's followed startups and users, "increasing our
//!   knowledge of the entire AngelList graph in every iteration".
//! * [`augment`] — the one-time CrunchBase augmentation: direct permalink
//!   when the AngelList profile links it, unique-name-search fallback
//!   otherwise.
//! * [`social`] — Facebook Graph API fetches (short→long token exchange) and
//!   Twitter profile fetches with username-from-URL extraction and a
//!   [`tokens::TokenPool`] that shards calls across access tokens to defeat
//!   the 180-calls/15-minutes window.
//! * [`retry`] / [`ratelimit`] — exponential backoff for transient 5xx
//!   errors, client-side token buckets, and rate-limit-aware sleeping, all
//!   against the virtual [`Clock`](crowdnet_socialsim::Clock).
//! * [`pipeline`] — the full four-source crawl writing JSON documents into a
//!   `crowdnet-store` [`Store`](crowdnet_store::Store).
//! * [`longitudinal`] — the §7 extension: scheduled re-crawls into fresh
//!   store snapshots while the simulated world evolves between runs.

pub mod augment;
pub mod bfs;
pub mod error;
pub mod longitudinal;
pub mod pipeline;
pub mod ratelimit;
pub mod retry;
pub mod social;
pub mod syndicates;
pub mod tokens;

pub use error::CrawlError;
pub use pipeline::{
    load_pipeline_checkpoint, CrawlConfig, CrawlStats, Crawler, PipelineCheckpoint,
    PIPELINE_CHECKPOINT_KEY,
};
