//! Client-side rate limiting.
//!
//! The paper "adhere[s] to the Web APIs supplied by each company" — a polite
//! crawler throttles itself *before* the server has to. [`TokenBucket`] is
//! the standard construction: capacity `burst`, refilled at `rate_per_sec`,
//! one token per request, sleeping on the shared [`Clock`] when empty.

use crowdnet_socialsim::Clock;
use crowdnet_telemetry::Histogram;
use parking_lot::Mutex;
use std::sync::Arc;

struct BucketState {
    tokens: f64,
    last_refill_ms: u64,
}

/// A thread-safe token bucket bound to a clock.
pub struct TokenBucket {
    clock: Arc<dyn Clock>,
    rate_per_sec: f64,
    burst: f64,
    state: Mutex<BucketState>,
    wait_hist: Option<Histogram>,
}

impl TokenBucket {
    /// A bucket allowing `rate_per_sec` sustained and `burst` instantaneous
    /// requests.
    pub fn new(clock: Arc<dyn Clock>, rate_per_sec: f64, burst: u32) -> TokenBucket {
        let now = clock.now_ms();
        TokenBucket {
            clock,
            rate_per_sec: rate_per_sec.max(1e-9),
            burst: f64::from(burst.max(1)),
            state: Mutex::new(BucketState {
                tokens: f64::from(burst.max(1)),
                last_refill_ms: now,
            }),
            wait_hist: None,
        }
    }

    /// Record every [`TokenBucket::acquire`] sleep into `hist` (e.g. a
    /// registry histogram named `crawl.<source>.bucket_wait_ms`).
    pub fn with_wait_histogram(mut self, hist: Histogram) -> TokenBucket {
        self.wait_hist = Some(hist);
        self
    }

    fn refill(&self, state: &mut BucketState) {
        let now = self.clock.now_ms();
        let elapsed_ms = now.saturating_sub(state.last_refill_ms);
        state.tokens = (state.tokens + elapsed_ms as f64 / 1000.0 * self.rate_per_sec)
            .min(self.burst);
        state.last_refill_ms = now;
    }

    /// Try to take a token without waiting.
    pub fn try_acquire(&self) -> bool {
        let mut state = self.state.lock();
        self.refill(&mut state);
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Take a token, sleeping (on the clock) until one is available.
    pub fn acquire(&self) {
        loop {
            let wait_ms = {
                let mut state = self.state.lock();
                self.refill(&mut state);
                if state.tokens >= 1.0 {
                    state.tokens -= 1.0;
                    return;
                }
                let deficit = 1.0 - state.tokens;
                (deficit / self.rate_per_sec * 1000.0).ceil() as u64
            };
            let wait_ms = wait_ms.max(1);
            if let Some(h) = &self.wait_hist {
                h.record(wait_ms);
            }
            self.clock.sleep_ms(wait_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_socialsim::clock::{RecordingClock, SimClock};

    #[test]
    fn burst_then_empty() {
        let clock = Arc::new(SimClock::new());
        let bucket = TokenBucket::new(clock.clone(), 1.0, 3);
        assert!(bucket.try_acquire());
        assert!(bucket.try_acquire());
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire());
    }

    #[test]
    fn refills_over_time() {
        let clock = Arc::new(SimClock::new());
        let bucket = TokenBucket::new(clock.clone(), 2.0, 1);
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire());
        clock.advance_ms(500); // 2/sec ⇒ one token back after 500 ms
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire());
    }

    #[test]
    fn refill_caps_at_burst() {
        let clock = Arc::new(SimClock::new());
        let bucket = TokenBucket::new(clock.clone(), 100.0, 2);
        clock.advance_ms(60_000); // would refill 6000 tokens
        assert!(bucket.try_acquire());
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire());
    }

    #[test]
    fn acquire_sleeps_exactly_the_deficit() {
        let clock = Arc::new(RecordingClock::new());
        let bucket = TokenBucket::new(clock.clone(), 10.0, 1);
        bucket.acquire(); // burst token, no sleep
        bucket.acquire(); // must wait 100 ms
        assert_eq!(clock.total_slept_ms(), 100);
    }

    #[test]
    fn wait_histogram_sees_every_sleep() {
        let telemetry = crowdnet_telemetry::Telemetry::new();
        let clock = Arc::new(RecordingClock::new());
        let bucket = TokenBucket::new(clock.clone(), 10.0, 1)
            .with_wait_histogram(telemetry.histogram("crawl.bucket_wait_ms"));
        bucket.acquire(); // burst token, no sleep
        bucket.acquire(); // waits 100 ms
        let snap = telemetry.histogram("crawl.bucket_wait_ms").snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 100);
    }

    #[test]
    fn sustained_rate_is_respected() {
        let clock = Arc::new(RecordingClock::new());
        let bucket = TokenBucket::new(clock.clone(), 5.0, 1);
        for _ in 0..11 {
            bucket.acquire();
        }
        // 10 post-burst tokens at 5/sec = 2 s of virtual waiting.
        assert_eq!(clock.total_slept_ms(), 2_000);
    }
}
