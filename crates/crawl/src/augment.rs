//! CrunchBase augmentation (§3).
//!
//! "AngelList data is incomplete. … we augment our AngelList data with
//! crawled data from CrunchBase. … If the AngelList entry provides a
//! CrunchBase URL, we use the associated CrunchBase entry; if not, we use
//! the CrunchBase search API to find startups with matching names. If the
//! CrunchBase search returns a unique result, we associate that result with
//! the AngelList startup."

use crate::error::CrawlError;
use crate::retry::{with_retry_metered, RetryPolicy, RetryTelemetry};
use crowdnet_json::Value;
use crowdnet_telemetry::Telemetry;
use crowdnet_socialsim::sources::crunchbase::CrunchBaseApi;
use crowdnet_socialsim::Clock;
use crowdnet_store::{Document, Store};
use parking_lot::Mutex;
use std::sync::Arc;

/// Store namespace for CrunchBase documents (keyed by AngelList company id).
pub const NS_CRUNCHBASE: &str = "crunchbase/companies";

/// Counters from an augmentation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AugmentStats {
    /// Resolved through a direct CrunchBase URL on the AngelList profile.
    pub direct: usize,
    /// Resolved through a unique name-search match.
    pub by_search: usize,
    /// Name search returned multiple matches — skipped (the paper's rule).
    pub ambiguous: usize,
    /// No CrunchBase presence found.
    pub not_found: usize,
    /// Companies whose CrunchBase profile an interrupted earlier run had
    /// already stored — skipped without a fetch (resume idempotency). The
    /// direct/by-search split of these is not re-derived.
    pub skipped_existing: usize,
}

impl AugmentStats {
    /// Total profiles present in the store after this pass (including ones
    /// persisted by an interrupted earlier run).
    pub fn resolved(&self) -> usize {
        self.direct + self.by_search + self.skipped_existing
    }
}

/// Augment every AngelList company document in `store` with CrunchBase data.
pub fn augment_crunchbase(
    api: &CrunchBaseApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    workers: usize,
    telemetry: &Telemetry,
) -> Result<AugmentStats, CrawlError> {
    let rt = RetryTelemetry::for_source(telemetry, "crunchbase");
    let direct_counter = telemetry.counter("crawl.augment.direct");
    let by_search_counter = telemetry.counter("crawl.augment.by_search");
    let ambiguous_counter = telemetry.counter("crawl.augment.ambiguous");
    let not_found_counter = telemetry.counter("crawl.augment.not_found");
    let existing = crate::social::existing_keys(store, NS_CRUNCHBASE)?;
    let skipped_counter = telemetry.counter("crawl.resume.skipped");
    let mut seed_stats = AugmentStats::default();
    let companies: Vec<Document> = store
        .scan(crate::bfs::NS_COMPANIES)?
        .into_iter()
        .filter(|doc| {
            let id = doc.body.get("id").and_then(Value::as_u64).unwrap_or(0);
            let fresh = !existing.contains(&format!("company:{id}"));
            if !fresh {
                skipped_counter.inc();
                seed_stats.skipped_existing += 1;
            }
            fresh
        })
        .collect();
    let stats = Mutex::new(seed_stats);
    let queue = Mutex::new(companies.into_iter());
    let fatal: Mutex<Option<CrawlError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let doc = { queue.lock().next() };
                let Some(doc) = doc else { break };
                match augment_one(api, store, clock, retry, &rt, &doc) {
                    Ok(outcome) => {
                        match outcome {
                            Outcome::Direct => direct_counter.inc(),
                            Outcome::BySearch => by_search_counter.inc(),
                            Outcome::Ambiguous => ambiguous_counter.inc(),
                            Outcome::NotFound => not_found_counter.inc(),
                        }
                        let mut s = stats.lock();
                        match outcome {
                            Outcome::Direct => s.direct += 1,
                            Outcome::BySearch => s.by_search += 1,
                            Outcome::Ambiguous => s.ambiguous += 1,
                            Outcome::NotFound => s.not_found += 1,
                        }
                    }
                    Err(e) => {
                        *fatal.lock() = Some(e);
                        queue.lock().by_ref().for_each(drop);
                    }
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner() {
        return Err(e);
    }
    Ok(stats.into_inner())
}

enum Outcome {
    Direct,
    BySearch,
    Ambiguous,
    NotFound,
}

fn augment_one(
    api: &CrunchBaseApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    rt: &RetryTelemetry,
    doc: &Document,
) -> Result<Outcome, CrawlError> {
    let body = &doc.body;
    let al_id = body.get("id").and_then(Value::as_u64).unwrap_or(0);

    // Route 1: direct CrunchBase URL.
    if let Some(url) = body.get("crunchbase_url").and_then(Value::as_str) {
        let permalink = url.rsplit('/').next().unwrap_or_default().to_string();
        match with_retry_metered(clock.as_ref(), retry, Some(rt), || api.company(&permalink)) {
            Ok(cb) => {
                store.put(NS_CRUNCHBASE, Document::new(format!("company:{al_id}"), cb))?;
                return Ok(Outcome::Direct);
            }
            Err(CrawlError::Api(crowdnet_socialsim::sources::ApiError::NotFound)) => {
                // Dangling link; fall through to search.
            }
            Err(e) => return Err(e),
        }
    }

    // Route 2: unique name search.
    let name = body.get("name").and_then(Value::as_str).unwrap_or_default();
    let search = with_retry_metered(clock.as_ref(), retry, Some(rt), || api.search(name))?;
    let matches = search
        .get("matches")
        .and_then(Value::as_arr)
        .map(<[Value]>::to_vec)
        .unwrap_or_default();
    match matches.len() {
        0 => Ok(Outcome::NotFound),
        1 => {
            let permalink = matches[0]
                .get("permalink")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            match with_retry_metered(clock.as_ref(), retry, Some(rt), || api.company(&permalink)) {
                Ok(cb) => {
                    store.put(NS_CRUNCHBASE, Document::new(format!("company:{al_id}"), cb))?;
                    Ok(Outcome::BySearch)
                }
                Err(CrawlError::Api(crowdnet_socialsim::sources::ApiError::NotFound)) => {
                    Ok(Outcome::NotFound)
                }
                Err(e) => Err(e),
            }
        }
        _ => Ok(Outcome::Ambiguous),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{crawl_angellist, BfsConfig};
    use crowdnet_socialsim::clock::SimClock;
    use crowdnet_socialsim::sources::angellist::AngelListApi;
    
    use crowdnet_socialsim::{World, WorldConfig};

    fn crawled_store() -> (Arc<World>, Store, Arc<dyn Clock>) {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let api = AngelListApi::reliable(Arc::clone(&world));
        let store = Store::memory(4);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        (world, store, clock)
    }

    #[test]
    fn augmentation_resolves_funded_companies() {
        let (world, store, clock) = crawled_store();
        let api = CrunchBaseApi::reliable(Arc::clone(&world));
        let stats =
            augment_crunchbase(&api, &store, &clock, &RetryPolicy::default(), 4, &Telemetry::new()).unwrap();
        let funded = world.companies.iter().filter(|c| c.funded).count();
        // Every directly-linked *crawled* company resolves; search picks up
        // most of the rest except ambiguous names. The BFS may miss a few
        // isolated companies, so compare with a margin.
        assert!(stats.direct > 0);
        // Name search has false positives: an *unfunded* company whose name
        // collides with exactly one funded company resolves to the wrong
        // profile — the inherent risk of the paper's matching rule. So
        // `resolved` may exceed the true funded count by a small margin.
        assert!(stats.resolved() <= funded + funded / 2 + 10);
        assert!(
            stats.resolved() + stats.ambiguous >= funded.saturating_sub(funded / 4 + 3),
            "resolved {} + ambiguous {} vs funded {funded}",
            stats.resolved(),
            stats.ambiguous
        );
        assert_eq!(store.doc_count(NS_CRUNCHBASE).unwrap(), stats.resolved());
    }

    #[test]
    fn crunchbase_docs_carry_rounds() {
        let (world, store, clock) = crawled_store();
        let api = CrunchBaseApi::reliable(Arc::clone(&world));
        augment_crunchbase(&api, &store, &clock, &RetryPolicy::default(), 2, &Telemetry::new()).unwrap();
        let docs = store.scan(NS_CRUNCHBASE).unwrap();
        assert!(!docs.is_empty());
        for doc in docs.iter().take(30) {
            let rounds = doc.body.get("rounds").and_then(Value::as_arr).unwrap();
            assert!(!rounds.is_empty());
            assert!(doc.body.get("total_raised_usd").and_then(Value::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn unfunded_companies_stay_unresolved() {
        let (world, store, clock) = crawled_store();
        let api = CrunchBaseApi::reliable(Arc::clone(&world));
        let stats =
            augment_crunchbase(&api, &store, &clock, &RetryPolicy::default(), 2, &Telemetry::new()).unwrap();
        let crawled = store.doc_count(crate::bfs::NS_COMPANIES).unwrap();
        assert!(stats.not_found > 0);
        assert_eq!(
            stats.direct + stats.by_search + stats.ambiguous + stats.not_found,
            crawled
        );
    }
}
