//! The full four-source crawl (Figure 2's collection tier).
//!
//! [`Crawler::run`] chains the paper's collection process end to end:
//! AngelList BFS → CrunchBase augmentation → Facebook pages → Twitter
//! profiles, writing each source into its own store namespace.

use crate::augment::{augment_crunchbase, AugmentStats};
use crate::bfs::{crawl_angellist, BfsConfig, BfsStats};
use crate::error::CrawlError;
use crate::retry::RetryPolicy;
use crate::social::{crawl_facebook, crawl_twitter, SocialStats};
use crate::tokens::TokenPool;
use crowdnet_socialsim::sources::angellist::AngelListApi;
use crowdnet_socialsim::sources::crunchbase::CrunchBaseApi;
use crowdnet_socialsim::sources::facebook::FacebookApi;
use crowdnet_socialsim::sources::twitter::TwitterApi;
use crowdnet_socialsim::sources::FaultModel;
use crowdnet_socialsim::{Clock, SimClock, World};
use crowdnet_store::Store;
use crowdnet_telemetry::Telemetry;
use std::sync::Arc;

/// Configuration for a full crawl.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Worker threads for each stage.
    pub workers: usize,
    /// BFS depth/entity budgets.
    pub bfs: BfsConfig,
    /// Retry policy shared by all stages.
    pub retry: RetryPolicy,
    /// Simulated crawl machines (each registers Twitter apps).
    pub twitter_owners: Vec<String>,
    /// Twitter apps per owner (≤ 5, the service cap).
    pub twitter_apps_per_owner: usize,
    /// Transient-fault rate injected into every API (0.0 = reliable).
    pub fault_rate: f64,
    /// Seed for fault injection.
    pub fault_seed: u64,
    /// Observability sink shared by every stage. The crawler binds its
    /// `SimClock` into it (unless a caller bound a clock first) so spans
    /// and events carry virtual timestamps.
    pub telemetry: Telemetry,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            workers: 4,
            bfs: BfsConfig::default(),
            retry: RetryPolicy::default(),
            twitter_owners: vec!["machine-1".into(), "machine-2".into(), "machine-3".into()],
            twitter_apps_per_owner: 5,
            fault_rate: 0.0,
            fault_seed: 0,
            telemetry: Telemetry::new(),
        }
    }
}

/// Aggregate counters from a full crawl.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    /// AngelList BFS counters.
    pub bfs: BfsStats,
    /// CrunchBase augmentation counters.
    pub augment: AugmentStats,
    /// Facebook counters.
    pub facebook: SocialStats,
    /// Twitter counters.
    pub twitter: SocialStats,
    /// Syndicate documents stored.
    pub syndicates: usize,
    /// Total virtual milliseconds the crawl's clock advanced.
    pub virtual_elapsed_ms: u64,
}

/// The end-to-end crawler over a simulated world.
pub struct Crawler {
    world: Arc<World>,
    clock: Arc<SimClock>,
    config: CrawlConfig,
}

impl Crawler {
    /// Build a crawler over `world`.
    pub fn new(world: Arc<World>, config: CrawlConfig) -> Crawler {
        Crawler {
            world,
            clock: Arc::new(SimClock::new()),
            config,
        }
    }

    /// The crawler's virtual clock (shared with every simulated service).
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.clock)
    }

    /// Run all four stages, writing into `store`.
    pub fn run(&self, store: &Store) -> Result<CrawlStats, CrawlError> {
        let cfg = &self.config;
        let dyn_clock: Arc<dyn Clock> = self.clock.clone();
        let start_ms = self.clock.now_ms();

        // Time telemetry on the crawl's virtual clock unless an outer
        // component (the repro binary) already bound a real one.
        let telemetry = cfg.telemetry.clone();
        let sim = self.clock.clone();
        telemetry.bind_clock_if_unbound(Arc::new(move || sim.now_ms()));

        // Stage 1: AngelList BFS.
        let angellist = AngelListApi::new(
            Arc::clone(&self.world),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed),
        );
        let mut bfs_cfg = cfg.bfs.clone();
        bfs_cfg.workers = cfg.workers;
        bfs_cfg.retry = cfg.retry;
        bfs_cfg.telemetry = telemetry.clone();
        let bfs = {
            let _span = telemetry.span("crawl.angellist");
            crawl_angellist(&angellist, store, &dyn_clock, &bfs_cfg)?
        };
        let syndicates = {
            let _span = telemetry.span("crawl.syndicates");
            crate::syndicates::crawl_syndicates(&angellist, store, &dyn_clock, &cfg.retry, &telemetry)?
        };

        // Stage 2: CrunchBase augmentation.
        let crunchbase = CrunchBaseApi::new(
            Arc::clone(&self.world),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 1),
        );
        let augment = {
            let _span = telemetry.span("crawl.crunchbase");
            augment_crunchbase(&crunchbase, store, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
        };

        // Stage 3: Facebook pages.
        let facebook = FacebookApi::new(
            Arc::clone(&self.world),
            self.clock.clone(),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 2),
        );
        let fb = {
            let _span = telemetry.span("crawl.facebook");
            crawl_facebook(&facebook, store, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
        };

        // Stage 4: Twitter profiles through the token pool.
        let twitter = TwitterApi::new(
            Arc::clone(&self.world),
            self.clock.clone(),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 3),
        );
        let owners: Vec<&str> = cfg.twitter_owners.iter().map(String::as_str).collect();
        if owners.is_empty() {
            return Err(CrawlError::Config("need at least one twitter owner".into()));
        }
        let pool = TokenPool::register(
            &twitter,
            self.clock.clone(),
            &owners,
            cfg.twitter_apps_per_owner,
        )
        .map_err(CrawlError::Api)?;
        let tw = {
            let _span = telemetry.span("crawl.twitter");
            crawl_twitter(&twitter, store, &pool, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
        };

        Ok(CrawlStats {
            bfs,
            augment,
            facebook: fb,
            twitter: tw,
            syndicates,
            virtual_elapsed_ms: self.clock.now_ms() - start_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::NS_CRUNCHBASE;
    use crate::bfs::{NS_COMPANIES, NS_USERS};
    use crate::social::{NS_FACEBOOK, NS_TWITTER};
    use crowdnet_socialsim::WorldConfig;

    #[test]
    fn full_pipeline_populates_all_namespaces() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let store = Store::memory(4);
        let crawler = Crawler::new(Arc::clone(&world), CrawlConfig::default());
        let stats = crawler.run(&store).unwrap();

        assert!(stats.bfs.companies > 0);
        assert!(stats.bfs.users > 0);
        assert!(stats.augment.resolved() > 0);
        assert!(stats.facebook.facebook_pages > 0);
        assert!(stats.twitter.twitter_profiles > 0);

        let namespaces = store.namespaces().unwrap();
        for required in [NS_COMPANIES, NS_USERS, NS_CRUNCHBASE, NS_FACEBOOK, NS_TWITTER] {
            assert!(namespaces.contains(&required.to_string()), "missing {required}");
        }
        // The syndicate namespace appears exactly when syndicates exist
        // (tiny worlds may legitimately have none).
        let has_ns = namespaces.contains(&crate::syndicates::NS_SYNDICATES.to_string());
        assert_eq!(has_ns, stats.syndicates > 0);
    }

    #[test]
    fn pipeline_with_faults_still_completes() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(7)));
        let store = Store::memory(4);
        let cfg = CrawlConfig {
            fault_rate: 0.10,
            fault_seed: 99,
            ..CrawlConfig::default()
        };
        let crawler = Crawler::new(Arc::clone(&world), cfg);
        let stats = crawler.run(&store).unwrap();
        // Everything the BFS found with a Facebook link gets fetched even
        // under a 10% transient-fault rate.
        let linked_fb = world.companies.iter().filter(|c| c.facebook.is_some()).count();
        assert!(stats.facebook.facebook_pages as f64 >= linked_fb as f64 * 0.9);
        assert!(stats.facebook.facebook_pages <= linked_fb);
    }

    #[test]
    fn crawl_counts_mirror_world_marginals() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let store = Store::memory(4);
        let crawler = Crawler::new(Arc::clone(&world), CrawlConfig::default());
        let stats = crawler.run(&store).unwrap();
        // The BFS reaches essentially every company; FB/TW crawl exactly the
        // linked subsets of what was crawled.
        let fb_linked = world.companies.iter().filter(|c| c.facebook.is_some()).count();
        let tw_linked = world.companies.iter().filter(|c| c.twitter.is_some()).count();
        assert!(stats.facebook.facebook_pages <= fb_linked);
        assert!(stats.twitter.twitter_profiles <= tw_linked);
        assert!(stats.facebook.facebook_pages as f64 >= fb_linked as f64 * 0.9);
        assert!(stats.twitter.twitter_profiles as f64 >= tw_linked as f64 * 0.9);
    }
}
