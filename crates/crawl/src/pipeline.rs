//! The full four-source crawl (Figure 2's collection tier).
//!
//! [`Crawler::run`] chains the paper's collection process end to end:
//! AngelList BFS → CrunchBase augmentation → Facebook pages → Twitter
//! profiles, writing each source into its own store namespace.

use crate::augment::{augment_crunchbase, AugmentStats};
use crate::bfs::{crawl_angellist, crawl_angellist_resumable, BfsConfig, BfsStats, NS_CHECKPOINT};
use crate::error::CrawlError;
use crate::retry::RetryPolicy;
use crate::social::{crawl_facebook, crawl_twitter, SocialStats};
use crate::tokens::TokenPool;
use crowdnet_json::{obj, Value};
use crowdnet_socialsim::sources::angellist::AngelListApi;
use crowdnet_socialsim::sources::crunchbase::CrunchBaseApi;
use crowdnet_socialsim::sources::facebook::FacebookApi;
use crowdnet_socialsim::sources::twitter::TwitterApi;
use crowdnet_socialsim::sources::FaultModel;
use crowdnet_socialsim::{Clock, SimClock, World};
use crowdnet_store::{Document, Store};
use crowdnet_telemetry::Telemetry;
use std::sync::Arc;

/// Configuration for a full crawl.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Worker threads for each stage.
    pub workers: usize,
    /// BFS depth/entity budgets.
    pub bfs: BfsConfig,
    /// Retry policy shared by all stages.
    pub retry: RetryPolicy,
    /// Simulated crawl machines (each registers Twitter apps).
    pub twitter_owners: Vec<String>,
    /// Twitter apps per owner (≤ 5, the service cap).
    pub twitter_apps_per_owner: usize,
    /// Transient-fault rate injected into every API (0.0 = reliable).
    pub fault_rate: f64,
    /// Seed for fault injection.
    pub fault_seed: u64,
    /// Observability sink shared by every stage. The crawler binds its
    /// `SimClock` into it (unless a caller bound a clock first) so spans
    /// and events carry virtual timestamps.
    pub telemetry: Telemetry,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            workers: 4,
            bfs: BfsConfig::default(),
            retry: RetryPolicy::default(),
            twitter_owners: vec!["machine-1".into(), "machine-2".into(), "machine-3".into()],
            twitter_apps_per_owner: 5,
            fault_rate: 0.0,
            fault_seed: 0,
            telemetry: Telemetry::new(),
        }
    }
}

/// Aggregate counters from a full crawl.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    /// AngelList BFS counters.
    pub bfs: BfsStats,
    /// CrunchBase augmentation counters.
    pub augment: AugmentStats,
    /// Facebook counters.
    pub facebook: SocialStats,
    /// Twitter counters.
    pub twitter: SocialStats,
    /// Syndicate documents stored.
    pub syndicates: usize,
    /// Total virtual milliseconds the crawl's clock advanced.
    pub virtual_elapsed_ms: u64,
}

/// The end-to-end crawler over a simulated world.
pub struct Crawler {
    world: Arc<World>,
    clock: Arc<SimClock>,
    config: CrawlConfig,
}

impl Crawler {
    /// Build a crawler over `world`.
    pub fn new(world: Arc<World>, config: CrawlConfig) -> Crawler {
        Crawler {
            world,
            clock: Arc::new(SimClock::new()),
            config,
        }
    }

    /// The crawler's virtual clock (shared with every simulated service).
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.clock)
    }

    /// Run all four stages, writing into `store`.
    pub fn run(&self, store: &Store) -> Result<CrawlStats, CrawlError> {
        let cfg = &self.config;
        let dyn_clock: Arc<dyn Clock> = self.clock.clone();
        let start_ms = self.clock.now_ms();

        // Time telemetry on the crawl's virtual clock unless an outer
        // component (the repro binary) already bound a real one.
        let telemetry = cfg.telemetry.clone();
        let sim = self.clock.clone();
        telemetry.bind_clock_if_unbound(Arc::new(move || sim.now_ms()));

        // Stage 1: AngelList BFS.
        let angellist = AngelListApi::new(
            Arc::clone(&self.world),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed),
        );
        let mut bfs_cfg = cfg.bfs.clone();
        bfs_cfg.workers = cfg.workers;
        bfs_cfg.retry = cfg.retry;
        bfs_cfg.telemetry = telemetry.clone();
        let bfs = {
            let _span = telemetry.span("crawl.angellist");
            crawl_angellist(&angellist, store, &dyn_clock, &bfs_cfg)?
        };
        let syndicates = {
            let _span = telemetry.span("crawl.syndicates");
            crate::syndicates::crawl_syndicates(&angellist, store, &dyn_clock, &cfg.retry, &telemetry)?
        };

        // Stage 2: CrunchBase augmentation.
        let crunchbase = CrunchBaseApi::new(
            Arc::clone(&self.world),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 1),
        );
        let augment = {
            let _span = telemetry.span("crawl.crunchbase");
            augment_crunchbase(&crunchbase, store, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
        };

        // Stage 3: Facebook pages.
        let facebook = FacebookApi::new(
            Arc::clone(&self.world),
            self.clock.clone(),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 2),
        );
        let fb = {
            let _span = telemetry.span("crawl.facebook");
            crawl_facebook(&facebook, store, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
        };

        // Stage 4: Twitter profiles through the token pool.
        let twitter = TwitterApi::new(
            Arc::clone(&self.world),
            self.clock.clone(),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 3),
        );
        let owners: Vec<&str> = cfg.twitter_owners.iter().map(String::as_str).collect();
        if owners.is_empty() {
            return Err(CrawlError::Config("need at least one twitter owner".into()));
        }
        let pool = TokenPool::register(
            &twitter,
            self.clock.clone(),
            &owners,
            cfg.twitter_apps_per_owner,
        )
        .map_err(CrawlError::Api)?;
        let tw = {
            let _span = telemetry.span("crawl.twitter");
            crawl_twitter(&twitter, store, &pool, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
        };

        Ok(CrawlStats {
            bfs,
            augment,
            facebook: fb,
            twitter: tw,
            syndicates,
            virtual_elapsed_ms: self.clock.now_ms() - start_ms,
        })
    }
}

/// Checkpoint key for the full pipeline, stored in [`NS_CHECKPOINT`].
pub const PIPELINE_CHECKPOINT_KEY: &str = "pipeline";

/// Persisted progress of a [`Crawler::run_resumable`] invocation: which
/// stages have completed (with their final counters) plus the Twitter
/// token pool's park state. The AngelList BFS stage keeps its own
/// finer-grained per-round checkpoint ([`crate::bfs::Checkpoint`]), so it
/// has no entry here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineCheckpoint {
    /// Syndicate documents stored, once that stage finished.
    pub syndicates: Option<usize>,
    /// CrunchBase augmentation counters, once that stage finished.
    pub augment: Option<AugmentStats>,
    /// Facebook counters, once that stage finished.
    pub facebook: Option<SocialStats>,
    /// Twitter counters, once that stage finished.
    pub twitter: Option<SocialStats>,
    /// Twitter token park state as `(token, remaining_park_ms)`, exported
    /// when the Twitter stage finishes so a follow-up crawl in a restarted
    /// process (fresh virtual clock) still honours unexpired windows.
    pub tokens: Vec<(String, u64)>,
}

fn encode_social(s: &SocialStats) -> Value {
    obj! {
        "facebook_pages" => s.facebook_pages,
        "twitter_profiles" => s.twitter_profiles,
        "missing" => s.missing,
        "bad_urls" => s.bad_urls,
        "already_stored" => s.already_stored,
    }
}

fn decode_social(v: &Value) -> Option<SocialStats> {
    let u = |f: &str| v.get(f).and_then(Value::as_u64).map(|x| x as usize);
    Some(SocialStats {
        facebook_pages: u("facebook_pages")?,
        twitter_profiles: u("twitter_profiles")?,
        missing: u("missing")?,
        bad_urls: u("bad_urls")?,
        already_stored: u("already_stored")?,
    })
}

impl PipelineCheckpoint {
    /// Serialize to a JSON document body.
    pub fn encode(&self) -> Value {
        obj! {
            "syndicates" => self.syndicates.map(|n| n as u64),
            "augment" => self.augment.as_ref().map(|a| obj! {
                "direct" => a.direct,
                "by_search" => a.by_search,
                "ambiguous" => a.ambiguous,
                "not_found" => a.not_found,
                "skipped_existing" => a.skipped_existing,
            }),
            "facebook" => self.facebook.as_ref().map(encode_social),
            "twitter" => self.twitter.as_ref().map(encode_social),
            "tokens" => Value::Arr(
                self.tokens
                    .iter()
                    .map(|(t, ms)| crowdnet_json::arr![t.as_str(), *ms])
                    .collect::<Vec<_>>(),
            ),
        }
    }

    /// Deserialize; `None` for malformed documents.
    pub fn decode(v: &Value) -> Option<PipelineCheckpoint> {
        let present = |field: &str| v.get(field).filter(|x| !x.is_null());
        let syndicates = match present("syndicates") {
            None => None,
            Some(n) => Some(n.as_u64()? as usize),
        };
        let augment = match present("augment") {
            None => None,
            Some(a) => {
                let u = |f: &str| a.get(f).and_then(Value::as_u64).map(|x| x as usize);
                Some(AugmentStats {
                    direct: u("direct")?,
                    by_search: u("by_search")?,
                    ambiguous: u("ambiguous")?,
                    not_found: u("not_found")?,
                    skipped_existing: u("skipped_existing")?,
                })
            }
        };
        let facebook = match present("facebook") {
            None => None,
            Some(s) => Some(decode_social(s)?),
        };
        let twitter = match present("twitter") {
            None => None,
            Some(s) => Some(decode_social(s)?),
        };
        let tokens = v
            .get("tokens")?
            .as_arr()?
            .iter()
            .map(|e| Some((e.at(0)?.as_str()?.to_string(), e.at(1)?.as_u64()?)))
            .collect::<Option<Vec<_>>>()?;
        Some(PipelineCheckpoint { syndicates, augment, facebook, twitter, tokens })
    }
}

/// Load the latest persisted pipeline checkpoint, if any.
pub fn load_pipeline_checkpoint(
    store: &Store,
) -> Result<Option<PipelineCheckpoint>, CrawlError> {
    match store.scan(NS_CHECKPOINT) {
        Ok(docs) => Ok(docs
            .into_iter()
            .rfind(|d| d.key == PIPELINE_CHECKPOINT_KEY)
            .and_then(|d| PipelineCheckpoint::decode(&d.body))),
        Err(crowdnet_store::StoreError::NamespaceNotFound(_)) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn save_pipeline_checkpoint(store: &Store, cp: &PipelineCheckpoint) -> Result<(), CrawlError> {
    store
        .put(NS_CHECKPOINT, Document::new(PIPELINE_CHECKPOINT_KEY, cp.encode()))
        .map_err(CrawlError::from)?;
    Ok(())
}

impl Crawler {
    /// Run all stages like [`Crawler::run`], persisting progress into the
    /// store so an interrupted crawl (process kill, torn write, full disk)
    /// continues from its last durable position instead of starting over.
    ///
    /// Totals from a resumed run equal an uninterrupted run's: completed
    /// stages replay their checkpointed counters, and a stage interrupted
    /// mid-flight skips documents that already landed (counted in
    /// `already_stored` / `skipped_existing` and under the
    /// `crawl.resume.skipped` telemetry counter) so the store never holds
    /// duplicates.
    pub fn run_resumable(&self, store: &Store) -> Result<CrawlStats, CrawlError> {
        let cfg = &self.config;
        let dyn_clock: Arc<dyn Clock> = self.clock.clone();
        let start_ms = self.clock.now_ms();

        let telemetry = cfg.telemetry.clone();
        let sim = self.clock.clone();
        telemetry.bind_clock_if_unbound(Arc::new(move || sim.now_ms()));

        let mut cp = match load_pipeline_checkpoint(store)? {
            Some(cp) => {
                telemetry.counter("crawl.resume.runs").inc();
                cp
            }
            None => PipelineCheckpoint::default(),
        };
        let stages_skipped = telemetry.counter("crawl.resume.stages_skipped");

        // Stage 1: AngelList BFS — checkpoints itself per round.
        let angellist = AngelListApi::new(
            Arc::clone(&self.world),
            FaultModel::new(cfg.fault_rate, cfg.fault_seed),
        );
        let mut bfs_cfg = cfg.bfs.clone();
        bfs_cfg.workers = cfg.workers;
        bfs_cfg.retry = cfg.retry;
        bfs_cfg.telemetry = telemetry.clone();
        let bfs = {
            let _span = telemetry.span("crawl.angellist");
            crawl_angellist_resumable(&angellist, store, &dyn_clock, &bfs_cfg)?
        };

        let syndicates = match cp.syndicates {
            Some(n) => {
                stages_skipped.inc();
                n
            }
            None => {
                let n = {
                    let _span = telemetry.span("crawl.syndicates");
                    crate::syndicates::crawl_syndicates(
                        &angellist, store, &dyn_clock, &cfg.retry, &telemetry,
                    )?
                };
                cp.syndicates = Some(n);
                save_pipeline_checkpoint(store, &cp)?;
                n
            }
        };

        let augment = match cp.augment.clone() {
            Some(a) => {
                stages_skipped.inc();
                a
            }
            None => {
                let crunchbase = CrunchBaseApi::new(
                    Arc::clone(&self.world),
                    FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 1),
                );
                let a = {
                    let _span = telemetry.span("crawl.crunchbase");
                    augment_crunchbase(
                        &crunchbase, store, &dyn_clock, &cfg.retry, cfg.workers, &telemetry,
                    )?
                };
                cp.augment = Some(a.clone());
                save_pipeline_checkpoint(store, &cp)?;
                a
            }
        };

        let fb = match cp.facebook.clone() {
            Some(s) => {
                stages_skipped.inc();
                s
            }
            None => {
                let facebook = FacebookApi::new(
                    Arc::clone(&self.world),
                    self.clock.clone(),
                    FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 2),
                );
                let s = {
                    let _span = telemetry.span("crawl.facebook");
                    crawl_facebook(&facebook, store, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
                };
                cp.facebook = Some(s.clone());
                save_pipeline_checkpoint(store, &cp)?;
                s
            }
        };

        let tw = match cp.twitter.clone() {
            Some(s) => {
                stages_skipped.inc();
                s
            }
            None => {
                let twitter = TwitterApi::new(
                    Arc::clone(&self.world),
                    self.clock.clone(),
                    FaultModel::new(cfg.fault_rate, cfg.fault_seed ^ 3),
                );
                let owners: Vec<&str> = cfg.twitter_owners.iter().map(String::as_str).collect();
                if owners.is_empty() {
                    return Err(CrawlError::Config("need at least one twitter owner".into()));
                }
                let pool = TokenPool::register(
                    &twitter,
                    self.clock.clone(),
                    &owners,
                    cfg.twitter_apps_per_owner,
                )
                .map_err(CrawlError::Api)?;
                pool.restore_state(&cp.tokens);
                let s = {
                    let _span = telemetry.span("crawl.twitter");
                    crawl_twitter(&twitter, store, &pool, &dyn_clock, &cfg.retry, cfg.workers, &telemetry)?
                };
                cp.tokens = pool.export_state();
                cp.twitter = Some(s.clone());
                save_pipeline_checkpoint(store, &cp)?;
                s
            }
        };

        Ok(CrawlStats {
            bfs,
            augment,
            facebook: fb,
            twitter: tw,
            syndicates,
            virtual_elapsed_ms: self.clock.now_ms() - start_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::NS_CRUNCHBASE;
    use crate::bfs::{NS_COMPANIES, NS_USERS};
    use crate::social::{NS_FACEBOOK, NS_TWITTER};
    use crowdnet_socialsim::WorldConfig;

    #[test]
    fn full_pipeline_populates_all_namespaces() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let store = Store::memory(4);
        let crawler = Crawler::new(Arc::clone(&world), CrawlConfig::default());
        let stats = crawler.run(&store).unwrap();

        assert!(stats.bfs.companies > 0);
        assert!(stats.bfs.users > 0);
        assert!(stats.augment.resolved() > 0);
        assert!(stats.facebook.facebook_pages > 0);
        assert!(stats.twitter.twitter_profiles > 0);

        let namespaces = store.namespaces().unwrap();
        for required in [NS_COMPANIES, NS_USERS, NS_CRUNCHBASE, NS_FACEBOOK, NS_TWITTER] {
            assert!(namespaces.contains(&required.to_string()), "missing {required}");
        }
        // The syndicate namespace appears exactly when syndicates exist
        // (tiny worlds may legitimately have none).
        let has_ns = namespaces.contains(&crate::syndicates::NS_SYNDICATES.to_string());
        assert_eq!(has_ns, stats.syndicates > 0);
    }

    #[test]
    fn pipeline_with_faults_still_completes() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(7)));
        let store = Store::memory(4);
        let cfg = CrawlConfig {
            fault_rate: 0.10,
            fault_seed: 99,
            ..CrawlConfig::default()
        };
        let crawler = Crawler::new(Arc::clone(&world), cfg);
        let stats = crawler.run(&store).unwrap();
        // Everything the BFS found with a Facebook link gets fetched even
        // under a 10% transient-fault rate.
        let linked_fb = world.companies.iter().filter(|c| c.facebook.is_some()).count();
        assert!(stats.facebook.facebook_pages as f64 >= linked_fb as f64 * 0.9);
        assert!(stats.facebook.facebook_pages <= linked_fb);
    }

    fn namespace_keys(store: &Store, ns: &str) -> Vec<String> {
        match store.scan(ns) {
            Ok(docs) => {
                let mut keys: Vec<String> = docs.into_iter().map(|d| d.key).collect();
                keys.sort();
                keys
            }
            Err(_) => Vec::new(),
        }
    }

    const DATA_NAMESPACES: [&str; 6] = [
        NS_COMPANIES,
        NS_USERS,
        NS_CRUNCHBASE,
        NS_FACEBOOK,
        NS_TWITTER,
        crate::syndicates::NS_SYNDICATES,
    ];

    #[test]
    fn resumable_run_matches_plain_run_on_a_fresh_store() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let plain_store = Store::memory(4);
        let plain = Crawler::new(Arc::clone(&world), CrawlConfig::default())
            .run(&plain_store)
            .unwrap();
        let resumable_store = Store::memory(4);
        let resumed = Crawler::new(Arc::clone(&world), CrawlConfig::default())
            .run_resumable(&resumable_store)
            .unwrap();

        assert_eq!(plain.bfs.companies, resumed.bfs.companies);
        assert_eq!(plain.bfs.users, resumed.bfs.users);
        assert_eq!(plain.syndicates, resumed.syndicates);
        assert_eq!(plain.augment, resumed.augment);
        assert_eq!(plain.facebook, resumed.facebook);
        assert_eq!(plain.twitter, resumed.twitter);
        for ns in DATA_NAMESPACES {
            assert_eq!(
                namespace_keys(&plain_store, ns),
                namespace_keys(&resumable_store, ns),
                "namespace {ns} diverged"
            );
        }
    }

    #[test]
    fn second_resumable_run_replays_the_checkpoint_without_refetching() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let store = Store::memory(4);
        let telemetry = Telemetry::new();
        let cfg = CrawlConfig { telemetry: telemetry.clone(), ..CrawlConfig::default() };
        let first = Crawler::new(Arc::clone(&world), cfg.clone()).run_resumable(&store).unwrap();
        let before: Vec<Vec<String>> =
            DATA_NAMESPACES.iter().map(|ns| namespace_keys(&store, ns)).collect();

        let second = Crawler::new(Arc::clone(&world), cfg).run_resumable(&store).unwrap();
        // Every stage short-circuits off the persisted checkpoint: same
        // counters, not one extra document.
        assert_eq!(first.augment, second.augment);
        assert_eq!(first.facebook, second.facebook);
        assert_eq!(first.twitter, second.twitter);
        assert_eq!(first.syndicates, second.syndicates);
        assert_eq!(first.bfs.companies, second.bfs.companies);
        assert_eq!(telemetry.counter("crawl.resume.runs").value(), 1);
        assert_eq!(telemetry.counter("crawl.resume.stages_skipped").value(), 4);
        let after: Vec<Vec<String>> =
            DATA_NAMESPACES.iter().map(|ns| namespace_keys(&store, ns)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn pipeline_checkpoint_roundtrips_through_json() {
        let cp = PipelineCheckpoint {
            syndicates: Some(17),
            augment: Some(AugmentStats {
                direct: 1,
                by_search: 2,
                ambiguous: 3,
                not_found: 4,
                skipped_existing: 5,
            }),
            facebook: None,
            twitter: Some(SocialStats {
                facebook_pages: 0,
                twitter_profiles: 9,
                missing: 1,
                bad_urls: 2,
                already_stored: 3,
            }),
            tokens: vec![("tok-a".into(), 0), ("tok-b".into(), 900_000)],
        };
        assert_eq!(PipelineCheckpoint::decode(&cp.encode()), Some(cp));
        assert_eq!(
            PipelineCheckpoint::decode(&PipelineCheckpoint::default().encode()),
            Some(PipelineCheckpoint::default())
        );
    }

    #[test]
    fn crawl_counts_mirror_world_marginals() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let store = Store::memory(4);
        let crawler = Crawler::new(Arc::clone(&world), CrawlConfig::default());
        let stats = crawler.run(&store).unwrap();
        // The BFS reaches essentially every company; FB/TW crawl exactly the
        // linked subsets of what was crawled.
        let fb_linked = world.companies.iter().filter(|c| c.facebook.is_some()).count();
        let tw_linked = world.companies.iter().filter(|c| c.twitter.is_some()).count();
        assert!(stats.facebook.facebook_pages <= fb_linked);
        assert!(stats.twitter.twitter_profiles <= tw_linked);
        assert!(stats.facebook.facebook_pages as f64 >= fb_linked as f64 * 0.9);
        assert!(stats.twitter.twitter_profiles as f64 >= tw_linked as f64 * 0.9);
    }
}
