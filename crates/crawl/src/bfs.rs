//! The breadth-first frontier crawl over AngelList (§3).
//!
//! "We first collect information on all currently raising startups. We call
//! this set the frontier. We next collect a list of all users that are
//! following a startup in the frontier. This set of users becomes the new
//! frontier, and we collect the set of users followed by all users in the
//! frontier, as well as all startups and users followed by a user in the
//! frontier. As before, we make this newly collected set the frontier,
//! ignoring any startups or users that have been in the frontier before."
//!
//! The implementation is a level-synchronous parallel BFS: each round's
//! frontier is split across worker threads; every fetched profile is written
//! to the store as a JSON document; newly discovered ids that were never in
//! any frontier join the next round.

use crate::error::CrawlError;
use crate::retry::{with_retry, with_retry_metered, RetryPolicy, RetryTelemetry};
use crowdnet_json::Value;
use crowdnet_telemetry::{Level, Telemetry};
use crowdnet_socialsim::sources::angellist::AngelListApi;
use crowdnet_socialsim::sources::ApiError;
use crowdnet_socialsim::Clock;
use crowdnet_store::{Document, Store};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Store namespace for AngelList company documents.
pub const NS_COMPANIES: &str = "angellist/companies";
/// Store namespace for AngelList user documents.
pub const NS_USERS: &str = "angellist/users";

/// One unit of frontier work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// A startup id.
    Company(u32),
    /// A user id.
    User(u32),
}

/// BFS crawl configuration.
#[derive(Debug, Clone)]
pub struct BfsConfig {
    /// Parallel worker threads per round.
    pub workers: usize,
    /// Maximum BFS rounds ("after several rounds, we are able to collect
    /// more than 700K startups").
    pub max_rounds: usize,
    /// Stop after roughly this many entities (None = exhaust the graph).
    pub max_entities: Option<usize>,
    /// Retry policy for flaky calls.
    pub retry: RetryPolicy,
    /// Sink for per-request counters, frontier gauges and round events.
    /// A default (private) sink records everything and reports nothing.
    pub telemetry: Telemetry,
}

impl Default for BfsConfig {
    fn default() -> Self {
        BfsConfig {
            workers: 4,
            max_rounds: 8,
            max_entities: None,
            retry: RetryPolicy::default(),
            telemetry: Telemetry::new(),
        }
    }
}

/// Counters from a BFS run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BfsStats {
    /// Company profiles stored.
    pub companies: usize,
    /// User profiles stored.
    pub users: usize,
    /// Rounds executed (including the seed round).
    pub rounds: usize,
    /// Entities skipped because the API permanently errored on them.
    pub skipped: usize,
}

/// Fetch every page of a paginated endpoint, concatenating `items`.
fn fetch_all_pages<F>(mut fetch: F) -> Result<Vec<Value>, CrawlError>
where
    F: FnMut(usize) -> Result<Value, CrawlError>,
{
    let mut items = Vec::new();
    let mut page = 1usize;
    loop {
        let doc = fetch(page)?;
        let last = doc.get("last_page").and_then(Value::as_u64).unwrap_or(1);
        if let Some(arr) = doc.get("items").and_then(Value::as_arr) {
            items.extend(arr.iter().cloned());
        }
        if page as u64 >= last {
            return Ok(items);
        }
        page += 1;
    }
}

/// Run the BFS crawl, writing documents into `store` and returning counters.
pub fn crawl_angellist(
    api: &AngelListApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    cfg: &BfsConfig,
) -> Result<BfsStats, CrawlError> {
    if cfg.workers == 0 {
        return Err(CrawlError::Config("workers must be ≥ 1".into()));
    }
    let telemetry = &cfg.telemetry;
    let rt = RetryTelemetry::for_source(telemetry, "angellist");
    let companies_counter = telemetry.counter("crawl.bfs.companies");
    let users_counter = telemetry.counter("crawl.bfs.users");
    let skipped_counter = telemetry.counter("crawl.bfs.skipped");
    let frontier_gauge = telemetry.gauge("crawl.bfs.frontier");
    let depth_gauge = telemetry.gauge("crawl.bfs.depth");

    // Seed frontier: all currently raising startups.
    let seed_items = fetch_all_pages(|page| {
        with_retry_metered(clock.as_ref(), &cfg.retry, Some(&rt), || {
            api.raising_startups(page)
        })
    })?;
    let mut frontier: Vec<Entity> = seed_items
        .iter()
        .filter_map(|item| item.get("id").and_then(Value::as_u64))
        .map(|id| Entity::Company(id as u32))
        .collect();

    let visited: Mutex<HashSet<Entity>> = Mutex::new(frontier.iter().copied().collect());
    let stats = Mutex::new(BfsStats::default());
    let stored = AlreadyStored::empty(telemetry);

    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds < cfg.max_rounds {
        rounds += 1;
        if let Some(cap) = cfg.max_entities {
            let seen = visited.lock().len();
            if seen >= cap {
                break;
            }
        }
        frontier_gauge.set(frontier.len() as u64);
        depth_gauge.set(rounds as u64);
        telemetry.event(
            Level::Progress,
            "crawl.bfs",
            format!("round {rounds}: frontier {}", frontier.len()),
        );

        let next: Mutex<Vec<Entity>> = Mutex::new(Vec::new());
        let queue: Mutex<std::vec::IntoIter<Entity>> =
            Mutex::new(std::mem::take(&mut frontier).into_iter());

        std::thread::scope(|scope| {
            for _ in 0..cfg.workers {
                scope.spawn(|| loop {
                    let entity = { queue.lock().next() };
                    let Some(entity) = entity else { break };
                    match crawl_entity(api, store, clock, &cfg.retry, &rt, &stored, entity) {
                        Ok(discovered) => {
                            match entity {
                                Entity::Company(_) => companies_counter.inc(),
                                Entity::User(_) => users_counter.inc(),
                            }
                            let mut stats = stats.lock();
                            match entity {
                                Entity::Company(_) => stats.companies += 1,
                                Entity::User(_) => stats.users += 1,
                            }
                            drop(stats);
                            let mut visited = visited.lock();
                            let mut next = next.lock();
                            for d in discovered {
                                if visited.insert(d) {
                                    next.push(d);
                                }
                            }
                        }
                        Err(CrawlError::Api(_)) => {
                            skipped_counter.inc();
                            stats.lock().skipped += 1;
                        }
                        Err(_) => {
                            // Store/config errors are fatal; surface by
                            // draining the queue so the scope exits.
                            queue.lock().by_ref().for_each(drop);
                        }
                    }
                });
            }
        });

        frontier = next.into_inner();
    }
    frontier_gauge.set(frontier.len() as u64);

    let mut out = stats.into_inner();
    out.rounds = rounds;
    Ok(out)
}

/// Profiles already persisted by an interrupted earlier run. A resumed
/// round re-fetches its frontier (the outgoing links must be rediscovered
/// to rebuild the next frontier) but must not re-put profiles that already
/// landed: the store is append-only, so a second put would duplicate the
/// document and break resume-equals-uninterrupted equality.
struct AlreadyStored {
    companies: HashSet<String>,
    users: HashSet<String>,
    skipped: crowdnet_telemetry::Counter,
}

impl AlreadyStored {
    /// Nothing stored yet (fresh crawls).
    fn empty(telemetry: &Telemetry) -> AlreadyStored {
        AlreadyStored {
            companies: HashSet::new(),
            users: HashSet::new(),
            skipped: telemetry.counter("crawl.resume.skipped"),
        }
    }

    /// Everything the store already holds (resumed crawls).
    fn scan(store: &Store, telemetry: &Telemetry) -> Result<AlreadyStored, CrawlError> {
        Ok(AlreadyStored {
            companies: crate::social::existing_keys(store, NS_COMPANIES)?,
            users: crate::social::existing_keys(store, NS_USERS)?,
            skipped: telemetry.counter("crawl.resume.skipped"),
        })
    }
}

/// Crawl one entity: store its profile, return the ids it links to.
fn crawl_entity(
    api: &AngelListApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    retry: &RetryPolicy,
    rt: &RetryTelemetry,
    stored: &AlreadyStored,
    entity: Entity,
) -> Result<Vec<Entity>, CrawlError> {
    match entity {
        Entity::Company(id) => {
            let key = format!("company:{id}");
            if stored.companies.contains(&key) {
                stored.skipped.inc();
            } else {
                let profile =
                    with_retry_metered(clock.as_ref(), retry, Some(rt), || api.startup(id))?;
                store.put(NS_COMPANIES, Document::new(key, profile))?;
            }
            let followers = fetch_all_pages(|page| {
                with_retry_metered(clock.as_ref(), retry, Some(rt), || {
                    api.startup_followers(id, page)
                })
            })?;
            Ok(followers
                .iter()
                .filter_map(Value::as_u64)
                .map(|u| Entity::User(u as u32))
                .collect())
        }
        Entity::User(id) => {
            let key = format!("user:{id}");
            if stored.users.contains(&key) {
                stored.skipped.inc();
            } else {
                let profile =
                    with_retry_metered(clock.as_ref(), retry, Some(rt), || api.user(id))?;
                store.put(NS_USERS, Document::new(key, profile))?;
            }
            let mut discovered = Vec::new();
            let startups = fetch_all_pages(|page| {
                with_retry_metered(clock.as_ref(), retry, Some(rt), || {
                    api.user_following_startups(id, page)
                })
            })?;
            discovered.extend(
                startups
                    .iter()
                    .filter_map(Value::as_u64)
                    .map(|c| Entity::Company(c as u32)),
            );
            let users = fetch_all_pages(|page| {
                with_retry_metered(clock.as_ref(), retry, Some(rt), || {
                    api.user_following_users(id, page)
                })
            })?;
            discovered.extend(
                users
                    .iter()
                    .filter_map(Value::as_u64)
                    .map(|u| Entity::User(u as u32)),
            );
            Ok(discovered)
        }
    }
}

// Silence an unused-import warning when compiled without tests: ApiError is
// referenced in match documentation contexts.
#[allow(unused)]
fn _uses(_: ApiError) {}

/// Store namespace holding crawl checkpoints.
pub const NS_CHECKPOINT: &str = "crawl/state";
/// Checkpoint document key for the AngelList BFS.
pub const CHECKPOINT_KEY: &str = "angellist-bfs";

fn encode_entity(e: Entity) -> Value {
    match e {
        Entity::Company(id) => crowdnet_json::arr![0u32, id],
        Entity::User(id) => crowdnet_json::arr![1u32, id],
    }
}

fn decode_entity(v: &Value) -> Option<Entity> {
    let tag = v.at(0)?.as_u64()?;
    let id = v.at(1)?.as_u64()? as u32;
    match tag {
        0 => Some(Entity::Company(id)),
        1 => Some(Entity::User(id)),
        _ => None,
    }
}

/// A resumable crawl's persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Entities already fetched or queued (never re-fetched on resume).
    pub visited: Vec<Entity>,
    /// The frontier to process next.
    pub frontier: Vec<Entity>,
    /// Counters so far.
    pub stats: BfsStats,
    /// True once the crawl exhausted its frontier.
    pub complete: bool,
}

impl Checkpoint {
    /// Serialize to a JSON document body.
    pub fn encode(&self) -> Value {
        crowdnet_json::obj! {
            "visited" => Value::Arr(self.visited.iter().map(|&e| encode_entity(e)).collect::<Vec<_>>()),
            "frontier" => Value::Arr(self.frontier.iter().map(|&e| encode_entity(e)).collect::<Vec<_>>()),
            "companies" => self.stats.companies,
            "users" => self.stats.users,
            "rounds" => self.stats.rounds,
            "skipped" => self.stats.skipped,
            "complete" => self.complete,
        }
    }

    /// Deserialize; `None` for malformed documents.
    pub fn decode(v: &Value) -> Option<Checkpoint> {
        let list = |field: &str| -> Option<Vec<Entity>> {
            v.get(field)?
                .as_arr()?
                .iter()
                .map(decode_entity)
                .collect::<Option<Vec<_>>>()
        };
        Some(Checkpoint {
            visited: list("visited")?,
            frontier: list("frontier")?,
            stats: BfsStats {
                companies: v.get("companies")?.as_u64()? as usize,
                users: v.get("users")?.as_u64()? as usize,
                rounds: v.get("rounds")?.as_u64()? as usize,
                skipped: v.get("skipped")?.as_u64()? as usize,
            },
            complete: v.get("complete")?.as_bool()?,
        })
    }
}

/// Load the latest checkpoint from the store, if any.
pub fn load_checkpoint(store: &Store) -> Result<Option<Checkpoint>, CrawlError> {
    match store.scan(NS_CHECKPOINT) {
        Ok(docs) => Ok(docs
            .into_iter().rfind(|d| d.key == CHECKPOINT_KEY)
            .and_then(|d| Checkpoint::decode(&d.body))),
        Err(crowdnet_store::StoreError::NamespaceNotFound(_)) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn save_checkpoint(store: &Store, cp: &Checkpoint) -> Result<(), CrawlError> {
    store
        .put(NS_CHECKPOINT, Document::new(CHECKPOINT_KEY, cp.encode()))
        .map_err(Into::into)
}

/// Resumable BFS: like [`crawl_angellist`], but persists a checkpoint after
/// every round and, when a checkpoint exists in the store, continues from it
/// instead of starting over (never re-fetching visited entities — the
/// recovery behaviour a multi-day production crawl needs).
pub fn crawl_angellist_resumable(
    api: &AngelListApi,
    store: &Store,
    clock: &Arc<dyn Clock>,
    cfg: &BfsConfig,
) -> Result<BfsStats, CrawlError> {
    if cfg.workers == 0 {
        return Err(CrawlError::Config("workers must be ≥ 1".into()));
    }
    let rt = RetryTelemetry::for_source(&cfg.telemetry, "angellist");

    let (mut frontier, visited_init, stats_init, rounds_done) = match load_checkpoint(store)? {
        Some(cp) if cp.complete => return Ok(cp.stats),
        Some(cp) => {
            let rounds = cp.stats.rounds;
            (cp.frontier.clone(), cp.visited, cp.stats, rounds)
        }
        None => {
            let seed_items = fetch_all_pages(|page| {
                with_retry(clock.as_ref(), &cfg.retry, || api.raising_startups(page))
            })?;
            let frontier: Vec<Entity> = seed_items
                .iter()
                .filter_map(|item| item.get("id").and_then(Value::as_u64))
                .map(|id| Entity::Company(id as u32))
                .collect();
            (frontier.clone(), frontier, BfsStats::default(), 0)
        }
    };

    let visited: Mutex<HashSet<Entity>> = Mutex::new(visited_init.into_iter().collect());
    let stats = Mutex::new(stats_init);
    // A crash mid-round replays that round's frontier: profiles that
    // already landed are skipped, only their links are rediscovered.
    let stored = AlreadyStored::scan(store, &cfg.telemetry)?;

    let mut rounds = rounds_done;
    while !frontier.is_empty() && rounds < cfg.max_rounds {
        rounds += 1;
        if let Some(cap) = cfg.max_entities {
            if visited.lock().len() >= cap {
                break;
            }
        }
        let next: Mutex<Vec<Entity>> = Mutex::new(Vec::new());
        let queue: Mutex<std::vec::IntoIter<Entity>> =
            Mutex::new(std::mem::take(&mut frontier).into_iter());
        std::thread::scope(|scope| {
            for _ in 0..cfg.workers {
                scope.spawn(|| loop {
                    let entity = { queue.lock().next() };
                    let Some(entity) = entity else { break };
                    match crawl_entity(api, store, clock, &cfg.retry, &rt, &stored, entity) {
                        Ok(discovered) => {
                            let mut stats = stats.lock();
                            match entity {
                                Entity::Company(_) => stats.companies += 1,
                                Entity::User(_) => stats.users += 1,
                            }
                            drop(stats);
                            let mut visited = visited.lock();
                            let mut next = next.lock();
                            for d in discovered {
                                if visited.insert(d) {
                                    next.push(d);
                                }
                            }
                        }
                        Err(CrawlError::Api(_)) => {
                            stats.lock().skipped += 1;
                        }
                        Err(_) => {
                            queue.lock().by_ref().for_each(drop);
                        }
                    }
                });
            }
        });
        frontier = next.into_inner();

        // Persist progress: a crash after this point loses at most nothing;
        // a crash during the round re-fetches only that round's frontier.
        let mut snapshot_stats = stats.lock().clone();
        snapshot_stats.rounds = rounds;
        save_checkpoint(
            store,
            &Checkpoint {
                visited: visited.lock().iter().copied().collect(),
                frontier: frontier.clone(),
                stats: snapshot_stats,
                complete: frontier.is_empty(),
            },
        )?;
    }

    let mut out = stats.into_inner();
    out.rounds = rounds;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_socialsim::clock::SimClock;
    use crowdnet_socialsim::sources::FaultModel;
    use crowdnet_socialsim::{World, WorldConfig};

    fn setup(fault_rate: f64) -> (Arc<World>, AngelListApi, Store, Arc<dyn Clock>) {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let api = AngelListApi::new(Arc::clone(&world), FaultModel::new(fault_rate, 5));
        let store = Store::memory(4);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        (world, api, store, clock)
    }

    #[test]
    fn bfs_discovers_most_of_the_graph() {
        let (world, api, store, clock) = setup(0.0);
        let stats = crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        assert!(stats.rounds >= 2);
        assert_eq!(stats.skipped, 0);
        // Most of the world is reachable from the raising seeds within the
        // default round budget.
        let coverage = stats.companies as f64 / world.companies.len() as f64;
        assert!(coverage > 0.9, "coverage {coverage}");
        assert_eq!(store.doc_count(NS_COMPANIES).unwrap(), stats.companies);
        assert_eq!(store.doc_count(NS_USERS).unwrap(), stats.users);
    }

    #[test]
    fn crawl_is_deterministic_in_document_set() {
        let (_, api, store, clock) = setup(0.0);
        let s1 = crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        let (_, api2, store2, clock2) = setup(0.0);
        let s2 = crawl_angellist(&api2, &store2, &clock2, &BfsConfig::default()).unwrap();
        assert_eq!(s1.companies, s2.companies);
        assert_eq!(s1.users, s2.users);
    }

    #[test]
    fn entity_budget_caps_the_crawl() {
        let (_, api, store, clock) = setup(0.0);
        let cfg = BfsConfig {
            max_entities: Some(100),
            ..BfsConfig::default()
        };
        let stats = crawl_angellist(&api, &store, &clock, &cfg).unwrap();
        // The cap is checked per round, so the crawl stops within a round of
        // crossing it: it must do real work, yet fetch strictly less and stop
        // strictly earlier than the unbudgeted crawl over the same world.
        let (_, api2, store2, clock2) = setup(0.0);
        let full = crawl_angellist(&api2, &store2, &clock2, &BfsConfig::default()).unwrap();
        assert!(stats.companies + stats.users >= 1);
        assert!(stats.companies + stats.users < full.companies + full.users);
        assert!(stats.rounds < full.rounds);
    }

    #[test]
    fn round_budget_caps_depth() {
        let (_, api, store, clock) = setup(0.0);
        let cfg = BfsConfig {
            max_rounds: 1,
            ..BfsConfig::default()
        };
        let stats = crawl_angellist(&api, &store, &clock, &cfg).unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.users, 0); // round 1 only crawls seed companies
        assert!(stats.companies > 0);
    }

    #[test]
    fn survives_transient_faults_via_retry() {
        let (world, api, store, clock) = setup(0.10);
        let stats = crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        // With 10% faults and 5 attempts, effectively everything succeeds.
        let coverage = stats.companies as f64 / world.companies.len() as f64;
        assert!(coverage > 0.85, "coverage {coverage}");
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let (_, api, store, clock) = setup(0.0);
        let cfg = BfsConfig {
            workers: 0,
            ..BfsConfig::default()
        };
        assert!(matches!(
            crawl_angellist(&api, &store, &clock, &cfg),
            Err(CrawlError::Config(_))
        ));
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let cp = Checkpoint {
            visited: vec![Entity::Company(3), Entity::User(9)],
            frontier: vec![Entity::User(12)],
            stats: BfsStats {
                companies: 1,
                users: 1,
                rounds: 2,
                skipped: 0,
            },
            complete: false,
        };
        let decoded = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded, cp);
        assert!(Checkpoint::decode(&crowdnet_json::obj! {"junk" => 1}).is_none());
    }

    #[test]
    fn resumable_crawl_matches_one_shot_crawl() {
        let (_, api, store, clock) = setup(0.0);
        let one_shot = crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();

        // Interrupted run: budget of 2 rounds, then resume to completion.
        let (_, api2, store2, clock2) = setup(0.0);
        let partial = crawl_angellist_resumable(
            &api2,
            &store2,
            &clock2,
            &BfsConfig {
                max_rounds: 2,
                ..BfsConfig::default()
            },
        )
        .unwrap();
        assert_eq!(partial.rounds, 2);
        assert!(partial.companies < one_shot.companies);
        let calls_after_partial = api2.calls();

        let resumed =
            crawl_angellist_resumable(&api2, &store2, &clock2, &BfsConfig::default()).unwrap();
        assert_eq!(resumed.companies, one_shot.companies);
        assert_eq!(resumed.users, one_shot.users);
        // Resume did real work but never re-fetched round-1/2 entities: its
        // call count is well under a full second crawl.
        let resume_calls = api2.calls() - calls_after_partial;
        assert!(
            resume_calls < api.calls(),
            "resume used {resume_calls} vs full {}",
            api.calls()
        );

        // A third invocation is a no-op served from the complete checkpoint.
        let calls_before_noop = api2.calls();
        let again =
            crawl_angellist_resumable(&api2, &store2, &clock2, &BfsConfig::default()).unwrap();
        assert_eq!(again.companies, one_shot.companies);
        assert_eq!(api2.calls(), calls_before_noop);
    }

    #[test]
    fn resumable_from_scratch_equals_plain_crawl() {
        let (_, api, store, clock) = setup(0.0);
        let plain = crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        let (_, api2, store2, clock2) = setup(0.0);
        let resumable =
            crawl_angellist_resumable(&api2, &store2, &clock2, &BfsConfig::default()).unwrap();
        assert_eq!(plain.companies, resumable.companies);
        assert_eq!(plain.users, resumable.users);
        // The completed checkpoint is marked complete.
        let cp = load_checkpoint(&store2).unwrap().unwrap();
        assert!(cp.complete);
    }

    #[test]
    fn stored_documents_parse_back_with_expected_fields() {
        let (_, api, store, clock) = setup(0.0);
        crawl_angellist(&api, &store, &clock, &BfsConfig::default()).unwrap();
        let docs = store.scan(NS_COMPANIES).unwrap();
        assert!(!docs.is_empty());
        for doc in docs.iter().take(50) {
            assert!(doc.key.starts_with("company:"));
            assert!(doc.body.get("name").is_some());
            assert!(doc.body.get("follower_count").is_some());
        }
        let users = store.scan(NS_USERS).unwrap();
        for doc in users.iter().take(50) {
            assert!(doc.key.starts_with("user:"));
            assert!(doc.body.get("role").is_some());
            assert!(doc.body.get("investments").is_some());
        }
    }
}
