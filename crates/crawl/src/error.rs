//! Crawl error type.

use crowdnet_socialsim::sources::ApiError;
use crowdnet_store::StoreError;
use std::fmt;

/// A crawl failure that survived the retry policy.
#[derive(Debug)]
pub enum CrawlError {
    /// An API call still failing after all retries.
    Api(ApiError),
    /// The store rejected a write or read.
    Store(StoreError),
    /// Configuration problem (no tokens, zero workers, …).
    Config(String),
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlError::Api(e) => write!(f, "API error after retries: {e}"),
            CrawlError::Store(e) => write!(f, "store error: {e}"),
            CrawlError::Config(msg) => write!(f, "crawl configuration error: {msg}"),
        }
    }
}

impl std::error::Error for CrawlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrawlError::Api(e) => Some(e),
            CrawlError::Store(e) => Some(e),
            CrawlError::Config(_) => None,
        }
    }
}

impl From<ApiError> for CrawlError {
    fn from(e: ApiError) -> Self {
        CrawlError::Api(e)
    }
}

impl From<StoreError> for CrawlError {
    fn from(e: StoreError) -> Self {
        CrawlError::Store(e)
    }
}
