//! Longitudinal crawling (§7, "Causality analysis").
//!
//! "We will then set up a daily data collection task that determines which
//! startups are currently fundraising on AngelList, and using various API
//! calls, we will gather the latest information related to their new tweets,
//! Facebook posts, increases in likes and followers, profile updates, and
//! press releases."
//!
//! [`run_study`] reproduces that design: a watchlist of currently-raising
//! startups is fixed on day 0; every `interval_days` the scheduler re-crawls
//! each watched company's AngelList profile, CrunchBase funding state and
//! social engagement into a **fresh store snapshot**, then lets the world
//! [`evolve`](World::evolve) until the next run. The resulting per-snapshot
//! time series is what `crowdnet-core`'s causality analysis consumes.

use crate::error::CrawlError;
use crowdnet_json::{obj, Value};
use crowdnet_socialsim::{World, WorldConfig};
use crowdnet_store::{Document, SnapshotId, Store};
use std::collections::HashSet;

/// Store namespace for longitudinal observations.
pub const NS_LONGITUDINAL: &str = "longitudinal/companies";

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Total simulated days.
    pub days: u32,
    /// Days between crawls (1 = the paper's daily task).
    pub interval_days: u32,
    /// Seed for world evolution.
    pub evolution_seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            days: 30,
            interval_days: 1,
            evolution_seed: 1,
        }
    }
}

/// One scheduled crawl's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Simulated day of the crawl.
    pub day: u32,
    /// Store snapshot holding that day's observations.
    pub snapshot: SnapshotId,
    /// Watchlist companies observed as funded by this day.
    pub funded_count: usize,
}

/// A longitudinal study driven one scheduled crawl at a time — the
/// step-wise form of [`run_study`]. External consumers (the ingest tier)
/// interleave their own work between days: crawl a day with
/// [`Study::advance`], drain the store's changefeed, publish an epoch,
/// repeat.
pub struct Study<'a> {
    world: World,
    store: &'a Store,
    cfg: StudyConfig,
    watchlist: Vec<u32>,
    day: u32,
    step: u32,
    /// Set by [`Study::resume`] when the last persisted snapshot is missing
    /// documents (a crash interrupted that day): the next [`Study::advance`]
    /// fills that snapshot in place instead of creating a new one.
    resume_fill: Option<SnapshotId>,
}

impl<'a> Study<'a> {
    /// Fix the day-0 watchlist (companies currently raising) and prepare
    /// the per-day loop. The world mutates between crawls.
    pub fn new(world: World, store: &'a Store, cfg: &StudyConfig) -> Result<Study<'a>, CrawlError> {
        if cfg.interval_days == 0 {
            return Err(CrawlError::Config("interval_days must be ≥ 1".into()));
        }
        let watchlist: Vec<u32> = world.raising_companies().map(|c| c.id.0).collect();
        if watchlist.is_empty() {
            return Err(CrawlError::Config("no raising companies to watch".into()));
        }
        Ok(Study {
            world,
            store,
            cfg: cfg.clone(),
            watchlist,
            day: 0,
            step: 0,
            resume_fill: None,
        })
    }

    /// Rebuild a study mid-flight from what `store` already holds — the
    /// restart path after a crash. Fully-crawled days are fast-forwarded by
    /// replaying the deterministic world evolution (never re-crawled); a
    /// day the crash interrupted is re-filled in place by the next
    /// [`Study::advance`], writing only the documents that never landed.
    /// The caller regenerates `world` from the same [`WorldConfig`] the
    /// original run used, so the resumed series is identical to an
    /// uninterrupted one.
    pub fn resume(world: World, store: &'a Store, cfg: &StudyConfig) -> Result<Study<'a>, CrawlError> {
        let mut study = Study::new(world, store, cfg)?;
        for &snap in &store.snapshots(NS_LONGITUDINAL) {
            let keys: HashSet<String> = store
                .scan_snapshot(NS_LONGITUDINAL, snap)
                .map_err(CrawlError::from)?
                .into_iter()
                .map(|d| d.key)
                .collect();
            let complete = study
                .watchlist
                .iter()
                .all(|id| keys.contains(&format!("company:{id}")));
            if complete {
                study
                    .world
                    .evolve(study.cfg.interval_days, study.step, study.cfg.evolution_seed);
                study.day += study.cfg.interval_days;
                study.step += 1;
            } else {
                // Under a crash model only the final snapshot can be
                // incomplete — the run ended there.
                study.resume_fill = Some(snap);
                break;
            }
        }
        Ok(study)
    }

    /// The day-0 watchlist of company ids under observation.
    pub fn watchlist(&self) -> &[u32] {
        &self.watchlist
    }

    /// Crawl the next scheduled day into a fresh store snapshot, then let
    /// the world evolve until the following run. Returns `None` once the
    /// configured study length is exhausted.
    pub fn advance(&mut self) -> Result<Option<SnapshotRecord>, CrawlError> {
        if self.day > self.cfg.days {
            return Ok(None);
        }
        let (snapshot, existing) = if let Some(snap) = self.resume_fill.take() {
            // Re-crawling the day a crash interrupted: write only the
            // documents that never landed so nothing is duplicated.
            let keys: HashSet<String> = self
                .store
                .scan_snapshot(NS_LONGITUDINAL, snap)?
                .into_iter()
                .map(|d| d.key)
                .collect();
            if snap == SnapshotId(0) && !keys.contains("__init") {
                self.store.put(
                    NS_LONGITUDINAL,
                    Document::new("__init", obj! {"day" => self.day as u64}),
                )?;
            }
            (snap, keys)
        } else if self.step == 0 {
            // First write implicitly creates snapshot 0.
            self.store.put(
                NS_LONGITUDINAL,
                Document::new("__init", obj! {"day" => self.day as u64}),
            )?;
            (SnapshotId(0), HashSet::new())
        } else {
            (self.store.new_snapshot(NS_LONGITUDINAL)?, HashSet::new())
        };

        let mut funded_count = 0usize;
        for &id in &self.watchlist {
            let c = &self.world.companies[id as usize];
            if c.funded {
                funded_count += 1;
            }
            let doc = obj! {
                "id" => c.id.0,
                "day" => self.day as u64,
                "funded" => c.funded,
                "raising" => c.raising,
                "rounds" => c.rounds.len() as u64,
                "first_round_day" => c.rounds.first().map(|r| r.day as u64),
                "tweets" => c.twitter.as_ref().map(|t| t.statuses),
                "tw_followers" => c.twitter.as_ref().map(|t| t.followers),
                "fb_likes" => c.facebook.as_ref().map(|f| f.likes),
            };
            let key = format!("company:{id}");
            if existing.contains(&key) {
                continue;
            }
            self.store
                .put_snapshot(NS_LONGITUDINAL, snapshot, Document::new(key, doc))?;
        }
        let record = SnapshotRecord {
            day: self.day,
            snapshot,
            funded_count,
        };

        self.world
            .evolve(self.cfg.interval_days, self.step, self.cfg.evolution_seed);
        self.day += self.cfg.interval_days;
        self.step += 1;
        Ok(Some(record))
    }
}

/// Run the longitudinal study over an owned world (the world mutates between
/// crawls). Returns one record per scheduled crawl.
pub fn run_study(
    world: World,
    store: &Store,
    cfg: &StudyConfig,
) -> Result<Vec<SnapshotRecord>, CrawlError> {
    let mut study = Study::new(world, store, cfg)?;
    let mut records = Vec::new();
    while let Some(record) = study.advance()? {
        records.push(record);
    }
    Ok(records)
}

/// Convenience: generate a world and run the default study (used by examples
/// and benches).
pub fn run_default_study(
    world_cfg: &WorldConfig,
    store: &Store,
    cfg: &StudyConfig,
) -> Result<Vec<SnapshotRecord>, CrawlError> {
    run_study(World::generate(world_cfg), store, cfg)
}

/// One longitudinal observation: `(day, funded, tweets, fb_likes)`.
pub type Observation = (u32, bool, Option<u64>, Option<u64>);

/// Read back one company's time series from the study snapshots, ordered by
/// day.
pub fn company_series(
    store: &Store,
    company_id: u32,
) -> Result<Vec<Observation>, CrawlError> {
    let mut out = Vec::new();
    for snap in store.snapshots(NS_LONGITUDINAL) {
        let docs = store.scan_snapshot(NS_LONGITUDINAL, snap)?;
        for doc in docs {
            if doc.key == format!("company:{company_id}") {
                let day = doc.body.get("day").and_then(Value::as_u64).unwrap_or(0) as u32;
                let funded = doc.body.get("funded").and_then(Value::as_bool).unwrap_or(false);
                let tweets = doc.body.get("tweets").and_then(Value::as_u64);
                let likes = doc.body.get("fb_likes").and_then(Value::as_u64);
                out.push((day, funded, tweets, likes));
            }
        }
    }
    out.sort_by_key(|&(day, ..)| day);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_socialsim::Scale;

    fn study_world() -> World {
        // Enough raising companies for funding events to occur in-study.
        World::generate(&WorldConfig::at_scale(
            21,
            Scale::Custom { companies: 20_000, users: 800 },
        ))
    }

    #[test]
    fn study_produces_one_snapshot_per_interval() {
        let store = Store::memory(2);
        let records = run_study(
            study_world(),
            &store,
            &StudyConfig { days: 10, interval_days: 2, evolution_seed: 3 },
        )
        .unwrap();
        assert_eq!(records.len(), 6); // days 0,2,4,6,8,10
        assert_eq!(store.snapshots(NS_LONGITUDINAL).len(), 6);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.day, (i as u32) * 2);
            assert_eq!(r.snapshot, SnapshotId(i as u32));
        }
    }

    #[test]
    fn funding_events_accumulate_over_the_study() {
        let store = Store::memory(2);
        let records = run_study(study_world(), &store, &StudyConfig::default()).unwrap();
        let first = records.first().unwrap().funded_count;
        let last = records.last().unwrap().funded_count;
        assert!(last > first, "funding events should occur: {first} → {last}");
        // Funded counts are monotone (funding is absorbing).
        for w in records.windows(2) {
            assert!(w[1].funded_count >= w[0].funded_count);
        }
    }

    #[test]
    fn company_series_is_complete_and_ordered() {
        let store = Store::memory(2);
        let records = run_study(
            study_world(),
            &store,
            &StudyConfig { days: 6, interval_days: 1, evolution_seed: 3 },
        )
        .unwrap();
        // Pick any watched company from snapshot 0.
        let docs = store.scan_snapshot(NS_LONGITUDINAL, SnapshotId(0)).unwrap();
        let company_doc = docs.iter().find(|d| d.key.starts_with("company:")).unwrap();
        let id = company_doc.body.get("id").and_then(Value::as_u64).unwrap() as u32;
        let series = company_series(&store, id).unwrap();
        assert_eq!(series.len(), records.len());
        for (i, (day, ..)) in series.iter().enumerate() {
            assert_eq!(*day, i as u32);
        }
    }

    #[test]
    fn engagement_grows_along_series() {
        let store = Store::memory(2);
        run_study(
            study_world(),
            &store,
            &StudyConfig { days: 20, interval_days: 1, evolution_seed: 3 },
        )
        .unwrap();
        // Find a watched company with Twitter and check tweets are monotone.
        let docs = store.scan_snapshot(NS_LONGITUDINAL, SnapshotId(0)).unwrap();
        let with_tw = docs
            .iter()
            .find(|d| d.key.starts_with("company:") && !d.body.get("tweets").unwrap().is_null())
            .expect("some watched company tweets");
        let id = with_tw.body.get("id").and_then(Value::as_u64).unwrap() as u32;
        let series = company_series(&store, id).unwrap();
        let tweets: Vec<u64> = series.iter().filter_map(|&(_, _, t, _)| t).collect();
        assert_eq!(tweets.len(), series.len());
        assert!(tweets.windows(2).all(|w| w[1] >= w[0]));
        assert!(tweets.last().unwrap() > tweets.first().unwrap());
    }

    #[test]
    fn resumed_study_continues_to_an_identical_series() {
        let cfg = StudyConfig { days: 8, interval_days: 2, evolution_seed: 3 };
        let full_store = Store::memory(2);
        let full = run_study(study_world(), &full_store, &cfg).unwrap();

        let store = Store::memory(2);
        let mut study = Study::new(study_world(), &store, &cfg).unwrap();
        let mut records = vec![
            study.advance().unwrap().unwrap(),
            study.advance().unwrap().unwrap(),
        ];
        drop(study);
        // "Restart": a fresh process regenerates the same world and resumes.
        let mut resumed = Study::resume(study_world(), &store, &cfg).unwrap();
        while let Some(r) = resumed.advance().unwrap() {
            records.push(r);
        }
        assert_eq!(records, full);
        assert_eq!(
            store.snapshots(NS_LONGITUDINAL),
            full_store.snapshots(NS_LONGITUDINAL)
        );
        let docs = full_store.scan_snapshot(NS_LONGITUDINAL, SnapshotId(0)).unwrap();
        let any = docs.iter().find(|d| d.key.starts_with("company:")).unwrap();
        let id = any.body.get("id").and_then(Value::as_u64).unwrap() as u32;
        assert_eq!(
            company_series(&store, id).unwrap(),
            company_series(&full_store, id).unwrap()
        );
    }

    #[test]
    fn resume_refills_a_day_interrupted_before_any_docs_landed() {
        let cfg = StudyConfig { days: 4, interval_days: 1, evolution_seed: 3 };
        let full_store = Store::memory(2);
        let full = run_study(study_world(), &full_store, &cfg).unwrap();

        let store = Store::memory(2);
        let mut study = Study::new(study_world(), &store, &cfg).unwrap();
        let mut records = vec![study.advance().unwrap().unwrap()];
        drop(study);
        // Simulate a crash right after the day-1 snapshot was created but
        // before any document landed: the snapshot exists and is empty.
        store.new_snapshot(NS_LONGITUDINAL).unwrap();
        let mut resumed = Study::resume(study_world(), &store, &cfg).unwrap();
        while let Some(r) = resumed.advance().unwrap() {
            records.push(r);
        }
        assert_eq!(records, full);
        // The interrupted day was filled in place, not duplicated.
        for &snap in &store.snapshots(NS_LONGITUDINAL) {
            assert_eq!(
                store.scan_snapshot(NS_LONGITUDINAL, snap).unwrap().len(),
                full_store.scan_snapshot(NS_LONGITUDINAL, snap).unwrap().len(),
                "snapshot {snap:?}"
            );
        }
    }

    #[test]
    fn zero_interval_is_a_config_error() {
        let store = Store::memory(2);
        assert!(matches!(
            run_study(
                study_world(),
                &store,
                &StudyConfig { days: 5, interval_days: 0, evolution_seed: 1 }
            ),
            Err(CrawlError::Config(_))
        ));
    }
}
