//! Twitter access-token sharding.
//!
//! §3: "each twitter user is allowed to register at most five apps … Hence,
//! we distribute the Twitter crawling job to several machines, using
//! different access tokens, which tackles the rate limit issue effectively."
//!
//! [`TokenPool`] reproduces the strategy: register up to five apps per
//! simulated "machine owner", lease tokens round-robin, and when a token is
//! rate-limited park it until the window the server reported has passed.

use crowdnet_socialsim::sources::twitter::TwitterApi;
use crowdnet_socialsim::sources::ApiError;
use crowdnet_socialsim::Clock;
use parking_lot::Mutex;
use std::sync::Arc;

struct TokenState {
    token: String,
    /// Clock time at which the token becomes usable again.
    available_at_ms: u64,
}

/// A shared pool of Twitter access tokens.
pub struct TokenPool {
    clock: Arc<dyn Clock>,
    tokens: Mutex<Vec<TokenState>>,
    cursor: Mutex<usize>,
}

impl TokenPool {
    /// Register `owners × per_owner` apps on the service and pool their
    /// tokens. `per_owner` is clamped to Twitter's five-app cap.
    pub fn register(
        api: &TwitterApi,
        clock: Arc<dyn Clock>,
        owners: &[&str],
        per_owner: usize,
    ) -> Result<TokenPool, ApiError> {
        let per_owner = per_owner.clamp(1, 5);
        let mut tokens = Vec::new();
        for owner in owners {
            for _ in 0..per_owner {
                tokens.push(TokenState {
                    token: api.register_app(owner)?,
                    available_at_ms: 0,
                });
            }
        }
        if tokens.is_empty() {
            return Err(ApiError::BadRequest("token pool needs ≥1 owner".into()));
        }
        Ok(TokenPool {
            clock,
            tokens: Mutex::new(tokens),
            cursor: Mutex::new(0),
        })
    }

    /// Number of pooled tokens.
    pub fn len(&self) -> usize {
        self.tokens.lock().len()
    }

    /// True if the pool is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lease the next usable token (round-robin). If every token is parked,
    /// sleeps (virtually) until the earliest becomes available.
    pub fn lease(&self) -> String {
        loop {
            let now = self.clock.now_ms();
            let wait_ms = {
                let tokens = self.tokens.lock();
                let mut cursor = self.cursor.lock();
                let n = tokens.len();
                let mut earliest = u64::MAX;
                let mut found = None;
                for step in 0..n {
                    let idx = (*cursor + step) % n;
                    if tokens[idx].available_at_ms <= now {
                        found = Some(idx);
                        break;
                    }
                    earliest = earliest.min(tokens[idx].available_at_ms);
                }
                match found {
                    Some(idx) => {
                        *cursor = (idx + 1) % n;
                        return tokens[idx].token.clone();
                    }
                    None => earliest.saturating_sub(now).max(1),
                }
            };
            self.clock.sleep_ms(wait_ms);
        }
    }

    /// Park `token` until `retry_after_ms` from now (called on 429).
    pub fn park(&self, token: &str, retry_after_ms: u64) {
        let until = self.clock.now_ms() + retry_after_ms;
        let mut tokens = self.tokens.lock();
        if let Some(t) = tokens.iter_mut().find(|t| t.token == token) {
            t.available_at_ms = t.available_at_ms.max(until);
        }
    }

    /// Export the pool's park state as `(token, remaining_park_ms)` pairs —
    /// remaining time is relative to *now* because a resumed process starts
    /// a fresh virtual clock at 0. Persisted in the pipeline checkpoint.
    pub fn export_state(&self) -> Vec<(String, u64)> {
        let now = self.clock.now_ms();
        self.tokens
            .lock()
            .iter()
            .map(|t| (t.token.clone(), t.available_at_ms.saturating_sub(now)))
            .collect()
    }

    /// Re-apply a previously exported park state. Tokens are matched by
    /// name (registration is deterministic, so a resumed process re-derives
    /// the same names); unknown names fall back to registration order so a
    /// renamed pool still honours the park windows.
    pub fn restore_state(&self, state: &[(String, u64)]) {
        let now = self.clock.now_ms();
        let mut tokens = self.tokens.lock();
        for (i, (name, remaining)) in state.iter().enumerate() {
            if *remaining == 0 {
                continue;
            }
            let pos = tokens
                .iter()
                .position(|t| t.token == *name)
                .or_else(|| (i < tokens.len()).then_some(i));
            if let Some(p) = pos {
                tokens[p].available_at_ms = tokens[p].available_at_ms.max(now + remaining);
            }
        }
    }

    /// How many tokens are usable right now.
    pub fn available_now(&self) -> usize {
        let now = self.clock.now_ms();
        self.tokens
            .lock()
            .iter()
            .filter(|t| t.available_at_ms <= now)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdnet_socialsim::clock::SimClock;
    use crowdnet_socialsim::sources::FaultModel;
    use crowdnet_socialsim::{World, WorldConfig};

    fn setup(owners: &[&str], per_owner: usize) -> (TokenPool, Arc<SimClock>) {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let clock = Arc::new(SimClock::new());
        let api = TwitterApi::new(world, clock.clone(), FaultModel::none());
        let pool = TokenPool::register(&api, clock.clone(), owners, per_owner).unwrap();
        (pool, clock)
    }

    #[test]
    fn registers_per_owner_times_owners() {
        let (pool, _) = setup(&["m1", "m2", "m3"], 5);
        assert_eq!(pool.len(), 15);
        assert_eq!(pool.available_now(), 15);
    }

    #[test]
    fn per_owner_clamps_to_five() {
        let (pool, _) = setup(&["m1"], 50);
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn lease_round_robins() {
        let (pool, _) = setup(&["m1"], 3);
        let a = pool.lease();
        let b = pool.lease();
        let c = pool.lease();
        let a2 = pool.lease();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, a2);
    }

    #[test]
    fn parked_tokens_are_skipped_then_recover() {
        let (pool, clock) = setup(&["m1"], 2);
        let a = pool.lease();
        pool.park(&a, 1_000);
        assert_eq!(pool.available_now(), 1);
        // Only the unparked token is leased while the other is parked.
        let next = pool.lease();
        assert_ne!(next, a);
        let next2 = pool.lease();
        assert_ne!(next2, a);
        clock.advance_ms(1_001);
        assert_eq!(pool.available_now(), 2);
    }

    #[test]
    fn park_state_survives_export_and_restore_into_a_fresh_pool() {
        let (pool, _) = setup(&["m1"], 2);
        let a = pool.lease();
        pool.park(&a, 4_000);
        let state = pool.export_state();
        assert_eq!(state.len(), 2);
        assert_eq!(state.iter().filter(|(_, rem)| *rem > 0).count(), 1);

        // A "restarted process": fresh world, fresh clock at 0, fresh pool.
        // Registration is deterministic, so token names line up.
        let (fresh, clock) = setup(&["m1"], 2);
        fresh.restore_state(&state);
        assert_eq!(fresh.available_now(), 1);
        clock.advance_ms(4_000);
        assert_eq!(fresh.available_now(), 2);
    }

    #[test]
    fn lease_waits_when_all_parked() {
        let (pool, clock) = setup(&["m1"], 2);
        let a = pool.lease();
        let b = pool.lease();
        pool.park(&a, 5_000);
        pool.park(&b, 3_000);
        let t0 = clock.now_ms();
        let leased = pool.lease(); // must virtually sleep ≥ 3000 ms
        assert_eq!(leased, b);
        assert!(clock.now_ms() - t0 >= 3_000);
    }
}
