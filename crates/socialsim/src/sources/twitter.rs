//! Simulated Twitter REST API.
//!
//! §3: "Twitter API's rate limit is 180 calls every 15 minutes, and we are
//! also required to use access tokens … each twitter user is allowed to
//! register at most five apps … Hence, we distribute the Twitter crawling
//! job to several machines, using different access tokens, which tackles the
//! rate limit issue effectively."
//!
//! The simulation enforces exactly that: [`TwitterApi::register_app`] issues
//! per-owner tokens (max five per owner), and [`TwitterApi::user_by_username`]
//! maintains a sliding 15-minute window of 180 calls per token, answering
//! `RateLimited { retry_after_ms }` when exhausted — which is what makes the
//! crawler's multi-token sharding measurable (see the `crawl_throughput`
//! bench).

use super::{ApiError, ApiResult, FaultModel};
use crate::clock::Clock;
use crate::gen::world::World;
use crowdnet_json::obj;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Window length: 15 minutes.
pub const WINDOW_MS: u64 = 15 * 60 * 1000;
/// Calls allowed per token per window.
pub const CALLS_PER_WINDOW: usize = 180;
/// Apps (tokens) each owner may register.
pub const MAX_APPS_PER_OWNER: usize = 5;

/// The simulated Twitter service.
pub struct TwitterApi {
    clock: Arc<dyn Clock>,
    faults: FaultModel,
    by_username: HashMap<String, u32>,
    world: Arc<World>,
    /// token → timestamps of calls within the current window.
    windows: Mutex<HashMap<String, VecDeque<u64>>>,
    apps_per_owner: Mutex<HashMap<String, usize>>,
    next_token: Mutex<u64>,
}

impl TwitterApi {
    /// Wrap a world with a clock.
    pub fn new(world: Arc<World>, clock: Arc<dyn Clock>, faults: FaultModel) -> TwitterApi {
        let by_username = world
            .companies
            .iter()
            .filter_map(|c| c.twitter.as_ref().map(|t| (t.username.clone(), c.id.0)))
            .collect();
        TwitterApi {
            clock,
            faults,
            by_username,
            world,
            windows: Mutex::new(HashMap::new()),
            apps_per_owner: Mutex::new(HashMap::new()),
            next_token: Mutex::new(0),
        }
    }

    /// Calls served (including rate-limited ones).
    pub fn calls(&self) -> u64 {
        self.faults.total_calls()
    }

    /// Register an app for `owner`, yielding an access token. Each owner may
    /// hold at most [`MAX_APPS_PER_OWNER`] tokens.
    pub fn register_app(&self, owner: &str) -> Result<String, ApiError> {
        let mut apps = self.apps_per_owner.lock();
        let count = apps.entry(owner.to_string()).or_insert(0);
        if *count >= MAX_APPS_PER_OWNER {
            return Err(ApiError::BadRequest(format!(
                "owner {owner} already registered {MAX_APPS_PER_OWNER} apps"
            )));
        }
        *count += 1;
        let mut n = self.next_token.lock();
        *n += 1;
        let token = format!("tw-{owner}-{}", *n);
        self.windows.lock().insert(token.clone(), VecDeque::new());
        Ok(token)
    }

    fn check_rate(&self, token: &str) -> Result<(), ApiError> {
        let now = self.clock.now_ms();
        let mut windows = self.windows.lock();
        let window = windows.get_mut(token).ok_or(ApiError::Unauthorized)?;
        while let Some(&front) = window.front() {
            if now.saturating_sub(front) >= WINDOW_MS {
                window.pop_front();
            } else {
                break;
            }
        }
        if window.len() >= CALLS_PER_WINDOW {
            let oldest = *window.front().expect("window non-empty");
            return Err(ApiError::RateLimited {
                retry_after_ms: WINDOW_MS - now.saturating_sub(oldest),
            });
        }
        window.push_back(now);
        Ok(())
    }

    /// Profile lookup by username (the crawler extracts the username from the
    /// profile URL — "the string after the last '/' symbol").
    pub fn user_by_username(&self, username: &str, token: &str) -> ApiResult {
        self.faults.check()?;
        self.check_rate(token)?;
        let id = *self
            .by_username
            .get(username)
            .ok_or(ApiError::NotFound)?;
        let c = &self.world.companies[id as usize];
        let t = c.twitter.as_ref().expect("indexed companies have twitter");
        Ok(obj! {
            "screen_name" => t.username.as_str(),
            "followers_count" => t.followers,
            "friends_count" => t.friends,
            "statuses_count" => t.statuses,
            "created_day" => t.created_day as u64,
            "company_id" => c.id.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::config::WorldConfig;

    fn setup() -> (TwitterApi, SimClock, Arc<World>) {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let clock = SimClock::new();
        let api = TwitterApi::new(
            Arc::clone(&world),
            Arc::new(clock.clone()),
            FaultModel::none(),
        );
        (api, clock, world)
    }

    fn a_username(world: &World) -> String {
        world
            .companies
            .iter()
            .find_map(|c| c.twitter.as_ref())
            .unwrap()
            .username
            .clone()
    }

    #[test]
    fn lookup_by_username_works() {
        let (api, _, world) = setup();
        let token = api.register_app("alice").unwrap();
        let name = a_username(&world);
        let doc = api.user_by_username(&name, &token).unwrap();
        assert_eq!(
            doc.get("screen_name").and_then(|v| v.as_str()),
            Some(name.as_str())
        );
        assert!(doc.get("followers_count").and_then(|v| v.as_u64()).is_some());
    }

    #[test]
    fn unknown_usernames_are_404() {
        let (api, _, _) = setup();
        let token = api.register_app("alice").unwrap();
        assert_eq!(
            api.user_by_username("no_such_handle", &token).unwrap_err(),
            ApiError::NotFound
        );
    }

    #[test]
    fn calls_without_token_are_401() {
        let (api, _, world) = setup();
        assert_eq!(
            api.user_by_username(&a_username(&world), "bogus").unwrap_err(),
            ApiError::Unauthorized
        );
    }

    #[test]
    fn rate_limit_kicks_in_at_180_and_resets() {
        let (api, clock, world) = setup();
        let token = api.register_app("alice").unwrap();
        let name = a_username(&world);
        for _ in 0..CALLS_PER_WINDOW {
            api.user_by_username(&name, &token).unwrap();
        }
        let err = api.user_by_username(&name, &token).unwrap_err();
        match err {
            ApiError::RateLimited { retry_after_ms } => {
                assert!(retry_after_ms <= WINDOW_MS);
                clock.advance_ms(retry_after_ms);
            }
            other => panic!("expected rate limit, got {other}"),
        }
        // After the window slides, calls flow again.
        assert!(api.user_by_username(&name, &token).is_ok());
    }

    #[test]
    fn rate_limit_is_per_token() {
        let (api, _, world) = setup();
        let t1 = api.register_app("alice").unwrap();
        let t2 = api.register_app("bob").unwrap();
        let name = a_username(&world);
        for _ in 0..CALLS_PER_WINDOW {
            api.user_by_username(&name, &t1).unwrap();
        }
        assert!(matches!(
            api.user_by_username(&name, &t1),
            Err(ApiError::RateLimited { .. })
        ));
        // A different token is unaffected.
        assert!(api.user_by_username(&name, &t2).is_ok());
    }

    #[test]
    fn sliding_window_frees_capacity_gradually() {
        let (api, clock, world) = setup();
        let token = api.register_app("alice").unwrap();
        let name = a_username(&world);
        // 90 calls at t=0, 90 calls at t=10min.
        for _ in 0..90 {
            api.user_by_username(&name, &token).unwrap();
        }
        clock.advance_ms(10 * 60 * 1000);
        for _ in 0..90 {
            api.user_by_username(&name, &token).unwrap();
        }
        assert!(matches!(
            api.user_by_username(&name, &token),
            Err(ApiError::RateLimited { .. })
        ));
        // At t=15min+ε the first 90 fall out of the window.
        clock.advance_ms(5 * 60 * 1000 + 1);
        for _ in 0..90 {
            api.user_by_username(&name, &token).unwrap();
        }
        assert!(matches!(
            api.user_by_username(&name, &token),
            Err(ApiError::RateLimited { .. })
        ));
    }

    #[test]
    fn app_registration_caps_at_five_per_owner() {
        let (api, _, _) = setup();
        for _ in 0..MAX_APPS_PER_OWNER {
            api.register_app("carol").unwrap();
        }
        assert!(matches!(
            api.register_app("carol"),
            Err(ApiError::BadRequest(_))
        ));
        // Another owner still can.
        assert!(api.register_app("dave").is_ok());
    }
}
