//! Simulated web APIs for the four data sources.
//!
//! Each service exposes the subset of its 2016 public API the paper's
//! crawlers used, as JSON-returning methods with the real services' failure
//! modes: pagination, 404s, access tokens, token expiry, per-token rate
//! limits and transient server errors. The crawler treats these exactly as
//! HTTP clients treat the live services.

pub mod angellist;
pub mod crunchbase;
pub mod facebook;
pub mod twitter;

use crowdnet_json::Value;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Items per page for every paginated endpoint (AngelList used 50).
pub const PER_PAGE: usize = 50;

/// An API call failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// Unknown entity (HTTP 404).
    NotFound,
    /// Missing/expired/invalid access token (HTTP 401).
    Unauthorized,
    /// Per-token rate limit hit (HTTP 429); retry after this many ms.
    RateLimited {
        /// Milliseconds until the window resets.
        retry_after_ms: u64,
    },
    /// Transient server failure (HTTP 5xx); safe to retry.
    ServerError,
    /// Malformed request (HTTP 400), e.g. page 0.
    BadRequest(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::NotFound => write!(f, "404 not found"),
            ApiError::Unauthorized => write!(f, "401 unauthorized"),
            ApiError::RateLimited { retry_after_ms } => {
                write!(f, "429 rate limited (retry after {retry_after_ms} ms)")
            }
            ApiError::ServerError => write!(f, "5xx transient server error"),
            ApiError::BadRequest(msg) => write!(f, "400 bad request: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {}

/// Result of an API call: a JSON document or an error.
pub type ApiResult = Result<Value, ApiError>;

/// Injects transient `ServerError`s at a configured rate, so the crawler's
/// retry logic is exercised by every test that uses a non-zero rate.
pub struct FaultModel {
    rate: f64,
    rng: Mutex<StdRng>,
    calls: Mutex<u64>,
    faults: Mutex<u64>,
}

impl FaultModel {
    /// Fail roughly `rate` of calls (0.0 = never).
    pub fn new(rate: f64, seed: u64) -> FaultModel {
        FaultModel {
            rate: rate.clamp(0.0, 1.0),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            calls: Mutex::new(0),
            faults: Mutex::new(0),
        }
    }

    /// A model that never faults.
    pub fn none() -> FaultModel {
        FaultModel::new(0.0, 0)
    }

    /// Record a call; `Err(ServerError)` when this call faults.
    pub fn check(&self) -> Result<(), ApiError> {
        *self.calls.lock() += 1;
        if self.rate > 0.0 && self.rng.lock().random::<f64>() < self.rate {
            *self.faults.lock() += 1;
            Err(ApiError::ServerError)
        } else {
            Ok(())
        }
    }

    /// Total calls observed.
    pub fn total_calls(&self) -> u64 {
        *self.calls.lock()
    }

    /// Total faults injected.
    pub fn total_faults(&self) -> u64 {
        *self.faults.lock()
    }
}

/// Paginate `items` and wrap page `page` (1-based) in the standard envelope:
/// `{"items": […], "page": p, "per_page": k, "total": n, "last_page": m}`.
pub(crate) fn paginate<T, F>(items: &[T], page: usize, render: F) -> ApiResult
where
    F: Fn(&T) -> Value,
{
    if page == 0 {
        return Err(ApiError::BadRequest("page numbers are 1-based".into()));
    }
    let total = items.len();
    let last_page = total.div_ceil(PER_PAGE).max(1);
    let start = (page - 1) * PER_PAGE;
    let slice: Vec<Value> = items
        .iter()
        .skip(start)
        .take(PER_PAGE)
        .map(render)
        .collect();
    Ok(crowdnet_json::obj! {
        "items" => Value::Arr(slice),
        "page" => page as u64,
        "per_page" => PER_PAGE as u64,
        "total" => total as u64,
        "last_page" => last_page as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paginate_shapes_pages() {
        let items: Vec<u32> = (0..120).collect();
        let p1 = paginate(&items, 1, |i| Value::from(*i)).unwrap();
        assert_eq!(p1.get("items").unwrap().as_arr().unwrap().len(), 50);
        assert_eq!(p1.get("last_page").and_then(Value::as_u64), Some(3));
        let p3 = paginate(&items, 3, |i| Value::from(*i)).unwrap();
        assert_eq!(p3.get("items").unwrap().as_arr().unwrap().len(), 20);
        let p4 = paginate(&items, 4, |i| Value::from(*i)).unwrap();
        assert_eq!(p4.get("items").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn paginate_rejects_page_zero() {
        let items: Vec<u32> = vec![1];
        assert!(matches!(
            paginate(&items, 0, |i| Value::from(*i)),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn paginate_empty_has_one_last_page() {
        let items: Vec<u32> = vec![];
        let p = paginate(&items, 1, |i| Value::from(*i)).unwrap();
        assert_eq!(p.get("last_page").and_then(Value::as_u64), Some(1));
        assert_eq!(p.get("total").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn fault_model_rates() {
        let fm = FaultModel::new(0.5, 3);
        let mut failures = 0;
        for _ in 0..1000 {
            if fm.check().is_err() {
                failures += 1;
            }
        }
        assert!((300..700).contains(&failures), "failures = {failures}");
        assert_eq!(fm.total_calls(), 1000);
        assert_eq!(fm.total_faults(), failures);
        let none = FaultModel::none();
        for _ in 0..100 {
            assert!(none.check().is_ok());
        }
    }
}
