//! Simulated Facebook Graph API.
//!
//! §3: "our Python-based crawler logs into Facebook as a user, and gets a
//! valid access token before querying any data. The access token is at first
//! short-lived, but we've used it to generate a long-lived one … Therefore,
//! our Facebook crawler can work without any limitations."
//!
//! The simulation reproduces that token dance: [`FacebookApi::login`] issues
//! a short-lived token (1 hour), [`FacebookApi::exchange_token`] upgrades it
//! to a long-lived one (60 days), and [`FacebookApi::page`] rejects expired
//! or unknown tokens with `Unauthorized`.

use super::{ApiError, ApiResult, FaultModel};
use crate::clock::Clock;
use crate::gen::world::World;
use crowdnet_json::obj;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Short-lived token lifetime: 1 hour.
pub const SHORT_TOKEN_MS: u64 = 60 * 60 * 1000;
/// Long-lived token lifetime: 60 days.
pub const LONG_TOKEN_MS: u64 = 60 * 24 * 60 * 60 * 1000;

struct TokenInfo {
    expires_at_ms: u64,
    long_lived: bool,
}

/// The simulated Facebook Graph API.
pub struct FacebookApi {
    world: Arc<World>,
    clock: Arc<dyn Clock>,
    faults: FaultModel,
    tokens: Mutex<HashMap<String, TokenInfo>>,
    next_token: Mutex<u64>,
}

impl FacebookApi {
    /// Wrap a world with a clock (token expiry is clock-driven).
    pub fn new(world: Arc<World>, clock: Arc<dyn Clock>, faults: FaultModel) -> FacebookApi {
        FacebookApi {
            world,
            clock,
            faults,
            tokens: Mutex::new(HashMap::new()),
            next_token: Mutex::new(0),
        }
    }

    /// Calls served.
    pub fn calls(&self) -> u64 {
        self.faults.total_calls()
    }

    fn mint(&self, long_lived: bool) -> String {
        let mut n = self.next_token.lock();
        *n += 1;
        let token = format!("fb-{}-{}", if long_lived { "long" } else { "short" }, *n);
        let ttl = if long_lived { LONG_TOKEN_MS } else { SHORT_TOKEN_MS };
        self.tokens.lock().insert(
            token.clone(),
            TokenInfo {
                expires_at_ms: self.clock.now_ms() + ttl,
                long_lived,
            },
        );
        token
    }

    /// Log in as a user: a short-lived access token.
    pub fn login(&self) -> String {
        self.mint(false)
    }

    /// Exchange a valid short-lived token for a long-lived one (requires
    /// "creating a Facebook App", which the simulation takes as given).
    pub fn exchange_token(&self, short: &str) -> Result<String, ApiError> {
        let now = self.clock.now_ms();
        {
            let tokens = self.tokens.lock();
            let info = tokens.get(short).ok_or(ApiError::Unauthorized)?;
            if info.expires_at_ms <= now {
                return Err(ApiError::Unauthorized);
            }
        }
        Ok(self.mint(true))
    }

    fn validate(&self, token: &str) -> Result<(), ApiError> {
        let tokens = self.tokens.lock();
        let info = tokens.get(token).ok_or(ApiError::Unauthorized)?;
        if info.expires_at_ms <= self.clock.now_ms() {
            Err(ApiError::Unauthorized)
        } else {
            Ok(())
        }
    }

    /// Whether a token is long-lived (diagnostics).
    pub fn is_long_lived(&self, token: &str) -> bool {
        self.tokens
            .lock()
            .get(token)
            .map(|t| t.long_lived)
            .unwrap_or(false)
    }

    /// Fetch a page's public fields by its URL
    /// (`https://facebook.com/pages/startup-<id>`).
    pub fn page(&self, url: &str, token: &str) -> ApiResult {
        self.faults.check()?;
        self.validate(token)?;
        let id: u32 = url
            .rsplit('/')
            .next()
            .and_then(|seg| seg.strip_prefix("startup-"))
            .and_then(|s| s.parse().ok())
            .ok_or(ApiError::NotFound)?;
        let c = self
            .world
            .companies
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        let fb = c.facebook.as_ref().ok_or(ApiError::NotFound)?;
        Ok(obj! {
            "id" => format!("startup-{id}"),
            "name" => c.name.as_str(),
            "likes" => fb.likes,
            "posts" => fb.posts as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::config::WorldConfig;

    fn setup() -> (FacebookApi, SimClock, Arc<World>) {
        let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
        let clock = SimClock::new();
        let api = FacebookApi::new(
            Arc::clone(&world),
            Arc::new(clock.clone()),
            FaultModel::none(),
        );
        (api, clock, world)
    }

    fn fb_url(world: &World) -> String {
        let c = world
            .companies
            .iter()
            .find(|c| c.facebook.is_some())
            .unwrap();
        format!("https://facebook.com/pages/startup-{}", c.id.0)
    }

    #[test]
    fn token_dance_and_page_fetch() {
        let (api, _clock, world) = setup();
        let short = api.login();
        assert!(!api.is_long_lived(&short));
        let long = api.exchange_token(&short).unwrap();
        assert!(api.is_long_lived(&long));
        let doc = api.page(&fb_url(&world), &long).unwrap();
        assert!(doc.get("likes").and_then(|v| v.as_u64()).is_some());
    }

    #[test]
    fn requests_without_valid_token_are_401() {
        let (api, _, world) = setup();
        assert_eq!(
            api.page(&fb_url(&world), "garbage").unwrap_err(),
            ApiError::Unauthorized
        );
    }

    #[test]
    fn short_tokens_expire_after_an_hour() {
        let (api, clock, world) = setup();
        let short = api.login();
        assert!(api.page(&fb_url(&world), &short).is_ok());
        clock.advance_ms(SHORT_TOKEN_MS + 1);
        assert_eq!(
            api.page(&fb_url(&world), &short).unwrap_err(),
            ApiError::Unauthorized
        );
        // And an expired short token can no longer be exchanged.
        assert_eq!(api.exchange_token(&short).unwrap_err(), ApiError::Unauthorized);
    }

    #[test]
    fn long_tokens_survive_weeks() {
        let (api, clock, world) = setup();
        let long = api.exchange_token(&api.login()).unwrap();
        clock.advance_ms(30 * 24 * 60 * 60 * 1000); // 30 days
        assert!(api.page(&fb_url(&world), &long).is_ok());
        clock.advance_ms(40 * 24 * 60 * 60 * 1000); // 70 days total
        assert_eq!(
            api.page(&fb_url(&world), &long).unwrap_err(),
            ApiError::Unauthorized
        );
    }

    #[test]
    fn pages_without_facebook_are_404() {
        let (api, _, world) = setup();
        let token = api.login();
        let c = world
            .companies
            .iter()
            .find(|c| c.facebook.is_none())
            .unwrap();
        let url = format!("https://facebook.com/pages/startup-{}", c.id.0);
        assert_eq!(api.page(&url, &token).unwrap_err(), ApiError::NotFound);
        assert_eq!(
            api.page("https://facebook.com/bogus", &token).unwrap_err(),
            ApiError::NotFound
        );
    }
}
