//! Simulated CrunchBase API.
//!
//! §3: "upon finishing our initial breadth-first search crawl over AngelList,
//! we query CrunchBase for each of the AngelList startups. If the AngelList
//! entry provides a CrunchBase URL, we use the associated CrunchBase entry;
//! if not, we use the CrunchBase search API to find startups with matching
//! names. If the CrunchBase search returns a unique result, we associate that
//! result with the AngelList startup."
//!
//! Both routes are simulated: permalink lookup and name search (which can
//! return zero, one or many matches — only unique matches are usable, as in
//! the paper).

use super::{ApiError, ApiResult, FaultModel};
use crate::gen::world::World;
use crowdnet_json::{obj, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The simulated CrunchBase service. Only funded companies have profiles
/// (CrunchBase records funding events).
pub struct CrunchBaseApi {
    world: Arc<World>,
    faults: FaultModel,
    /// name → funded company ids bearing that name.
    by_name: HashMap<String, Vec<u32>>,
}

impl CrunchBaseApi {
    /// Wrap a world.
    pub fn new(world: Arc<World>, faults: FaultModel) -> CrunchBaseApi {
        let mut by_name: HashMap<String, Vec<u32>> = HashMap::new();
        for c in world.companies.iter().filter(|c| c.funded) {
            by_name.entry(c.name.clone()).or_default().push(c.id.0);
        }
        CrunchBaseApi {
            world,
            faults,
            by_name,
        }
    }

    /// A fault-free API (tests).
    pub fn reliable(world: Arc<World>) -> CrunchBaseApi {
        CrunchBaseApi::new(world, FaultModel::none())
    }

    /// Calls served.
    pub fn calls(&self) -> u64 {
        self.faults.total_calls()
    }

    /// Profile by permalink (`"c-<angellist id>"`, the form AngelList links).
    pub fn company(&self, permalink: &str) -> ApiResult {
        self.faults.check()?;
        let id: u32 = permalink
            .strip_prefix("c-")
            .and_then(|s| s.parse().ok())
            .ok_or(ApiError::NotFound)?;
        let c = self
            .world
            .companies
            .get(id as usize)
            .filter(|c| c.funded)
            .ok_or(ApiError::NotFound)?;
        let rounds: Vec<Value> = c
            .rounds
            .iter()
            .map(|r| {
                obj! {
                    "day" => r.day as u64,
                    "raised_usd" => r.raised_usd,
                    "investor_count" => r.investor_count as u64,
                }
            })
            .collect();
        Ok(obj! {
            "permalink" => permalink,
            "name" => c.name.as_str(),
            "angellist_id" => c.id.0,
            "total_raised_usd" => c.rounds.iter().map(|r| r.raised_usd).sum::<u64>(),
            "rounds" => Value::Arr(rounds),
        })
    }

    /// Exact-name search over funded companies; returns all matches. The
    /// crawler must only use unique results (the paper's rule).
    pub fn search(&self, name: &str) -> ApiResult {
        self.faults.check()?;
        let matches: Vec<Value> = self
            .by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .map(|id| {
                        obj! {
                            "permalink" => format!("c-{id}"),
                            "name" => name,
                        }
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(obj! { "matches" => Value::Arr(matches) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn api() -> CrunchBaseApi {
        CrunchBaseApi::reliable(Arc::new(World::generate(&WorldConfig::tiny(42))))
    }

    #[test]
    fn funded_companies_resolve_by_permalink() {
        let api = api();
        let world = Arc::clone(&api.world);
        let funded = world.companies.iter().find(|c| c.funded).unwrap();
        let doc = api.company(&format!("c-{}", funded.id.0)).unwrap();
        assert_eq!(doc.get("angellist_id").and_then(Value::as_u64), Some(funded.id.0 as u64));
        let rounds = doc.get("rounds").unwrap().as_arr().unwrap();
        assert_eq!(rounds.len(), funded.rounds.len());
        let total = doc.get("total_raised_usd").and_then(Value::as_u64).unwrap();
        assert_eq!(total, funded.rounds.iter().map(|r| r.raised_usd).sum::<u64>());
    }

    #[test]
    fn unfunded_companies_are_404() {
        let api = api();
        let world = Arc::clone(&api.world);
        let unfunded = world.companies.iter().find(|c| !c.funded).unwrap();
        assert_eq!(
            api.company(&format!("c-{}", unfunded.id.0)).unwrap_err(),
            ApiError::NotFound
        );
    }

    #[test]
    fn malformed_permalinks_are_404() {
        let api = api();
        assert_eq!(api.company("nope").unwrap_err(), ApiError::NotFound);
        assert_eq!(api.company("c-abc").unwrap_err(), ApiError::NotFound);
    }

    #[test]
    fn search_finds_funded_by_exact_name() {
        let api = api();
        let world = Arc::clone(&api.world);
        let funded = world.companies.iter().find(|c| c.funded).unwrap();
        let doc = api.search(&funded.name).unwrap();
        let matches = doc.get("matches").unwrap().as_arr().unwrap();
        assert!(!matches.is_empty());
        assert!(matches
            .iter()
            .any(|m| m.get("permalink").and_then(Value::as_str) == Some(&format!("c-{}", funded.id.0))));
    }

    #[test]
    fn search_misses_return_empty() {
        let api = api();
        let doc = api.search("No Such Startup Anywhere").unwrap();
        assert!(doc.get("matches").unwrap().as_arr().unwrap().is_empty());
    }
}
