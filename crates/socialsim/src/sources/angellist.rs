//! Simulated AngelList API.
//!
//! The paper's crawl is anchored here: "AngelList's API currently only
//! provides a list of all startups that are currently raising money (about
//! 4000 of them)" — the BFS then expands through followers and follow lists.
//! Endpoints mirror that surface:
//!
//! * [`AngelListApi::raising_startups`] — the paginated seed list,
//! * [`AngelListApi::startup`] — a profile with social/CrunchBase URLs,
//! * [`AngelListApi::startup_followers`] — users following a startup,
//! * [`AngelListApi::user`] — a user profile (role + investment portfolio),
//! * [`AngelListApi::user_following_startups`] / [`AngelListApi::user_following_users`]
//!   — the outgoing follow lists the BFS expands through.

use super::{paginate, ApiError, ApiResult, FaultModel};
use crate::entities::{Role, UserId};
use crate::gen::world::World;
use crowdnet_json::{obj, Value};
use std::sync::Arc;

/// The simulated AngelList service.
pub struct AngelListApi {
    world: Arc<World>,
    faults: FaultModel,
}

impl AngelListApi {
    /// Wrap a world; `faults` injects transient errors.
    pub fn new(world: Arc<World>, faults: FaultModel) -> AngelListApi {
        AngelListApi { world, faults }
    }

    /// A fault-free API (tests).
    pub fn reliable(world: Arc<World>) -> AngelListApi {
        AngelListApi::new(world, FaultModel::none())
    }

    /// Calls served (for throughput reporting).
    pub fn calls(&self) -> u64 {
        self.faults.total_calls()
    }

    /// Paginated list of currently raising startups (ids + names).
    pub fn raising_startups(&self, page: usize) -> ApiResult {
        self.faults.check()?;
        let raising: Vec<&crate::entities::Company> =
            self.world.raising_companies().collect();
        paginate(&raising, page, |c| {
            obj! { "id" => c.id.0, "name" => c.name.as_str() }
        })
    }

    /// Full startup profile.
    pub fn startup(&self, id: u32) -> ApiResult {
        self.faults.check()?;
        let c = self
            .world
            .companies
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        Ok(obj! {
            "id" => c.id.0,
            "name" => c.name.as_str(),
            "raising" => c.raising,
            "follower_count" => c.followers.len() as u64,
            "video_url" => c.has_demo_video.then(|| format!("https://angel.co/videos/{}", c.id.0)),
            "facebook_url" => c.facebook.as_ref().map(|_| format!("https://facebook.com/pages/startup-{}", c.id.0)),
            "twitter_url" => c.twitter.as_ref().map(|t| format!("https://twitter.com/{}", t.username)),
            "crunchbase_url" => c.has_crunchbase_link.then(|| format!("https://crunchbase.com/organization/c-{}", c.id.0)),
        })
    }

    /// Users following a startup (paginated ids).
    pub fn startup_followers(&self, id: u32, page: usize) -> ApiResult {
        self.faults.check()?;
        let c = self
            .world
            .companies
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        paginate(&c.followers, page, |u| Value::from(u.0))
    }

    /// User profile: role and investment portfolio (AngelList displays an
    /// investor's portfolio publicly — this is where the §5.1 bipartite
    /// edges come from).
    pub fn user(&self, id: u32) -> ApiResult {
        self.faults.check()?;
        let u = self
            .world
            .users
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        let role = match u.role {
            Role::Investor => "investor",
            Role::Founder => "founder",
            Role::Employee => "employee",
            Role::Other => "other",
        };
        Ok(obj! {
            "id" => u.id.0,
            "role" => role,
            "follow_count" => (u.follows_companies.len() + u.follows_users.len()) as u64,
            "investments" => Value::Arr(u.investments.iter().map(|c| Value::from(c.0)).collect::<Vec<_>>()),
        })
    }

    /// Startups a user follows (paginated ids).
    pub fn user_following_startups(&self, id: u32, page: usize) -> ApiResult {
        self.faults.check()?;
        let u = self
            .world
            .users
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        paginate(&u.follows_companies, page, |c| Value::from(c.0))
    }

    /// Paginated list of public syndicates (§2: investors "form syndicates
    /// for investment"). Items carry the syndicate id and lead investor.
    pub fn syndicates(&self, page: usize) -> ApiResult {
        self.faults.check()?;
        paginate(&self.world.syndicates, page, |s| {
            obj! { "id" => s.id, "lead" => s.lead.0 }
        })
    }

    /// One syndicate's backer list.
    pub fn syndicate(&self, id: u32) -> ApiResult {
        self.faults.check()?;
        let s = self
            .world
            .syndicates
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        Ok(obj! {
            "id" => s.id,
            "lead" => s.lead.0,
            "backers" => Value::Arr(s.backers.iter().map(|u| Value::from(u.0)).collect::<Vec<_>>()),
        })
    }

    /// Users a user follows (paginated ids).
    pub fn user_following_users(&self, id: u32, page: usize) -> ApiResult {
        self.faults.check()?;
        let u = self
            .world
            .users
            .get(id as usize)
            .ok_or(ApiError::NotFound)?;
        paginate(&u.follows_users, page, |v: &UserId| Value::from(v.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn api() -> AngelListApi {
        AngelListApi::reliable(Arc::new(World::generate(&WorldConfig::tiny(42))))
    }

    #[test]
    fn raising_list_pages() {
        let api = api();
        let p1 = api.raising_startups(1).unwrap();
        let total = p1.get("total").and_then(Value::as_u64).unwrap();
        assert!(total > 0);
        let items = p1.get("items").unwrap().as_arr().unwrap();
        assert!(!items.is_empty());
        assert!(items[0].get("id").is_some());
    }

    #[test]
    fn startup_profile_has_urls_iff_accounts() {
        let api = api();
        let world = Arc::clone(&api.world);
        for c in world.companies.iter().take(300) {
            let doc = api.startup(c.id.0).unwrap();
            assert_eq!(doc.get("facebook_url").map(|v| !v.is_null()), Some(c.facebook.is_some()));
            assert_eq!(doc.get("twitter_url").map(|v| !v.is_null()), Some(c.twitter.is_some()));
            assert_eq!(
                doc.get("video_url").map(|v| !v.is_null()),
                Some(c.has_demo_video)
            );
        }
    }

    #[test]
    fn twitter_url_embeds_username() {
        let api = api();
        let world = Arc::clone(&api.world);
        let c = world.companies.iter().find(|c| c.twitter.is_some()).unwrap();
        let doc = api.startup(c.id.0).unwrap();
        let url = doc.get("twitter_url").and_then(Value::as_str).unwrap();
        let username = url.rsplit('/').next().unwrap();
        assert_eq!(username, c.twitter.as_ref().unwrap().username);
    }

    #[test]
    fn unknown_ids_are_404() {
        let api = api();
        assert_eq!(api.startup(10_000_000).unwrap_err(), ApiError::NotFound);
        assert_eq!(api.user(10_000_000).unwrap_err(), ApiError::NotFound);
        assert_eq!(
            api.startup_followers(10_000_000, 1).unwrap_err(),
            ApiError::NotFound
        );
    }

    #[test]
    fn user_profile_reports_investments() {
        let api = api();
        let world = Arc::clone(&api.world);
        let inv = world
            .users
            .iter()
            .find(|u| !u.investments.is_empty())
            .expect("some investor invests");
        let doc = api.user(inv.id.0).unwrap();
        assert_eq!(doc.get("role").and_then(Value::as_str), Some("investor"));
        let listed = doc.get("investments").unwrap().as_arr().unwrap().len();
        assert_eq!(listed, inv.investments.len());
    }

    #[test]
    fn follower_pagination_is_complete() {
        let api = api();
        let world = Arc::clone(&api.world);
        let c = world
            .companies
            .iter()
            .max_by_key(|c| c.followers.len())
            .unwrap();
        let mut collected = 0;
        let mut page = 1;
        loop {
            let doc = api.startup_followers(c.id.0, page).unwrap();
            collected += doc.get("items").unwrap().as_arr().unwrap().len();
            if page as u64 >= doc.get("last_page").and_then(Value::as_u64).unwrap() {
                break;
            }
            page += 1;
        }
        assert_eq!(collected, c.followers.len());
    }

    #[test]
    fn syndicates_are_listed_and_fetchable() {
        let api = api();
        let world = Arc::clone(&api.world);
        let p1 = api.syndicates(1).unwrap();
        let total = p1.get("total").and_then(Value::as_u64).unwrap() as usize;
        assert_eq!(total, world.syndicates.len());
        if total > 0 {
            let doc = api.syndicate(0).unwrap();
            let backers = doc.get("backers").unwrap().as_arr().unwrap();
            assert_eq!(backers.len(), world.syndicates[0].backers.len());
            assert_eq!(
                doc.get("lead").and_then(Value::as_u64),
                Some(world.syndicates[0].lead.0 as u64)
            );
        }
        assert_eq!(api.syndicate(9_999_999).unwrap_err(), ApiError::NotFound);
    }

    #[test]
    fn faulty_api_errors_sometimes_but_counts_calls() {
        let world = Arc::new(World::generate(&WorldConfig::tiny(1)));
        let api = AngelListApi::new(world, FaultModel::new(0.5, 9));
        let mut errs = 0;
        for _ in 0..200 {
            if api.raising_startups(1).is_err() {
                errs += 1;
            }
        }
        assert!(errs > 50 && errs < 150, "errs = {errs}");
        assert_eq!(api.calls(), 200);
    }
}
