//! # crowdnet-socialsim
//!
//! The synthetic crowdfunding ecosystem — CrowdNet's substitute for the live
//! AngelList, CrunchBase, Facebook and Twitter services the paper crawled in
//! 2016 (none of which can be crawled here; see DESIGN.md §1).
//!
//! Two halves:
//!
//! * **World generation** ([`World::generate`]) — a seeded generative model
//!   of startups, users (investors / founders / employees), follow edges,
//!   investments, funding rounds and social-media accounts. Every marginal
//!   the paper reports is a calibration target of this model: the §3 dataset
//!   counts and role fractions, the Figure 3 long-tailed investment
//!   distribution, the Figure 6 engagement→success rate table, the §5.1
//!   bipartite degree structure, and the planted co-investment communities
//!   behind §5.2–5.3. The planted structure is kept as ground truth
//!   ([`World::planted_communities`]) so detector ablations can score
//!   recovery quality.
//!
//! * **Simulated web APIs** ([`sources`]) — paginated, token-authenticated,
//!   rate-limited JSON endpoints mimicking the four services' public APIs
//!   (AngelList startups/followers, CrunchBase search + funding rounds, the
//!   Facebook Graph API, and the Twitter REST API with its 180-calls-per-15
//!   minutes window). The crawler in `crowdnet-crawl` speaks only to these
//!   interfaces, exercising the same code paths as a live crawl: frontier
//!   expansion, pagination, token sharding, rate-limit backoff, and fault
//!   retry.
//!
//! ```
//! use crowdnet_socialsim::{World, WorldConfig};
//!
//! let world = World::generate(&WorldConfig::tiny(42));
//! assert!(world.companies.len() > 500);
//! // The same seed regenerates the same world.
//! let again = World::generate(&WorldConfig::tiny(42));
//! assert_eq!(world.companies.len(), again.companies.len());
//! ```

pub mod clock;
pub mod config;
pub mod dist;
pub mod entities;
pub mod gen;
pub mod sources;

pub use clock::{Clock, SimClock};
pub use config::{Scale, WorldConfig};
pub use entities::{Company, CompanyId, Role, User, UserId};
pub use gen::world::{PlantedCommunity, Syndicate, World};
