//! World-generation configuration and calibration constants.
//!
//! Every number here is a calibration target lifted from the paper; the
//! generator consumes them, and `crowdnet-core`'s experiment drivers
//! re-measure them through the full crawl + analysis pipeline.

/// How large a world to generate, relative to the paper's crawl
/// (744,036 AngelList companies / 1,109,441 users).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper scale. Heavy: hundreds of MB of entities.
    Paper,
    /// `1/denominator` of paper scale (companies and users shrink together).
    Fraction(u32),
    /// Explicit entity counts.
    Custom {
        /// Number of companies.
        companies: u32,
        /// Number of users.
        users: u32,
    },
}

impl Scale {
    /// Companies at this scale.
    pub fn companies(self) -> u32 {
        match self {
            Scale::Paper => PAPER_COMPANIES,
            Scale::Fraction(d) => (PAPER_COMPANIES / d.max(1)).max(100),
            Scale::Custom { companies, .. } => companies.max(10),
        }
    }

    /// Users at this scale.
    pub fn users(self) -> u32 {
        match self {
            Scale::Paper => PAPER_USERS,
            Scale::Fraction(d) => (PAPER_USERS / d.max(1)).max(150),
            Scale::Custom { users, .. } => users.max(15),
        }
    }

    /// The linear shrink factor relative to paper scale (1.0 = paper).
    pub fn factor(self) -> f64 {
        self.companies() as f64 / PAPER_COMPANIES as f64
    }
}

/// §3: AngelList companies crawled.
pub const PAPER_COMPANIES: u32 = 744_036;
/// §3: AngelList users crawled.
pub const PAPER_USERS: u32 = 1_109_441;
/// §3: fraction of users who self-identify as investors (47,345 / 1,109,441).
pub const INVESTOR_FRACTION: f64 = 0.043;
/// §3: founders fraction (203,023 / 1,109,441).
pub const FOUNDER_FRACTION: f64 = 0.183;
/// §3: prospective-employee fraction (489,836 / 1,109,441).
pub const EMPLOYEE_FRACTION: f64 = 0.442;
/// §3: AngelList's raising list holds ~4000 companies at paper scale.
pub const RAISING_AT_PAPER_SCALE: f64 = 4_000.0 / PAPER_COMPANIES as f64;
/// Fig. 6: companies with a Facebook link (37,762 / 744,036).
pub const FACEBOOK_FRACTION: f64 = 0.0507;
/// Fig. 6: companies with a Twitter link (70,563 / 744,036).
pub const TWITTER_FRACTION: f64 = 0.0948;
/// Fig. 6: companies with both (32,544 / 744,036).
pub const BOTH_SOCIAL_FRACTION: f64 = 0.0437;
/// Fig. 6: companies with a demo video (36,364 / 744,036).
pub const DEMO_VIDEO_FRACTION: f64 = 0.0488;
/// Fig. 6: median Facebook likes across linked pages.
pub const MEDIAN_FB_LIKES: f64 = 652.0;
/// Fig. 6: median tweet count across linked accounts.
pub const MEDIAN_TWEETS: f64 = 343.0;
/// Fig. 6: median Twitter followers across linked accounts.
pub const MEDIAN_TW_FOLLOWERS: f64 = 339.0;
/// §3: mean companies followed per investor.
pub const MEAN_INVESTOR_FOLLOWS: f64 = 247.0;
/// §3: mean investments per investor ("3.3 companies on average, with the
/// median being 1"); Fig. 3's most active investor makes ~1000.
pub const MEAN_INVESTMENTS: f64 = 3.3;
/// Fig. 3: cap on investments by a single investor.
pub const MAX_INVESTMENTS: u64 = 1_000;
/// §5.2: communities detected at paper scale.
pub const PAPER_COMMUNITIES: usize = 96;
/// §5.1: average investors per invested company.
pub const MEAN_INVESTORS_PER_COMPANY: f64 = 2.6;

/// Success-rate calibration (Fig. 6), as conditional probabilities the
/// generator samples from. Engagement above the medians multiplies the odds;
/// the measured table emerges from pushing every company through the full
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessModel {
    /// P(funded | no social presence) — paper: 0.4 %.
    pub base_none: f64,
    /// P(funded | Facebook, low engagement).
    pub fb_low: f64,
    /// P(funded | Facebook, likes > median) — paper row "Facebook (>652)": 18 %.
    pub fb_high: f64,
    /// P(funded | Twitter, low engagement).
    pub tw_low: f64,
    /// P(funded | Twitter, high engagement) — paper rows ~14.7–15.2 %.
    pub tw_high: f64,
    /// P(funded | both, both sides high) — paper rows ~22.1–22.2 %.
    pub both_high: f64,
    /// P(funded | both, both sides low).
    pub both_low: f64,
    /// Multiplier applied when a demo video is present (videos also correlate
    /// with social presence, so the measured "video" row lands near the
    /// paper's 10.4 % without matching it exactly).
    pub video_boost: f64,
}

impl Default for SuccessModel {
    fn default() -> Self {
        // Solved so the marginal rows of Fig. 6 come out near the paper:
        // e.g. FB average = (fb_low + fb_high) / 2 ≈ 12.2 %.
        SuccessModel {
            base_none: 0.004,
            fb_low: 0.062,
            fb_high: 0.180,
            tw_low: 0.052,
            tw_high: 0.150,
            both_high: 0.222,
            both_low: 0.030,
            video_boost: 1.35,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed: same seed + scale ⇒ identical world.
    pub seed: u64,
    /// World size.
    pub scale: Scale,
    /// Success-rate calibration.
    pub success: SuccessModel,
    /// Log-scale sigma for engagement log-normals.
    pub engagement_sigma: f64,
    /// Power-law exponent for investments per investor (α ≈ 2.18 gives
    /// mean ≈ 3.3 with median 1 when truncated at 1000).
    pub investment_alpha: f64,
    /// Planted investor communities (scaled from the paper's 96).
    pub communities: usize,
    /// Range of community cohesion π (probability an investment is drawn
    /// from the community pool instead of the global market).
    pub cohesion_range: (f64, f64),
    /// Mean follows for non-investor users.
    pub mean_casual_follows: f64,
    /// Fraction of funded companies whose AngelList profile links CrunchBase
    /// directly (the rest require name search).
    pub crunchbase_link_fraction: f64,
}

impl WorldConfig {
    /// Default configuration at the given scale.
    pub fn at_scale(seed: u64, scale: Scale) -> WorldConfig {
        // Community count shrinks sublinearly: at 1/16 scale the paper's 96
        // communities become ~24 rather than 6, keeping each statistically
        // analyzable (the paper's average community has ~190 investors).
        let communities = ((PAPER_COMMUNITIES as f64) * scale.factor().powf(0.5))
            .round()
            .max(4.0) as usize;
        WorldConfig {
            seed,
            scale,
            success: SuccessModel::default(),
            engagement_sigma: 1.6,
            investment_alpha: 2.18,
            communities,
            cohesion_range: (0.05, 0.92),
            mean_casual_follows: 9.0,
            crunchbase_link_fraction: 0.7,
        }
    }

    /// The default evaluation scale (1/16 of the paper's crawl).
    pub fn default_eval(seed: u64) -> WorldConfig {
        WorldConfig::at_scale(seed, Scale::Fraction(16))
    }

    /// A small world for benches (1/64 scale).
    pub fn small(seed: u64) -> WorldConfig {
        WorldConfig::at_scale(seed, Scale::Fraction(64))
    }

    /// A toy world for unit tests and doctests (~1500 companies).
    pub fn tiny(seed: u64) -> WorldConfig {
        WorldConfig::at_scale(
            seed,
            Scale::Custom {
                companies: 1_500,
                users: 2_200,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_arithmetic() {
        assert_eq!(Scale::Paper.companies(), PAPER_COMPANIES);
        assert_eq!(Scale::Fraction(16).companies(), PAPER_COMPANIES / 16);
        assert_eq!(Scale::Fraction(16).users(), PAPER_USERS / 16);
        assert_eq!(
            Scale::Custom {
                companies: 500,
                users: 700
            }
            .companies(),
            500
        );
        assert!((Scale::Paper.factor() - 1.0).abs() < 1e-12);
        assert!((Scale::Fraction(4).factor() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn scale_floors_prevent_degenerate_worlds() {
        assert!(Scale::Fraction(u32::MAX).companies() >= 100);
        assert!(Scale::Custom { companies: 0, users: 0 }.companies() >= 10);
    }

    #[test]
    fn paper_marginals_are_consistent() {
        // has-FB ∪ has-TW should match 1 − no-social (0.8981 in Fig. 6).
        let union = FACEBOOK_FRACTION + TWITTER_FRACTION - BOTH_SOCIAL_FRACTION;
        assert!((union - (1.0 - 0.8981)).abs() < 0.001, "union = {union}");
    }

    #[test]
    fn community_count_scales_sublinearly() {
        let paper = WorldConfig::at_scale(1, Scale::Paper);
        assert_eq!(paper.communities, PAPER_COMMUNITIES);
        let sixteenth = WorldConfig::default_eval(1);
        assert!(sixteenth.communities >= PAPER_COMMUNITIES / 16);
        assert!(sixteenth.communities < PAPER_COMMUNITIES);
    }

    #[test]
    fn success_model_marginals_near_paper() {
        let m = SuccessModel::default();
        // Half of FB-linked pages are above the median by construction.
        let fb_avg = (m.fb_low + m.fb_high) / 2.0;
        assert!((fb_avg - 0.122).abs() < 0.01, "fb avg {fb_avg}");
        let tw_avg = (m.tw_low + m.tw_high) / 2.0;
        assert!((tw_avg - 0.102).abs() < 0.01, "tw avg {tw_avg}");
        // 30× headline: FB avg over the no-social base.
        assert!(fb_avg / m.base_none > 25.0);
    }
}
