//! Virtual time.
//!
//! Rate limits (Twitter's 180 calls / 15 min) and the longitudinal crawl
//! schedule are time-based. Real deployments would use the system clock; the
//! simulation uses [`SimClock`], which only moves when advanced, so a
//! 15-minute rate-limit window or a 30-day daily-crawl study elapses
//! instantly in tests while exercising exactly the same limiter logic.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of milliseconds-since-epoch timestamps.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;

    /// Block (virtually or really) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// A manually advanced virtual clock. Cloning shares the underlying time.
#[derive(Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at t = 0 ms.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A clock starting at `start_ms`.
    pub fn starting_at(start_ms: u64) -> SimClock {
        let c = SimClock::new();
        c.now.store(start_ms, Ordering::SeqCst);
        c
    }

    /// Advance by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_ms(ms);
    }
}

/// The real system clock (used when the platform runs against wall time).
#[derive(Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// A clock whose `sleep_ms` records total virtual sleep — handy for asserting
/// how long a crawl would have waited on rate limits.
#[derive(Clone, Default)]
pub struct RecordingClock {
    inner: SimClock,
    slept: Arc<RwLock<u64>>,
}

impl RecordingClock {
    /// New recording clock at t = 0.
    pub fn new() -> RecordingClock {
        RecordingClock::default()
    }

    /// Total milliseconds spent sleeping.
    pub fn total_slept_ms(&self) -> u64 {
        *self.slept.read()
    }
}

impl Clock for RecordingClock {
    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    fn sleep_ms(&self, ms: u64) {
        *self.slept.write() += ms;
        self.inner.sleep_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_only_when_told() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(500);
        assert_eq!(c.now_ms(), 500);
        c.sleep_ms(250);
        assert_eq!(c.now_ms(), 750);
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::starting_at(10);
        let b = a.clone();
        a.advance_ms(5);
        assert_eq!(b.now_ms(), 15);
    }

    #[test]
    fn recording_clock_tracks_sleep() {
        let c = RecordingClock::new();
        c.sleep_ms(100);
        c.sleep_ms(40);
        assert_eq!(c.total_slept_ms(), 140);
        assert_eq!(c.now_ms(), 140);
    }

    #[test]
    fn system_clock_is_monotonicish() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000); // after Sep 2020 — sanity
    }
}
