//! Sampling primitives for the world generator.
//!
//! Implemented from scratch on top of `rand`'s uniform generator so the
//! generative model has no opaque dependencies: truncated discrete power
//! laws (the Figure 3 investment long tail), log-normals (engagement counts
//! with the paper's medians), and an append-weighted urn for preferential
//! attachment (which concentrates investments the way §5.1 reports).

use rand::Rng;

/// Truncated discrete power law on `{min, …, max}`:
/// `P(k) ∝ k^(−alpha)`. Sampled by inverse-CDF over a precomputed table.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    min: u64,
    cdf: Vec<f64>,
}

impl PowerLaw {
    /// Build the sampler. `alpha > 1` gives the heavy-tailed regimes used by
    /// the generator.
    pub fn new(alpha: f64, min: u64, max: u64) -> PowerLaw {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        let mut cdf = Vec::with_capacity((max - min + 1) as usize);
        let mut acc = 0.0;
        for k in min..=max {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        PowerLaw { min, cdf }
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.min + idx.min(self.cdf.len() - 1) as u64
    }

    /// Expected value of the distribution (exact, from the table).
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (self.min + i as u64) as f64 * (c - prev);
            prev = c;
        }
        mean
    }
}

/// Standard normal via Box–Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Log-normal parameterized by its **median** and log-scale `sigma`:
/// `X = median · exp(sigma · Z)`. The paper reports engagement medians
/// (652 likes, 343 tweets, 339 followers), which makes this the natural
/// parameterization.
pub fn log_normal_by_median<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * gaussian(rng)).exp()
}

/// Bernoulli draw.
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p
}

/// An urn for preferential attachment: items are drawn proportionally to
/// their weight, and `reinforce` appends another copy (the Barabási–Albert
/// "repeated endpoints" trick, O(1) per operation).
#[derive(Debug, Clone, Default)]
pub struct Urn {
    slots: Vec<u32>,
}

impl Urn {
    /// An empty urn.
    pub fn new() -> Urn {
        Urn::default()
    }

    /// An urn with one base slot per item `0..n` (uniform start).
    pub fn uniform(n: u32) -> Urn {
        Urn {
            slots: (0..n).collect(),
        }
    }

    /// Add one more slot for `item` (increasing its weight by 1).
    pub fn reinforce(&mut self, item: u32) {
        self.slots.push(item);
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the urn has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Draw an item proportionally to its weight; `None` if empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.slots.is_empty() {
            None
        } else {
            Some(self.slots[rng.random_range(0..self.slots.len())])
        }
    }
}

/// Sample `k` distinct indices from `0..n` (k ≤ n) — Floyd's algorithm,
/// O(k) expected.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    use std::collections::HashSet;
    let k = k.min(n);
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn power_law_respects_bounds() {
        let pl = PowerLaw::new(2.1, 1, 1000);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = pl.sample(&mut r);
            assert!((1..=1000).contains(&v));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed_with_median_one() {
        let pl = PowerLaw::new(2.1, 1, 1000);
        let mut r = rng();
        let samples: Vec<u64> = (0..50_000).map(|_| pl.sample(&mut r)).collect();
        let ones = samples.iter().filter(|&&v| v == 1).count();
        // P(1) = 1/zeta-ish ≈ 0.64 for alpha=2.1 truncated at 1000.
        assert!(ones as f64 / samples.len() as f64 > 0.5);
        let max = *samples.iter().max().unwrap();
        assert!(max > 100, "expected a long tail, max = {max}");
    }

    #[test]
    fn power_law_mean_matches_samples() {
        let pl = PowerLaw::new(1.8, 1, 500);
        let analytic = pl.mean();
        let mut r = rng();
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| pl.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!(
            (emp - analytic).abs() / analytic < 0.05,
            "emp {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_median_is_calibrated() {
        let mut r = rng();
        let mut samples: Vec<f64> =
            (0..40_001).map(|_| log_normal_by_median(&mut r, 652.0, 1.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - 652.0).abs() / 652.0 < 0.06,
            "median {median} should be ~652"
        );
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn urn_prefers_heavy_items() {
        let mut urn = Urn::uniform(10);
        for _ in 0..90 {
            urn.reinforce(3); // item 3 now holds 91 of 100 slots
        }
        let mut r = rng();
        let hits = (0..10_000).filter(|_| urn.sample(&mut r) == Some(3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.91).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn urn_empty_returns_none() {
        assert_eq!(Urn::new().sample(&mut rng()), None);
        assert!(Urn::new().is_empty());
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let picks = sample_distinct(&mut r, 50, 20);
            assert_eq!(picks.len(), 20);
            let set: std::collections::HashSet<_> = picks.iter().collect();
            assert_eq!(set.len(), 20);
            assert!(picks.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_distinct_clamps_k() {
        let mut r = rng();
        let picks = sample_distinct(&mut r, 5, 50);
        assert_eq!(picks.len(), 5);
    }

    #[test]
    fn determinism_per_seed() {
        let pl = PowerLaw::new(2.0, 1, 100);
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..100).map(|_| pl.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..100).map(|_| pl.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
