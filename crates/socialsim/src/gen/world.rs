//! The generative model of the crowdfunding ecosystem.
//!
//! Generation proceeds in five phases, each consuming calibration targets
//! from [`WorldConfig`] (see that module for the paper sources):
//!
//! 1. **Companies** — quality, raising flag, social-media presence category
//!    (none / FB / TW / both, with the Fig. 6 marginals), engagement counts
//!    (log-normals with the paper's medians, tilted by latent quality so the
//!    engagement–success correlation has a confounder, mirroring the paper's
//!    §4 correlation-not-causality caveat), demo videos, and funding success
//!    sampled from the [`SuccessModel`].
//! 2. **Users** — §3 role mix; investors follow many companies (mean 247),
//!    casual users follow a few; a sparse user→user follow graph.
//! 3. **Communities** — active investors are partitioned into planted
//!    communities with log-normal sizes and per-community cohesion π.
//! 4. **Investments** — each active investor draws a power-law number of
//!    investments (median 1, mean ≈ 3.3, max 1000); each investment comes
//!    from the community's pool with probability π (herding) or from a
//!    global preferential-attachment urn otherwise.
//! 5. **Funding rounds** — funded companies get CrunchBase-style rounds
//!    consistent with their investor counts.

use crate::config::{self, WorldConfig};
use crate::dist::{self, PowerLaw, Urn};
use crate::entities::*;
use crate::gen::names;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground truth for one planted investor community.
#[derive(Debug, Clone)]
pub struct PlantedCommunity {
    /// Index of the community.
    pub id: usize,
    /// Member investors.
    pub investors: Vec<UserId>,
    /// The company pool members preferentially co-invest in.
    pub pool: Vec<CompanyId>,
    /// Probability an investment is drawn from the pool (cohesion).
    pub cohesion: f64,
}

/// A public investment syndicate (§2 of the paper: "AngelList also allows
/// investors to invite other accredited investors to form syndicates for
/// investment"). Unlike [`PlantedCommunity`] ground truth, syndicates are
/// *observable*: the AngelList API lists them and their backers, so the
/// crawler can fetch them and analyses can compare detected communities
/// against real, crawlable groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Syndicate {
    /// Syndicate id (dense).
    pub id: u32,
    /// The lead investor.
    pub lead: UserId,
    /// Backers who publicly joined (a subset of the underlying community).
    pub backers: Vec<UserId>,
}

/// A fully generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// All startups.
    pub companies: Vec<Company>,
    /// All users.
    pub users: Vec<User>,
    /// Ground-truth planted communities (not exposed through any API; used
    /// only to score detector recovery in the ablation benches).
    pub planted_communities: Vec<PlantedCommunity>,
    /// Publicly listed syndicates (exposed through the AngelList API).
    pub syndicates: Vec<Syndicate>,
}

impl World {
    /// Generate a world from a configuration. Deterministic in
    /// `(config.seed, config.scale)`.
    pub fn generate(cfg: &WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut companies = generate_companies(cfg, &mut rng);
        let mut users = generate_users(cfg, companies.len() as u32, &mut rng);
        wire_follows(cfg, &mut companies, &mut users, &mut rng);
        // Investable companies: funded ∪ raising ∪ a random slice of the
        // rest — sized so mean investors-per-company lands near the paper's
        // 2.6 (edges ≈ investors × 3.3 spread over ~8 % of companies).
        let investable: Vec<CompanyId> = companies
            .iter()
            .filter(|c| c.funded || c.raising || rng.random::<f64>() < 0.08)
            .map(|c| c.id)
            .collect();
        let planted = plant_communities(cfg, &investable, &users, &mut rng);
        generate_investments(cfg, &mut companies, &mut users, &planted, &investable, &mut rng);
        generate_rounds(&mut companies, &mut rng);
        let syndicates = register_syndicates(&planted, &mut rng);
        World {
            companies,
            users,
            planted_communities: planted,
            syndicates,
        }
    }

    /// All users with the investor role.
    pub fn investors(&self) -> impl Iterator<Item = &User> {
        self.users.iter().filter(|u| u.role == Role::Investor)
    }

    /// Investor→company edges (the §5.1 bipartite graph's ground truth).
    pub fn investment_edges(&self) -> impl Iterator<Item = (UserId, CompanyId)> + '_ {
        self.users
            .iter()
            .flat_map(|u| u.investments.iter().map(move |&c| (u.id, c)))
    }

    /// Companies currently fundraising (the crawler's seed list).
    pub fn raising_companies(&self) -> impl Iterator<Item = &Company> {
        self.companies.iter().filter(|c| c.raising)
    }

    /// Total number of investment edges.
    pub fn edge_count(&self) -> usize {
        self.users.iter().map(|u| u.investments.len()).sum()
    }

    /// Advance the world by `days` of simulated activity — the dynamics the
    /// §7 longitudinal study needs to observe:
    ///
    /// * social engagement grows (tweets accrue, likes/followers compound at
    ///   a quality-tilted rate),
    /// * raising companies may close a round; the closing probability rises
    ///   with *current* engagement, so engagement growth genuinely precedes
    ///   funding (a causal arrow the event-study analysis can detect),
    /// * newly funded companies gain a CrunchBase funding round stamped with
    ///   the current day.
    ///
    /// Deterministic in `(self, days, day_index, seed)`.
    ///
    /// Beyond engagement growth and round closings, investors keep
    /// investing: each active community member may add a new investment
    /// (from the community pool with its cohesion probability), so the
    /// co-investment communities *drift* over time — the dynamics the §7
    /// "community detection on dynamic graphs" extension tracks.
    pub fn evolve(&mut self, days: u32, day_index: u32, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ (day_index as u64) << 32);
        self.evolve_investments(days, &mut rng);
        for c in self.companies.iter_mut() {
            let drive = 0.5 + c.quality; // quality tilts all growth
            if let Some(tw) = c.twitter.as_mut() {
                // Posting velocity rises with audience size (active accounts
                // have more followers AND tweet more) — this is the signal
                // the §7 event study detects: the same engagement level that
                // raises the funding hazard also raises pre-event velocity.
                let audience = (tw.followers as f64 / config::MEDIAN_TW_FOLLOWERS)
                    .clamp(0.2, 6.0)
                    .sqrt();
                let new_tweets =
                    (drive * audience * days as f64 * rng.random::<f64>() * 2.0).round() as u64;
                tw.statuses += new_tweets;
                let growth = 1.0 + 0.002 * drive * days as f64 * rng.random::<f64>();
                tw.followers = ((tw.followers as f64) * growth).round() as u64;
            }
            if let Some(fb) = c.facebook.as_mut() {
                let growth = 1.0 + 0.003 * drive * days as f64 * rng.random::<f64>();
                fb.likes = ((fb.likes as f64) * growth).round() as u64;
            }
            if c.raising && !c.funded {
                // Engagement-driven closing hazard per step.
                let engagement = c
                    .twitter
                    .as_ref()
                    .map(|t| (t.followers as f64 / config::MEDIAN_TW_FOLLOWERS).min(4.0))
                    .unwrap_or(0.0)
                    + c.facebook
                        .as_ref()
                        .map(|f| (f.likes as f64 / config::MEDIAN_FB_LIKES).min(4.0))
                        .unwrap_or(0.0);
                let hazard = (0.004 + 0.035 * engagement) * days as f64 / 7.0;
                if dist::coin(&mut rng, hazard.min(0.5)) {
                    c.funded = true;
                    c.raising = false;
                    c.has_crunchbase_link = true;
                    c.rounds.push(FundingRound {
                        day: day_index * days,
                        raised_usd: dist::log_normal_by_median(&mut rng, 1_000_000.0, 0.8)
                            .round() as u64,
                        investor_count: rng.random_range(1..8),
                    });
                }
            }
        }
    }
}

/// Cohesive communities often register publicly as syndicates: a lead plus
/// the backers who chose to join openly. Loose communities stay informal
/// (they are "looser communities where investors largely make independent
/// decisions", which have no reason to syndicate).
fn register_syndicates(planted: &[PlantedCommunity], rng: &mut StdRng) -> Vec<Syndicate> {
    let mut out = Vec::new();
    for pc in planted {
        if pc.cohesion < 0.45 || pc.investors.len() < 3 || !dist::coin(rng, 0.75) {
            continue;
        }
        // 60–95% of members join publicly, proportional to cohesion.
        let join_p = (0.4 + 0.6 * pc.cohesion).min(0.95);
        let backers: Vec<UserId> = pc
            .investors
            .iter()
            .copied()
            .filter(|_| dist::coin(rng, join_p))
            .collect();
        if backers.len() < 2 {
            continue;
        }
        out.push(Syndicate {
            id: out.len() as u32,
            lead: backers[0],
            backers,
        });
    }
    out
}

impl World {
    /// New investments during evolution (see [`World::evolve`]).
    fn evolve_investments(&mut self, days: u32, rng: &mut StdRng) {
        let per_day_rate = 0.004;
        let p_new = (per_day_rate * days as f64).min(0.5);
        let n_companies = self.companies.len() as u32;
        // Take the community list out to split the borrow with users/companies.
        let planted = std::mem::take(&mut self.planted_communities);
        for pc in &planted {
            for &uid in &pc.investors {
                if !dist::coin(rng, p_new) {
                    continue;
                }
                let from_pool = dist::coin(rng, pc.cohesion) && !pc.pool.is_empty();
                let pick = if from_pool {
                    pc.pool[rng.random_range(0..pc.pool.len())]
                } else {
                    CompanyId(rng.random_range(0..n_companies))
                };
                let user = &mut self.users[uid.0 as usize];
                if !user.investments.contains(&pick) {
                    user.investments.push(pick);
                    self.companies[pick.0 as usize].investors.push(uid);
                }
            }
        }
        self.planted_communities = planted;
    }
}

fn generate_companies(cfg: &WorldConfig, rng: &mut StdRng) -> Vec<Company> {
    let n = cfg.scale.companies();
    let p_raising = config::RAISING_AT_PAPER_SCALE;
    // Presence categories from the Fig. 6 marginals.
    let p_both = config::BOTH_SOCIAL_FRACTION;
    let p_fb_only = config::FACEBOOK_FRACTION - p_both;
    let p_tw_only = config::TWITTER_FRACTION - p_both;
    // Demo-video rates conditioned on social presence, solved so the overall
    // fraction matches DEMO_VIDEO_FRACTION (see DESIGN.md §4).
    let p_social = p_both + p_fb_only + p_tw_only;
    let p_video_social = 0.26;
    let p_video_none =
        (config::DEMO_VIDEO_FRACTION - p_social * p_video_social) / (1.0 - p_social);

    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let quality: f64 = rng.random();
        // Engagement medians tilt with quality; the tilt is symmetric in log
        // space so the population median stays at the paper's value.
        let tilt = (1.2 * (quality - 0.5)).exp();

        let cat: f64 = rng.random();
        let (facebook, twitter) = if cat < p_both {
            (true, true)
        } else if cat < p_both + p_fb_only {
            (true, false)
        } else if cat < p_both + p_fb_only + p_tw_only {
            (false, true)
        } else {
            (false, false)
        };

        let name = names::company_name(rng, i);
        let facebook = facebook.then(|| FacebookPage {
            likes: dist::log_normal_by_median(rng, config::MEDIAN_FB_LIKES * tilt, cfg.engagement_sigma)
                .round()
                .max(0.0) as u64,
            posts: dist::log_normal_by_median(rng, 40.0 * tilt, 1.0).round().max(0.0) as u32,
        });
        let twitter = twitter.then(|| TwitterAccount {
            username: names::twitter_username(&name, i),
            followers: dist::log_normal_by_median(
                rng,
                config::MEDIAN_TW_FOLLOWERS * tilt,
                cfg.engagement_sigma,
            )
            .round()
            .max(0.0) as u64,
            friends: dist::log_normal_by_median(rng, 180.0, 1.0).round().max(0.0) as u64,
            statuses: dist::log_normal_by_median(rng, config::MEDIAN_TWEETS * tilt, cfg.engagement_sigma)
                .round()
                .max(0.0) as u64,
            created_day: rng.random_range(0..1500),
        });

        let has_social = facebook.is_some() || twitter.is_some();
        let has_demo_video = dist::coin(
            rng,
            if has_social { p_video_social } else { p_video_none },
        );

        let funded = dist::coin(
            rng,
            success_probability(cfg, quality, &facebook, &twitter, has_demo_video),
        );

        out.push(Company {
            id: CompanyId(i),
            name,
            quality,
            raising: dist::coin(rng, p_raising),
            has_demo_video,
            facebook,
            twitter,
            funded,
            rounds: Vec::new(),
            has_crunchbase_link: funded && dist::coin(rng, cfg.crunchbase_link_fraction),
            followers: Vec::new(),
            investors: Vec::new(),
        });
    }
    // Guarantee a non-empty crawl seed list at tiny scales.
    if !out.iter().any(|c| c.raising) {
        out[0].raising = true;
    }
    out
}

/// P(funded | features): the Fig. 6 calibration (see [`config::SuccessModel`]).
pub fn success_probability(
    cfg: &WorldConfig,
    quality: f64,
    facebook: &Option<FacebookPage>,
    twitter: &Option<TwitterAccount>,
    has_demo_video: bool,
) -> f64 {
    let m = &cfg.success;
    let fb_high = facebook
        .as_ref()
        .map(|f| f.likes as f64 > config::MEDIAN_FB_LIKES);
    let tw_high = twitter.as_ref().map(|t| {
        t.statuses as f64 > config::MEDIAN_TWEETS
            || t.followers as f64 > config::MEDIAN_TW_FOLLOWERS
    });
    let base = match (fb_high, tw_high) {
        (None, None) => m.base_none,
        (Some(high), None) => {
            if high {
                m.fb_high
            } else {
                m.fb_low
            }
        }
        (None, Some(high)) => {
            if high {
                m.tw_high
            } else {
                m.tw_low
            }
        }
        (Some(f), Some(t)) => match (f, t) {
            (true, true) => m.both_high,
            (true, false) => m.fb_high * 0.9,
            (false, true) => m.tw_high * 0.9,
            (false, false) => m.both_low,
        },
    };
    let video = if has_demo_video { m.video_boost } else { 1.0 };
    // Mild quality tilt with unit mean: the latent confounder.
    let tilt = 0.6 + 0.8 * quality;
    (base * video * tilt).clamp(0.0, 0.95)
}

fn generate_users(cfg: &WorldConfig, _companies: u32, rng: &mut StdRng) -> Vec<User> {
    let n = cfg.scale.users();
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let roll: f64 = rng.random();
        let role = if roll < config::INVESTOR_FRACTION {
            Role::Investor
        } else if roll < config::INVESTOR_FRACTION + config::FOUNDER_FRACTION {
            Role::Founder
        } else if roll
            < config::INVESTOR_FRACTION + config::FOUNDER_FRACTION + config::EMPLOYEE_FRACTION
        {
            Role::Employee
        } else {
            Role::Other
        };
        out.push(User {
            id: UserId(i),
            role,
            follows_companies: Vec::new(),
            follows_users: Vec::new(),
            investments: Vec::new(),
        });
    }
    // Tiny worlds must still contain investors.
    if !out.iter().any(|u| u.role == Role::Investor) {
        out[0].role = Role::Investor;
    }
    out
}

fn wire_follows(
    cfg: &WorldConfig,
    companies: &mut [Company],
    users: &mut [User],
    rng: &mut StdRng,
) {
    let nc = companies.len() as u32;
    let nu = users.len() as u32;
    // Popularity urn: follows beget follows (preferential attachment).
    let mut urn = Urn::uniform(nc);
    // Investors follow ~247 companies on average (§3): log-normal with
    // median solved from mean = median · exp(σ²/2).
    let sigma = 1.3f64;
    let investor_median = config::MEAN_INVESTOR_FOLLOWS / (sigma * sigma / 2.0).exp();
    let casual_median = cfg.mean_casual_follows / (0.9f64 * 0.9 / 2.0).exp();

    for u in users.iter_mut() {
        let target = if u.role == Role::Investor {
            dist::log_normal_by_median(rng, investor_median, sigma)
        } else {
            dist::log_normal_by_median(rng, casual_median, 0.9)
        };
        let count = (target.round() as usize).clamp(1, (nc as usize).min(4000));
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut attempts = 0;
        while seen.len() < count && attempts < count * 4 {
            attempts += 1;
            let pick = urn.sample(rng).expect("urn non-empty");
            if seen.insert(pick) {
                u.follows_companies.push(CompanyId(pick));
                urn.reinforce(pick);
            }
        }
        // A sparse user→user graph (the crawler's third expansion edge).
        let friend_count = rng.random_range(0..6);
        for _ in 0..friend_count {
            let other = rng.random_range(0..nu);
            if other != u.id.0 {
                u.follows_users.push(UserId(other));
            }
        }
    }
    // Materialize reverse edges (the AngelList "followers of a startup"
    // endpoint the BFS crawl expands through).
    for u in users.iter() {
        for &c in &u.follows_companies {
            companies[c.0 as usize].followers.push(u.id);
        }
    }
}

fn plant_communities(
    cfg: &WorldConfig,
    investable: &[CompanyId],
    users: &[User],
    rng: &mut StdRng,
) -> Vec<PlantedCommunity> {
    // Active investors: 99% of investors (§5.1 keeps 46,966 of 47,345).
    let mut active: Vec<UserId> = users
        .iter()
        .filter(|u| u.role == Role::Investor && rng.random::<f64>() < 0.992)
        .map(|u| u.id)
        .collect();
    // Deterministic shuffle.
    for i in (1..active.len()).rev() {
        active.swap(i, rng.random_range(0..=i));
    }

    let k = cfg.communities.max(1).min(active.len().max(1));
    // Log-normal community sizes, normalized to cover all active investors.
    let mut raw: Vec<f64> = (0..k)
        .map(|_| dist::log_normal_by_median(rng, 1.0, 0.8).max(0.05))
        .collect();
    let total: f64 = raw.iter().sum();
    for r in &mut raw {
        *r /= total;
    }

    let (lo, hi) = cfg.cohesion_range;
    let mut out = Vec::with_capacity(k);
    let mut cursor = 0usize;
    for (i, frac) in raw.iter().enumerate() {
        let size = if i == k - 1 {
            active.len() - cursor
        } else {
            ((frac * active.len() as f64).round() as usize).min(active.len() - cursor)
        };
        let members: Vec<UserId> = active[cursor..cursor + size].to_vec();
        cursor += size;
        // Cohesion spans the configured range; spread deterministically so
        // both strong (herding) and weak (independent) communities exist.
        let cohesion = lo + (hi - lo) * (i as f64 / (k.max(2) - 1) as f64);
        // Pool size well below membership × mean-investments, so cohesive
        // communities overlap heavily (the paper's strongest community
        // averages 2.1 shared investments per investor pair).
        // Capped at 48: a community herds around a bounded set of deals (~2 dozen) no
        // matter how many members it has (companies cap their rounds, which
        // is also why the paper sees only 2.6 investors per company).
        let pool_target = ((size as f64 * 0.35).ceil() as usize)
            .clamp(4, 24)
            .min(investable.len().max(4));
        let pool: Vec<CompanyId> =
            dist::sample_distinct(rng, investable.len(), pool_target.min(investable.len()))
                .into_iter()
                .map(|idx| investable[idx])
                .collect();
        out.push(PlantedCommunity {
            id: i,
            investors: members,
            pool,
            cohesion,
        });
    }
    out
}

fn generate_investments(
    cfg: &WorldConfig,
    companies: &mut [Company],
    users: &mut [User],
    planted: &[PlantedCommunity],
    investable: &[CompanyId],
    rng: &mut StdRng,
) {
    let pl = PowerLaw::new(cfg.investment_alpha, 1, config::MAX_INVESTMENTS);
    // Global market urn over the whole investable universe (one base slot
    // each), reinforced per investment — preferential attachment, but broad
    // enough that the company side stays larger than the investor side, as
    // in the paper's 59,953-company bipartite graph.
    let mut global = Urn::new();
    for c in investable {
        global.reinforce(c.0);
    }
    if global.is_empty() {
        // Degenerate tiny world: fall back to every company.
        global = Urn::uniform(companies.len() as u32);
    }

    // Per-community urns concentrate co-investment inside the pool.
    let mut community_urns: Vec<Urn> = planted
        .iter()
        .map(|p| {
            let mut u = Urn::new();
            for c in &p.pool {
                u.reinforce(c.0);
            }
            u
        })
        .collect();

    for community in planted {
        for &uid in &community.investors {
            let k = pl.sample(rng) as usize;
            let mut chosen = std::collections::HashSet::with_capacity(k);
            let mut attempts = 0;
            while chosen.len() < k && attempts < k * 6 + 12 {
                attempts += 1;
                let from_pool = rng.random::<f64>() < community.cohesion;
                let pick = if from_pool {
                    community_urns[community.id].sample(rng)
                } else {
                    global.sample(rng)
                };
                let Some(pick) = pick else { break };
                if chosen.insert(pick) {
                    users[uid.0 as usize].investments.push(CompanyId(pick));
                    companies[pick as usize].investors.push(uid);
                    if from_pool {
                        community_urns[community.id].reinforce(pick);
                    }
                    global.reinforce(pick);
                }
            }
        }
    }
}

fn generate_rounds(companies: &mut [Company], rng: &mut StdRng) {
    for c in companies.iter_mut() {
        if !c.funded {
            continue;
        }
        let n_rounds = rng.random_range(1..=3u32);
        let investors_total = c.investors.len().max(1) as u32;
        let mut day = rng.random_range(0..600);
        for r in 0..n_rounds {
            let raised =
                dist::log_normal_by_median(rng, 1_200_000.0 * (r + 1) as f64, 0.9).round() as u64;
            c.rounds.push(FundingRound {
                day,
                raised_usd: raised,
                investor_count: (investors_total / n_rounds).max(1)
                    + rng.random_range(0..3),
            });
            day += rng.random_range(120..500);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn world() -> World {
        World::generate(&WorldConfig::tiny(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::tiny(9));
        let b = World::generate(&WorldConfig::tiny(9));
        assert_eq!(a.companies.len(), b.companies.len());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.companies[7], b.companies[7]);
        assert_eq!(a.users[13], b.users[13]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(&WorldConfig::tiny(1));
        let b = World::generate(&WorldConfig::tiny(2));
        assert_ne!(
            a.companies.iter().filter(|c| c.funded).count(),
            b.companies.iter().filter(|c| c.funded).count()
        );
    }

    #[test]
    fn entity_counts_match_scale() {
        let w = world();
        assert_eq!(w.companies.len(), 1_500);
        assert_eq!(w.users.len(), 2_200);
    }

    #[test]
    fn role_fractions_near_paper() {
        let cfg = WorldConfig::at_scale(3, Scale::Custom { companies: 2_000, users: 40_000 });
        let w = World::generate(&cfg);
        let n = w.users.len() as f64;
        let frac = |role: Role| w.users.iter().filter(|u| u.role == role).count() as f64 / n;
        assert!((frac(Role::Investor) - 0.043).abs() < 0.01);
        assert!((frac(Role::Founder) - 0.183).abs() < 0.02);
        assert!((frac(Role::Employee) - 0.442).abs() < 0.02);
    }

    #[test]
    fn social_presence_marginals_near_paper() {
        let cfg = WorldConfig::at_scale(4, Scale::Custom { companies: 60_000, users: 500 });
        let w = World::generate(&cfg);
        let n = w.companies.len() as f64;
        let fb = w.companies.iter().filter(|c| c.facebook.is_some()).count() as f64 / n;
        let tw = w.companies.iter().filter(|c| c.twitter.is_some()).count() as f64 / n;
        let both = w
            .companies
            .iter()
            .filter(|c| c.facebook.is_some() && c.twitter.is_some())
            .count() as f64
            / n;
        let video = w.companies.iter().filter(|c| c.has_demo_video).count() as f64 / n;
        assert!((fb - 0.0507).abs() < 0.005, "fb {fb}");
        assert!((tw - 0.0948).abs() < 0.006, "tw {tw}");
        assert!((both - 0.0437).abs() < 0.005, "both {both}");
        assert!((video - 0.0488).abs() < 0.01, "video {video}");
    }

    #[test]
    fn engagement_beats_no_social_on_success() {
        let cfg = WorldConfig::at_scale(5, Scale::Custom { companies: 120_000, users: 500 });
        let w = World::generate(&cfg);
        let rate = |f: &dyn Fn(&Company) -> bool| {
            let matching: Vec<&Company> = w.companies.iter().filter(|c| f(c)).collect();
            matching.iter().filter(|c| c.funded).count() as f64 / matching.len().max(1) as f64
        };
        let none = rate(&|c| !c.has_social_presence());
        let social = rate(&|c| c.has_social_presence());
        assert!(none < 0.01, "no-social rate {none}");
        assert!(social > 0.08, "social rate {social}");
        // The 30× headline, within generative noise.
        assert!(social / none > 10.0, "lift {}", social / none);
    }

    #[test]
    fn investment_distribution_is_long_tailed() {
        let cfg = WorldConfig::at_scale(6, Scale::Custom { companies: 30_000, users: 120_000 });
        let w = World::generate(&cfg);
        let counts: Vec<usize> = w
            .investors()
            .filter(|u| !u.investments.is_empty())
            .map(|u| u.investments.len())
            .collect();
        assert!(!counts.is_empty());
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let mut sorted = counts.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        assert_eq!(median, 1, "median investments should be 1");
        assert!((mean - 3.3).abs() < 0.8, "mean investments {mean}");
        assert!(*sorted.last().unwrap() > 30, "long tail expected");
    }

    #[test]
    fn investments_are_distinct_and_reciprocal() {
        let w = world();
        for u in &w.users {
            let set: std::collections::HashSet<_> = u.investments.iter().collect();
            assert_eq!(set.len(), u.investments.len(), "duplicate investment");
            for &c in &u.investments {
                assert!(
                    w.companies[c.0 as usize].investors.contains(&u.id),
                    "reverse edge missing"
                );
            }
        }
        for c in &w.companies {
            for &uid in &c.investors {
                assert!(w.users[uid.0 as usize].investments.contains(&c.id));
            }
        }
    }

    #[test]
    fn only_investors_invest() {
        let w = world();
        for u in &w.users {
            if u.role != Role::Investor {
                assert!(u.investments.is_empty());
            }
        }
    }

    #[test]
    fn follows_are_reciprocal_with_company_followers() {
        let w = world();
        let mut total = 0usize;
        for u in &w.users {
            for &c in &u.follows_companies {
                assert!(w.companies[c.0 as usize].followers.contains(&u.id));
            }
            total += u.follows_companies.len();
        }
        let company_side: usize = w.companies.iter().map(|c| c.followers.len()).sum();
        assert_eq!(total, company_side);
    }

    #[test]
    fn funded_companies_have_rounds_and_only_them() {
        let w = world();
        for c in &w.companies {
            if c.funded {
                assert!(!c.rounds.is_empty());
                for r in &c.rounds {
                    assert!(r.raised_usd > 0);
                    assert!(r.investor_count >= 1);
                }
            } else {
                assert!(c.rounds.is_empty());
                assert!(!c.has_crunchbase_link);
            }
        }
    }

    #[test]
    fn planted_communities_partition_active_investors() {
        let w = world();
        let mut seen = std::collections::HashSet::new();
        for pc in &w.planted_communities {
            assert!(!pc.pool.is_empty());
            assert!((0.0..=1.0).contains(&pc.cohesion));
            for &m in &pc.investors {
                assert!(seen.insert(m), "investor in two communities");
                assert_eq!(w.users[m.0 as usize].role, Role::Investor);
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn strong_communities_coinvest_more_than_weak() {
        let cfg = WorldConfig::at_scale(8, Scale::Custom { companies: 20_000, users: 60_000 });
        let w = World::generate(&cfg);
        // Average pairwise shared investments in the most vs least cohesive
        // community with at least 10 members.
        let shared_avg = |pc: &PlantedCommunity| {
            let sets: Vec<std::collections::HashSet<u32>> = pc
                .investors
                .iter()
                .map(|&u| w.users[u.0 as usize].investments.iter().map(|c| c.0).collect())
                .collect();
            let mut total = 0usize;
            let mut pairs = 0usize;
            for i in 0..sets.len().min(60) {
                for j in (i + 1)..sets.len().min(60) {
                    total += sets[i].intersection(&sets[j]).count();
                    pairs += 1;
                }
            }
            total as f64 / pairs.max(1) as f64
        };
        let eligible: Vec<&PlantedCommunity> = w
            .planted_communities
            .iter()
            .filter(|p| p.investors.len() >= 10)
            .collect();
        let strongest = eligible
            .iter()
            .max_by(|a, b| a.cohesion.partial_cmp(&b.cohesion).unwrap())
            .unwrap();
        let weakest = eligible
            .iter()
            .min_by(|a, b| a.cohesion.partial_cmp(&b.cohesion).unwrap())
            .unwrap();
        let s = shared_avg(strongest);
        let wk = shared_avg(weakest);
        // The paper's 2.1 figure is for the *detected* densest core; the
        // planted-average here only needs to show a clear herding gap.
        assert!(s > wk * 3.0, "strong {s} should dwarf weak {wk}");
        assert!(s > 0.2, "strong community should share investments: {s}");
    }

    #[test]
    fn evolve_grows_engagement_and_closes_rounds() {
        let cfg = WorldConfig::at_scale(11, Scale::Custom { companies: 30_000, users: 500 });
        let mut w = World::generate(&cfg);
        let before_funded = w.companies.iter().filter(|c| c.funded).count();
        let before_tweets: u64 = w
            .companies
            .iter()
            .filter_map(|c| c.twitter.as_ref())
            .map(|t| t.statuses)
            .sum();
        for day in 0..30 {
            w.evolve(1, day, 777);
        }
        let after_funded = w.companies.iter().filter(|c| c.funded).count();
        let after_tweets: u64 = w
            .companies
            .iter()
            .filter_map(|c| c.twitter.as_ref())
            .map(|t| t.statuses)
            .sum();
        assert!(after_tweets > before_tweets, "tweets should accrue");
        assert!(after_funded > before_funded, "some raising companies close");
        // Newly funded companies carry a round stamped within the window.
        let newly = w
            .companies
            .iter()
            .filter(|c| c.funded && !c.raising && !c.rounds.is_empty())
            .count();
        assert!(newly >= after_funded - before_funded);
    }

    #[test]
    fn evolve_is_deterministic() {
        let cfg = WorldConfig::tiny(12);
        let mut a = World::generate(&cfg);
        let mut b = World::generate(&cfg);
        for day in 0..5 {
            a.evolve(1, day, 5);
            b.evolve(1, day, 5);
        }
        assert_eq!(a.companies, b.companies);
    }

    #[test]
    fn syndicates_come_from_cohesive_communities() {
        let cfg = WorldConfig::at_scale(9, Scale::Custom { companies: 20_000, users: 60_000 });
        let w = World::generate(&cfg);
        assert!(!w.syndicates.is_empty(), "cohesive communities should syndicate");
        for (i, s) in w.syndicates.iter().enumerate() {
            assert_eq!(s.id as usize, i);
            assert!(s.backers.len() >= 2);
            assert!(s.backers.contains(&s.lead));
            // Backers are a subset of exactly one planted community, and
            // that community is cohesive.
            let home = w
                .planted_communities
                .iter()
                .find(|pc| pc.investors.contains(&s.lead))
                .expect("lead belongs to a community");
            assert!(home.cohesion >= 0.45);
            for b in &s.backers {
                assert!(home.investors.contains(b));
            }
        }
        // Loose communities never syndicate.
        let syndicated_leads: std::collections::HashSet<u32> =
            w.syndicates.iter().map(|s| s.lead.0).collect();
        for pc in w.planted_communities.iter().filter(|p| p.cohesion < 0.45) {
            for inv in &pc.investors {
                assert!(!syndicated_leads.contains(&inv.0));
            }
        }
    }

    #[test]
    fn raising_list_is_nonempty_and_proportional() {
        let cfg = WorldConfig::at_scale(10, Scale::Custom { companies: 100_000, users: 500 });
        let w = World::generate(&cfg);
        let raising = w.raising_companies().count();
        // ~4000/744k of 100k ≈ 537.
        assert!((300..900).contains(&raising), "raising = {raising}");
    }
}
