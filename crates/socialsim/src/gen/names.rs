//! Deterministic startup-name generation.
//!
//! Names matter to the pipeline: the CrunchBase augmentation step falls back
//! to *name search* when an AngelList profile has no direct CrunchBase link
//! (§3), so generated names must be mostly-unique strings with realistic
//! collisions.

use rand::Rng;

const PREFIXES: &[&str] = &[
    "Aero", "Agri", "Api", "Block", "Bright", "Byte", "Cloud", "Cogni", "Crypto", "Data",
    "Deep", "Delta", "Echo", "Edge", "Flux", "Gene", "Grid", "Helio", "Hyper", "Insta",
    "Iron", "Juno", "Kine", "Lambda", "Loop", "Lumen", "Magni", "Nano", "Neo", "Nimbus",
    "Octo", "Omni", "Opti", "Orbit", "Pixel", "Plasma", "Pulse", "Quant", "Rapid", "Robo",
    "Sensor", "Shift", "Signal", "Solar", "Spark", "Stellar", "Swift", "Terra", "Turbo",
    "Ultra", "Vapor", "Vega", "Velo", "Verte", "Vision", "Volt", "Wave", "Zen", "Zephyr",
    "Zync",
];

const SUFFIXES: &[&str] = &[
    "ify", "ly", "Labs", "Works", "Hub", "Base", "Stack", "Flow", "Mind", "Sense",
    "Logic", "Gen", "Link", "Loop", "Metrics", "Scale", "Sync", "Track", "Verse", "Ware",
    "Cast", "Dash", "Forge", "Grid", "Kit", "Nest", "Path", "Pay", "Port", "Shift",
];

/// Generate a startup name for company index `i`. Collisions are possible by
/// design (prefix × suffix is finite) — the CrunchBase name-search fallback
/// must cope with ambiguous matches, as the paper notes ("if the CrunchBase
/// search returns a unique result…").
pub fn company_name<R: Rng + ?Sized>(rng: &mut R, i: u32) -> String {
    let p = PREFIXES[rng.random_range(0..PREFIXES.len())];
    let s = SUFFIXES[rng.random_range(0..SUFFIXES.len())];
    // Most names carry a unique numeric disambiguator; a small slice of
    // bare names remains so the CrunchBase name-search fallback still sees
    // ambiguous and (rarely) falsely-unique matches, as a real corpus would.
    if rng.random::<f64>() < 0.92 {
        format!("{p}{s} {i}")
    } else {
        format!("{p}{s}")
    }
}

/// Twitter handle for a company: lowercase alpha of the name plus id.
pub fn twitter_username(name: &str, id: u32) -> String {
    let stem: String = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .take(12)
        .collect::<String>()
        .to_lowercase();
    format!("{stem}{id}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..20).map(|i| company_name(&mut r, i)).collect()
        };
        let b: Vec<String> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..20).map(|i| company_name(&mut r, i)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_mostly_unique_with_some_collisions() {
        let mut r = StdRng::seed_from_u64(1);
        let names: Vec<String> = (0..20_000).map(|i| company_name(&mut r, i)).collect();
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        let ratio = distinct.len() as f64 / names.len() as f64;
        assert!(ratio > 0.9, "too many collisions: {ratio}");
        assert!(ratio < 1.0, "collisions must exist for the search fallback");
    }

    #[test]
    fn twitter_usernames_are_url_safe_and_unique() {
        let u1 = twitter_username("CloudLabs 42", 7);
        let u2 = twitter_username("CloudLabs 42", 8);
        assert_ne!(u1, u2);
        assert!(u1.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        assert!(u1.starts_with("cloudlabs"));
    }
}
