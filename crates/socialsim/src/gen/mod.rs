//! World generation.

pub mod names;
pub mod world;
