//! The entities of the simulated crowdfunding ecosystem.

/// Dense company identifier (index into `World::companies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompanyId(pub u32);

/// Dense user identifier (index into `World::users`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// A user's primary self-identified role on AngelList.
///
/// §3 of the paper: of 1,109,441 users, 4.3 % identified as investors,
/// 18.3 % as founders and 44.2 % as prospective employees; the rest are
/// unclassified visitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Accredited investor.
    Investor,
    /// Startup founder.
    Founder,
    /// Prospective employee / job seeker.
    Employee,
    /// Registered but unclassified.
    Other,
}

/// A funding round (the CrunchBase side of the data).
#[derive(Debug, Clone, PartialEq)]
pub struct FundingRound {
    /// Days since the simulation epoch.
    pub day: u32,
    /// Amount raised in USD.
    pub raised_usd: u64,
    /// Number of participating investors.
    pub investor_count: u32,
}

/// A startup's Facebook page (present only when the company links one).
#[derive(Debug, Clone, PartialEq)]
pub struct FacebookPage {
    /// Page likes. Paper median across AngelList-linked pages: 652.
    pub likes: u64,
    /// Recent post count.
    pub posts: u32,
}

/// A startup's Twitter account (present only when the company links one).
#[derive(Debug, Clone, PartialEq)]
pub struct TwitterAccount {
    /// Handle (the string after the last `/` of the profile URL).
    pub username: String,
    /// Follower count. Paper median: 339.
    pub followers: u64,
    /// Following count.
    pub friends: u64,
    /// Lifetime tweet count. Paper median: 343.
    pub statuses: u64,
    /// Day (since epoch) the account was created.
    pub created_day: u32,
}

/// A startup.
#[derive(Debug, Clone, PartialEq)]
pub struct Company {
    /// Identifier.
    pub id: CompanyId,
    /// Display name.
    pub name: String,
    /// Latent quality in [0, 1] (drives success and engagement jointly; not
    /// exposed by any API — it exists so correlations have a realistic
    /// confounder, which is exactly the paper's correlation-vs-causality
    /// caveat in §4).
    pub quality: f64,
    /// Currently running a fundraising campaign (the AngelList "raising"
    /// list — the BFS seed set, about 4000 companies at paper scale).
    pub raising: bool,
    /// Has a demo video on its AngelList profile (4.88 % at paper scale).
    pub has_demo_video: bool,
    /// Facebook page, if the AngelList profile links one.
    pub facebook: Option<FacebookPage>,
    /// Twitter account, if the AngelList profile links one.
    pub twitter: Option<TwitterAccount>,
    /// Successfully raised funding (recorded on CrunchBase).
    pub funded: bool,
    /// CrunchBase funding rounds (empty unless `funded`).
    pub rounds: Vec<FundingRound>,
    /// Whether the AngelList profile links its CrunchBase entry directly
    /// (otherwise the crawler must fall back to name search, §3).
    pub has_crunchbase_link: bool,
    /// Users following this startup on AngelList.
    pub followers: Vec<UserId>,
    /// Investors who invested (the reverse of `User::investments`).
    pub investors: Vec<UserId>,
}

/// An AngelList user.
#[derive(Debug, Clone, PartialEq)]
pub struct User {
    /// Identifier.
    pub id: UserId,
    /// Self-identified role.
    pub role: Role,
    /// Startups this user follows.
    pub follows_companies: Vec<CompanyId>,
    /// Other users this user follows.
    pub follows_users: Vec<UserId>,
    /// Companies this user invested in (investors only; §5.1 keeps only
    /// investors with ≥1 investment in the bipartite graph).
    pub investments: Vec<CompanyId>,
}

impl Company {
    /// True if the profile links at least one social account.
    pub fn has_social_presence(&self) -> bool {
        self.facebook.is_some() || self.twitter.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_presence_logic() {
        let base = Company {
            id: CompanyId(0),
            name: "X".into(),
            quality: 0.5,
            raising: false,
            has_demo_video: false,
            facebook: None,
            twitter: None,
            funded: false,
            rounds: vec![],
            has_crunchbase_link: false,
            followers: vec![],
            investors: vec![],
        };
        assert!(!base.has_social_presence());
        let mut fb = base.clone();
        fb.facebook = Some(FacebookPage { likes: 1, posts: 0 });
        assert!(fb.has_social_presence());
        let mut tw = base.clone();
        tw.twitter = Some(TwitterAccount {
            username: "x".into(),
            followers: 0,
            friends: 0,
            statuses: 0,
            created_day: 0,
        });
        assert!(tw.has_social_presence());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CompanyId(1));
        set.insert(CompanyId(1));
        assert_eq!(set.len(), 1);
        assert!(UserId(2) < UserId(10));
    }
}
