//! Offline stand-in for `proptest` (1.x API subset).
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of proptest the workspace's property tests actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_filter` / `prop_recursive`,
//! * [`any`] for primitives, range strategies, tuple strategies,
//!   [`Just`], [`prop_oneof!`], [`collection::vec`],
//! * string strategies from a small regex subset (char classes,
//!   `\PC`, and `* + ? {m} {m,n}` quantifiers),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted: **no shrinking**
//! (a failing case reports the assertion message only), no persistence of
//! failing seeds (`.proptest-regressions` files are ignored), and seeding
//! is derived deterministically from the test's module path so runs are
//! reproducible by construction.

use std::ops::Range;
use std::sync::Arc;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic generator driving all strategies (xoshiro256++).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (test name); FNV-1a then SplitMix64.
    pub fn for_test(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed_u64(h)
    }

    /// Seed from a `u64` via SplitMix64 state expansion.
    pub fn from_seed_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n > 0`.
    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Why a generated case was abandoned rather than failed.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Outcome of one test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected (filter or `prop_assume!`); retried, not a failure.
    Reject(String),
    /// Assertion failed.
    Fail(String),
}

/// Runner configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Abort after this many rejected cases (filter-heavy strategies).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value, or a rejection if constraints could not be met.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; rejects the case if 32
    /// consecutive draws all fail.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth level and builds the next one. `depth` levels are
    /// stacked; `_desired_size`/`_expected_branch_size` are accepted for
    /// API compatibility but sizing is governed by the inner collection
    /// strategies themselves.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = recurse(level).boxed();
        }
        level
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..32 {
            let candidate = self.inner.generate(rng)?;
            if (self.pred)(candidate_ref(&candidate)) {
                return Ok(candidate);
            }
        }
        Err(Rejection(self.whence.clone()))
    }
}

// Written as a function so the borrow in `Filter::generate` has an
// explicit, simple shape.
fn candidate_ref<T>(v: &T) -> &T {
    v
}

/// Uniform choice among boxed strategies (backing [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of one or more options; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` — biased toward small and boundary
/// values for integers, and including non-finite values for floats.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                match rng.below(8) {
                    // Bias: small magnitudes and boundaries surface edge
                    // cases far more often than uniform bits would.
                    0 | 1 => (rng.below(16) as i64 as $t)
                        .wrapping_sub((rng.next_u64() & 1) as $t * 8 as $t),
                    2 => <$t>::MAX.wrapping_sub(rng.below(3) as $t),
                    3 => <$t>::MIN.wrapping_add(rng.below(3) as $t),
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 | 1 => (rng.below(2001) as f64 - 1000.0) / 10.0,
            2 => {
                const SPECIAL: [f64; 7] =
                    [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, f64::MIN_POSITIVE, f64::EPSILON];
                SPECIAL[rng.below(SPECIAL.len() as u64) as usize]
            }
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                Ok(((self.start as i128) + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        Ok(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.
    use super::{Rejection, Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let len = self.size.generate(rng)?;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Ok(out)
        }
    }
}

mod regex_lite;
pub use regex_lite::StringStrategy;

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        regex_lite::StringStrategy::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        self.as_str().generate(rng)
    }
}

/// Uniform choice among strategies with the same value type (no weights —
/// the workspace does not use weighted variants).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        ::core::stringify!($left),
                        ::core::stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        ::core::stringify!($left),
                        ::core::stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Reject (retry) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::format!("assume failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
}

/// Define property tests. Each `fn` runs `config.cases` accepted cases of
/// freshly generated inputs; `prop_assert*` failures panic with the
/// assertion message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(::core::concat!(
                    ::core::module_path!(), "::", ::core::stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(
                            let $pat = match $crate::Strategy::generate(&($strat), &mut rng) {
                                ::core::result::Result::Ok(v) => v,
                                ::core::result::Result::Err(r) => {
                                    return ::core::result::Result::Err($crate::TestCaseError::Reject(r.0));
                                }
                            };
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest '{}': too many rejected cases ({})",
                                    ::core::stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case #{}:\n{}",
                                ::core::stringify!($name),
                                accepted + 1,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in -5i64..5, c in 0usize..1) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert_eq!(c, 0);
        }

        #[test]
        fn filters_filter(f in any::<f64>().prop_filter("finite", |f| f.is_finite())) {
            prop_assert!(f.is_finite());
        }

        #[test]
        fn vec_sizes_and_tuples(v in crate::collection::vec((0u32..4, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (x, _) in &v {
                prop_assert!(*x < 4);
            }
        }

        #[test]
        fn assume_retries(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map_and_just(v in prop_oneof![
            Just(-1i64),
            (0u32..5).prop_map(|x| x as i64 + 100),
        ]) {
            prop_assert!(v == -1 || (100..105).contains(&v));
        }

        #[test]
        fn string_regexes(s in "[a-z_0-9]{0,12}", t in "\\PC*") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
            prop_assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn recursive_strategies_bottom_out() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let strat = (0u32..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = crate::TestRng::for_test("tree");
        for _ in 0..200 {
            let t = crate::Strategy::generate(&strat, &mut rng).unwrap();
            assert!(depth(&t) <= 4);
        }
    }
}
