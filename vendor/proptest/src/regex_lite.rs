//! String strategies from a small regex subset.
//!
//! Proptest treats `&str` strategies as regexes describing the strings to
//! generate. The workspace uses a narrow dialect, and that is all this
//! module implements:
//!
//! * literal characters and `\`-escaped literals (`\.`, `\*`, `\(` …),
//! * character classes `[a-z_0-9]` with ranges and escaped members,
//! * `\PC` — "any char not in Unicode category C (control)",
//! * `.` — any non-newline printable char,
//! * quantifiers `*`, `+`, `?`, `{n}`, `{m,n}` on the preceding atom.
//!
//! Unsupported syntax (alternation, groups, anchors …) is a hard error at
//! strategy construction, so a typo fails the test rather than silently
//! generating the wrong language.

use super::{Rejection, TestRng};

/// Repetition: `*` maps to `{0,16}`, `+` to `{1,16}`, `?` to `{0,1}`.
const UNBOUNDED_MAX: u32 = 16;

#[derive(Debug, Clone)]
enum CharSet {
    /// Exactly this char.
    Literal(char),
    /// Inclusive ranges plus individual members.
    Class { ranges: Vec<(char, char)>, singles: Vec<char> },
    /// Any printable (non-control) char, mostly ASCII with some Unicode.
    Printable,
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

/// A compiled string strategy (see module docs for the dialect).
#[derive(Debug, Clone)]
pub struct StringStrategy {
    atoms: Vec<Atom>,
}

/// Non-control chars beyond ASCII occasionally emitted by `Printable`, to
/// keep UTF-8 handling honest in parsers under test.
const UNICODE_SAMPLES: [char; 8] = ['é', 'ß', 'λ', 'Ж', '中', '🌍', '\u{00A0}', '\u{2028}'];

impl StringStrategy {
    /// Compile `pattern`, or explain which construct is unsupported.
    pub fn parse(pattern: &str) -> Result<StringStrategy, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        None => return Err("trailing backslash".into()),
                        Some('P') => {
                            // \PC — complement of category C. Only C is used.
                            i += 1;
                            match chars.get(i) {
                                Some('C') => {
                                    i += 1;
                                    CharSet::Printable
                                }
                                other => {
                                    return Err(format!("unsupported \\P category {other:?}"))
                                }
                            }
                        }
                        Some('n') => {
                            i += 1;
                            CharSet::Literal('\n')
                        }
                        Some('t') => {
                            i += 1;
                            CharSet::Literal('\t')
                        }
                        Some(&c) => {
                            i += 1;
                            CharSet::Literal(c)
                        }
                    }
                }
                '[' => {
                    i += 1;
                    let (set, next) = parse_class(&chars, i)?;
                    i = next;
                    set
                }
                '.' => {
                    i += 1;
                    CharSet::Printable
                }
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(format!("unsupported regex construct '{}'", chars[i]))
                }
                c => {
                    i += 1;
                    CharSet::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max, next) = parse_quantifier(&chars, i)?;
            i = next;
            atoms.push(Atom { set, min, max });
        }
        Ok(StringStrategy { atoms })
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        let mut out = String::new();
        for atom in &self.atoms {
            let span = u64::from(atom.max - atom.min) + 1;
            let count = atom.min + rng.below(span) as u32;
            for _ in 0..count {
                out.push(sample_set(&atom.set, rng));
            }
        }
        Ok(out)
    }
}

fn sample_set(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Literal(c) => *c,
        CharSet::Class { ranges, singles } => {
            // Weight each range by its width so members stay ~uniform.
            let range_total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                .sum();
            let total = range_total + singles.len() as u64;
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let width = u64::from(hi as u32 - lo as u32) + 1;
                if pick < width {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= width;
            }
            singles[pick as usize]
        }
        CharSet::Printable => {
            // 1-in-8 non-ASCII; otherwise printable ASCII (0x20..=0x7E).
            if rng.below(8) == 0 {
                UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
            }
        }
    }
}

/// Parse a `[...]` class body starting just past `[`; returns the set and
/// the index just past `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(CharSet, usize), String> {
    let mut ranges = Vec::new();
    let mut singles = Vec::new();
    if chars.get(i) == Some(&'^') {
        return Err("negated classes are unsupported".into());
    }
    loop {
        let c = match chars.get(i) {
            None => return Err("unterminated character class".into()),
            Some(']') => {
                i += 1;
                break;
            }
            Some('\\') => {
                i += 1;
                match chars.get(i) {
                    None => return Err("trailing backslash in class".into()),
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(&c) => c,
                }
            }
            Some(&c) => c,
        };
        i += 1;
        // `a-z` range (a `-` before `]` or at the start is a literal).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            let mut hi = chars[i + 1];
            i += 2;
            if hi == '\\' {
                match chars.get(i) {
                    None => return Err("trailing backslash in class range".into()),
                    Some(&c) => {
                        hi = c;
                        i += 1;
                    }
                }
            }
            if (hi as u32) < (c as u32) {
                return Err(format!("inverted class range {c}-{hi}"));
            }
            ranges.push((c, hi));
        } else {
            singles.push(c);
        }
    }
    if ranges.is_empty() && singles.is_empty() {
        return Err("empty character class".into());
    }
    Ok((CharSet::Class { ranges, singles }, i))
}

/// Parse an optional quantifier at `i`; returns `(min, max, next_index)`.
fn parse_quantifier(chars: &[char], mut i: usize) -> Result<(u32, u32, usize), String> {
    match chars.get(i) {
        Some('*') => Ok((0, UNBOUNDED_MAX, i + 1)),
        Some('+') => Ok((1, UNBOUNDED_MAX, i + 1)),
        Some('?') => Ok((0, 1, i + 1)),
        Some('{') => {
            i += 1;
            let mut first = String::new();
            while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
                first.push(chars[i]);
                i += 1;
            }
            let min: u32 = first.parse().map_err(|_| "bad quantifier lower bound")?;
            match chars.get(i) {
                Some('}') => Ok((min, min, i + 1)),
                Some(',') => {
                    i += 1;
                    let mut second = String::new();
                    while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
                        second.push(chars[i]);
                        i += 1;
                    }
                    if chars.get(i) != Some(&'}') {
                        return Err("unterminated {m,n} quantifier".into());
                    }
                    let max: u32 = second.parse().map_err(|_| "bad quantifier upper bound")?;
                    if max < min {
                        return Err(format!("quantifier max {max} < min {min}"));
                    }
                    Ok((min, max, i + 1))
                }
                _ => Err("unterminated {n} quantifier".into()),
            }
        }
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let strat = StringStrategy::parse(pattern).unwrap();
        let mut rng = TestRng::for_test(pattern);
        (0..n).map(|_| strat.generate(&mut rng).unwrap()).collect()
    }

    #[test]
    fn class_with_ranges_and_repeat() {
        for s in gen_many("[a-z_0-9]{0,12}", 200) {
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_star_excludes_controls() {
        let all = gen_many("\\PC*", 300);
        assert!(all.iter().all(|s| s.chars().all(|c| !c.is_control())));
        // Star actually varies the length.
        let lens: std::collections::HashSet<usize> =
            all.iter().map(|s| s.chars().count()).collect();
        assert!(lens.len() > 3);
        // Some non-ASCII shows up across 300 samples.
        assert!(all.iter().any(|s| s.chars().any(|c| !c.is_ascii())));
    }

    #[test]
    fn escaped_members_in_class() {
        for s in gen_many("[A-Za-z_\\.\\*\\(\\), ='<>0-9]{0,80}", 100) {
            assert!(s.chars().count() <= 80);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric()
                        || "_.*(), ='<>".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_and_exact_quantifiers() {
        for s in gen_many("[a-z]{1,4}", 100) {
            assert!((1..=4).contains(&s.chars().count()));
        }
        for s in gen_many("x{3}", 10) {
            assert_eq!(s, "xxx");
        }
        for s in gen_many("ab?c", 50) {
            assert!(s == "abc" || s == "ac");
        }
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        assert!(StringStrategy::parse("(a|b)").is_err());
        assert!(StringStrategy::parse("[^a]").is_err());
        assert!(StringStrategy::parse("[abc").is_err());
        assert!(StringStrategy::parse("a{2,1}").is_err());
    }
}
