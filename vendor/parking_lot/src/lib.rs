//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly rather than
//! `LockResult`s. A panic while holding a std lock poisons it; parking_lot
//! semantics are "the lock is simply released", so this wrapper recovers
//! the inner value from the `PoisonError` and carries on.

use std::sync::{self, LockResult};

/// Non-poisoning mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Acquire without blocking; `None` if contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Block until exclusive write access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Shared access without blocking; `None` if a writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without blocking; `None` if contended.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
