//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! Only [`thread::scope`] is vendored — the one crossbeam API the
//! workspace uses. It delegates to `std::thread::scope` (stabilised well
//! after crossbeam popularised the pattern), adapting the closure shape:
//! crossbeam passes `&Scope` both to the outer closure and to each spawned
//! closure, and returns a `Result` that is `Err` when a child panicked.
//!
//! One semantic difference: `std::thread::scope` re-raises child panics at
//! the end of the scope instead of packaging them into the `Err` arm, so
//! here a child panic propagates as a panic and `scope` never returns
//! `Err`. Every call site in this workspace immediately `.unwrap()`s the
//! result, for which the two behaviours are indistinguishable (both abort
//! the test with the panic payload).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error type of [`scope`]: the payload of a panicked child thread.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Hand-written so `Scope` is `Copy` regardless of the lifetimes —
    // spawned closures receive a copy of the scope handle.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned in a scope; joined implicitly when the
    /// scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives the scope handle (crossbeam's signature), so
        /// children can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&handle)) }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all children are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn children_borrow_and_all_join() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_handle_returns_value() {
        let v = super::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn nested_spawn_through_passed_scope() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
