//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of `rand` it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`], and [`rngs::StdRng`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic for
//! a given seed on every platform, which is exactly the property the
//! simulation relies on. Nothing here touches the OS entropy pool: there is
//! deliberately no `thread_rng`/`from_os_rng`, so seeding is always explicit.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand` convention).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as the element of a [`Rng::random_range`] range.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[low, high)`. `high > low` is the caller's
    /// responsibility (checked by `random_range`).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Debiased Lemire multiply-shift: uniform offset in `[0, span)`; `span > 0`.
fn uniform_offset<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                // Width fits u64 for every primitive span up to the full
                // 64-bit domain (the one 2^64-wide case is handled by the
                // inclusive impl before reaching here).
                let span = (high as i128 - low as i128) as u128 as u64;
                let offset = uniform_offset(rng, span);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + (high - low) * f64::from_rng(rng)
    }
}

/// A range form accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "random_range: empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (high as i128 - low as i128 + 1) as u128 as u64;
                let offset = uniform_offset(rng, span);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A value uniformly distributed over `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Explicitly seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion (matches `rand`'s
    /// documented behaviour closely enough for reproducible simulations).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (fast, 256-bit
    /// state, passes BigCrush; not cryptographic, which `rand`'s real
    /// `StdRng` is — nothing in this workspace needs that).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut r = StdRng::seed_from_u64(43);
        for _ in 0..1000 {
            let v = r.random::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = r.random_range(0..=3u32);
            assert!(x <= 3);
        }
        // Every value of a small range is hit.
        let mut seen = [false; 10];
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn usable_through_unsized_generic(){
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(5);
        let v = draw(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
