//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Enough of criterion's surface for the bench crate to compile and run:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`,
//! `BenchmarkId`, `Throughput`, and `black_box`. Measurement is a plain
//! median-of-samples wall-clock loop printed to stdout — no statistics
//! machinery, no HTML reports. `CRITERION_QUICK=1` caps every benchmark at
//! one sample of one iteration so CI can smoke-run the full bench suite.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Quantity processed per iteration; printed as a rate next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (edges, documents, rows …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_ns: Vec<u128>,
}

impl Bencher {
    /// Time `routine`, keeping its return value opaque to the optimiser.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.last_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.last_ns.push(start.elapsed().as_nanos());
        }
    }

    fn median_ns(&self) -> u128 {
        if self.last_ns.is_empty() {
            return 0;
        }
        let mut v = self.last_ns.clone();
        v.sort_unstable();
        v[v.len() / 2]
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map_or(false, |v| v == "1")
}

fn fmt_duration(ns: u128) -> String {
    let d = Duration::from_nanos(ns as u64);
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

fn report(name: &str, median_ns: u128, throughput: Option<Throughput>) {
    let mut line = format!("bench: {name:<50} {:>12}/iter", fmt_duration(median_ns));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if median_ns > 0 {
            let rate = count as f64 / (median_ns as f64 / 1e9);
            let _ = write!(line, "  ({rate:.0} {unit}/s)");
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Samples per benchmark (builder form, as criterion's config is).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        if quick_mode() {
            1
        } else {
            self.sample_size
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.effective_samples(), last_ns: Vec::new() };
        f(&mut b);
        report(name, b.median_ns(), None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if quick_mode() {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let mut b = Bencher { samples, last_ns: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.median_ns(), self.throughput);
        self
    }

    /// Run one benchmark with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self {
        let samples = if quick_mode() {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let mut b = Bencher { samples, last_ns: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.median_ns(), self.throughput);
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Declare a benchmark group: either `criterion_group!(name, target, …)` or
/// the config form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("n100"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = demo;
        config = Criterion::default().sample_size(5);
        targets = sample_bench,
    }

    #[test]
    fn group_macro_runs_targets() {
        demo();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher { samples: 7, last_ns: Vec::new() };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.last_ns.len(), 7);
    }
}
