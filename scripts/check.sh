#!/usr/bin/env bash
# Full local gate: build, tests, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

echo "==> crowdnet-lint --workspace (gate + JSON report -> results/lint-report.json)"
# Exit 1 covers both new violations and stale baseline entries (hardened
# ratchet). The machine-readable report lands next to the other artifacts;
# its round-trip through crowdnet-json is asserted by crates/lint/tests/cli.rs.
mkdir -p results
cargo run -q --offline -p crowdnet-lint -- --workspace --format json > results/lint-report.json
grep -q '"version": 1' results/lint-report.json
# Human-readable summary (also re-checks the gate, incl. suppressions).
cargo run -q --offline -p crowdnet-lint -- --workspace
# The golden-fixture corpus must match each rule's expected diagnostics
# exactly (already part of `cargo test --workspace`; re-run standalone so
# a fixture regression is named here rather than buried in the test sweep).
cargo test -q --offline -p crowdnet-lint --test golden >/dev/null

echo "==> telemetry smoke (tiny pipeline -> report parses, mandatory counters present)"
smoke_dir="$(mktemp -d)"
# `|| true` keeps an empty pid list (the happy path: every server already
# reaped) from failing the trap under set -e and masking the real exit code.
trap 'kill -9 $(cat "$smoke_dir/shardnet/pids" 2>/dev/null) 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/run.json" dataset-stats >/dev/null
# telemetry-report validates the JSON and the mandatory counter set, and
# exits non-zero on a malformed or incomplete report.
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --out "$smoke_dir" telemetry-report | grep -q "crawl.angellist.attempts"

echo "==> serve smoke (every endpoint answers in-process, serve.* counters recorded)"
serve_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/serve.json" serve --smoke)"
echo "$serve_out" | grep -q "^  200 GET /stats"
if echo "$serve_out" | grep -q "^  [45]"; then
  echo "serve smoke: endpoint returned an error status" >&2
  exit 1
fi
# The serve run's report must validate AND carry the serving-tier counters
# alongside the mandatory pipeline set.
serve_summary="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --telemetry "$smoke_dir/telemetry/serve.json" --out "$smoke_dir" telemetry-report)"
echo "$serve_summary" | grep -q "serve.requests"
echo "$serve_summary" | grep -q "serve.cache."

echo "==> ingest smoke (live epochs publish into a pinned service, ingest.* counters recorded)"
ingest_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/ingest.json" ingest --smoke)"
echo "$ingest_out" | grep -q "epoch 0 pinned"
echo "$ingest_out" | grep -q "^  200 GET /stats"
if echo "$ingest_out" | grep -q "^  [45]"; then
  echo "ingest smoke: endpoint returned an error status" >&2
  exit 1
fi
# Mandatory ingest counters: the changefeed delivered events, documents
# and edges were applied, and epochs were published.
for counter in ingest.events ingest.docs ingest.edges ingest.epochs; do
  if ! echo "$ingest_out" | grep -q "$counter=[1-9]"; then
    echo "ingest smoke: mandatory counter $counter missing or zero" >&2
    exit 1
  fi
done
# The ingest run's telemetry report must validate and carry the
# ingest-tier counters alongside the mandatory pipeline set.
ingest_summary="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --telemetry "$smoke_dir/telemetry/ingest.json" --out "$smoke_dir" telemetry-report)"
echo "$ingest_summary" | grep -q "ingest.events"
echo "$ingest_summary" | grep -q "ingest.epoch"

echo "==> shard smoke (scatter-gather router over 2 shards answers every endpoint)"
shard_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/shard.json" serve --shards 2 --smoke)"
echo "$shard_out" | grep -q "^  200 GET /stats"
if echo "$shard_out" | grep -q "^  [45]"; then
  echo "shard smoke: endpoint returned an error status" >&2
  exit 1
fi
# Mandatory shard counters: shards opened, writes routed, requests fanned
# out through the router.
for counter in shard.set.opened shard.set.puts shard.router.requests shard.router.fanouts; do
  if ! echo "$shard_out" | grep -q "$counter=[1-9]"; then
    echo "shard smoke: mandatory counter $counter missing or zero" >&2
    exit 1
  fi
done

echo "==> shardnet smoke (out-of-process shards: wire import, SIGKILL one server, degraded partials, restart recovery)"
repro_bin="target/release/repro"
shardnet_dir="$smoke_dir/shardnet"
mkdir -p "$shardnet_dir"
# Spawn two real shard-server processes on ephemeral loopback ports; their
# pids go in a file the EXIT trap kills so a failed drill leaves no orphans.
"$repro_bin" shard-server --store "$shardnet_dir/shard-0" --index 0 --of 2 --port 0 \
  > "$shardnet_dir/s0.log" 2>/dev/null &
s0_pid=$!
"$repro_bin" shard-server --store "$shardnet_dir/shard-1" --index 1 --of 2 --port 0 \
  > "$shardnet_dir/s1.log" 2>/dev/null &
s1_pid=$!
echo "$s0_pid $s1_pid" > "$shardnet_dir/pids"
for _ in $(seq 1 50); do
  grep -q "^shard-server listening on " "$shardnet_dir/s0.log" 2>/dev/null \
    && grep -q "^shard-server listening on " "$shardnet_dir/s1.log" 2>/dev/null && break
  sleep 0.2
done
addr0="$(sed -n 's/^shard-server listening on //p' "$shardnet_dir/s0.log")"
addr1="$(sed -n 's/^shard-server listening on //p' "$shardnet_dir/s1.log")"
test -n "$addr0" && test -n "$addr1"
# Healthy fleet: the corpus is imported over the wire and every endpoint
# answers 200 through the remote scatter-gather path.
shardnet_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" serve --remote "$addr0,$addr1" --smoke)"
echo "$shardnet_out" | grep -q "importing the corpus into the remote fleet"
echo "$shardnet_out" | grep -q "^  200 GET /stats"
if echo "$shardnet_out" | grep -q "^  [45]"; then
  echo "shardnet smoke: endpoint returned an error status over remote shards" >&2
  exit 1
fi
for counter in shardnet.legs shardnet.pool.reuse_hits; do
  if ! echo "$shardnet_out" | grep -q "$counter=[1-9]"; then
    echo "shardnet smoke: mandatory counter $counter missing or zero" >&2
    exit 1
  fi
done
# SIGKILL shard 1's process: the adopted fleet must answer degraded
# (partial=true) with zero 5xx, and the client must flip the shard down.
kill -9 "$s1_pid" 2>/dev/null
wait "$s1_pid" 2>/dev/null || true
degraded_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" serve --remote "$addr0,$addr1" --smoke)"
echo "$degraded_out" | grep -q "adopting populated remote shards"
echo "$degraded_out" | grep -q "partial=true"
if echo "$degraded_out" | grep -q "^  [45]"; then
  echo "shardnet smoke: degraded fleet returned an error status (must degrade, never 5xx)" >&2
  exit 1
fi
echo "$degraded_out" | grep -q "shardnet.degraded_flips=[1-9]"
# Restart shard 1 from its durable store on a fresh port: recovery on
# open must restore byte-identical answers (digests compared on every
# endpoint except the version-bearing /stats and live /healthz).
"$repro_bin" shard-server --store "$shardnet_dir/shard-1" --index 1 --of 2 --port 0 \
  > "$shardnet_dir/s1b.log" 2>/dev/null &
s1_pid=$!
echo "$s0_pid $s1_pid" > "$shardnet_dir/pids"
for _ in $(seq 1 50); do
  grep -q "^shard-server listening on " "$shardnet_dir/s1b.log" 2>/dev/null && break
  sleep 0.2
done
addr1b="$(sed -n 's/^shard-server listening on //p' "$shardnet_dir/s1b.log")"
test -n "$addr1b"
restored_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" serve --remote "$addr0,$addr1b" --smoke)"
if echo "$restored_out" | grep -q "^  [45]"; then
  echo "shardnet smoke: restored fleet returned an error status" >&2
  exit 1
fi
healthy_lines="$(echo "$shardnet_out" | grep '^  200 GET' | grep -v -e '/stats' -e '/healthz')"
restored_lines="$(echo "$restored_out" | grep '^  200 GET' | grep -v -e '/stats' -e '/healthz')"
if [ "$healthy_lines" != "$restored_lines" ]; then
  echo "shardnet smoke: restarted fleet diverged from the healthy run:" >&2
  diff <(echo "$healthy_lines") <(echo "$restored_lines") >&2 || true
  exit 1
fi
if echo "$restored_lines" | grep -q "partial=true"; then
  echo "shardnet smoke: restored fleet still flags partial responses" >&2
  exit 1
fi
kill -9 "$s0_pid" "$s1_pid" 2>/dev/null
wait "$s0_pid" "$s1_pid" 2>/dev/null || true
: > "$shardnet_dir/pids"

echo "==> chaos drills (scripted fault scenarios: zero 5xx, accurate partials, breaker recovery, seeded replay)"
# flaky-link: the victim's link resets and truncates on a seeded schedule;
# the drill's own invariants (zero 5xx, partial accuracy, re-equivalence
# after heal) are enforced inside the binary — PASS is the whole gate.
chaos_flaky="$("$repro_bin" --scenario flaky-link --seed 7 chaos)"
echo "$chaos_flaky" | grep -q "chaos drill flaky-link: PASS"
# The breaker must visibly open and close again, the injector must have
# actually fired, and the chaos.* tallies must be non-zero.
echo "$chaos_flaky" | grep -q "counters\[heal\]: breaker state=closed opens=[1-9]"
echo "$chaos_flaky" | grep -Eq "injected\[heal\]: .* resets=[1-9]"
echo "$chaos_flaky" | grep -q "end: chaos.connects=[1-9]"
echo "$chaos_flaky" | grep -q "violations=0"
# one-way-partition, twice at the same seed: the drill transcript must
# replay byte-identically — fault injection is deterministic, not flaky.
chaos_part_a="$("$repro_bin" --scenario one-way-partition --seed 7 chaos)"
chaos_part_b="$("$repro_bin" --scenario one-way-partition --seed 7 chaos)"
echo "$chaos_part_a" | grep -q "chaos drill one-way-partition: PASS"
echo "$chaos_part_a" | grep -q "partial=true"
echo "$chaos_part_a" | grep -Eq "injected\[[a-z]*\]: .* partition_drops=[1-9]"
if [ "$chaos_part_a" != "$chaos_part_b" ]; then
  echo "chaos drill: same-seed replay diverged:" >&2
  diff <(echo "$chaos_part_a") <(echo "$chaos_part_b") >&2 || true
  exit 1
fi

echo "==> recovery smoke (crash the durable crawl, resume, compare content hash)"
# Uninterrupted durable crawl at tiny scale: the reference content hash.
full_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 crawl --store "$smoke_dir/full-store")"
full_hash="$(echo "$full_out" | sed -n 's/^store content hash: //p')"
test -n "$full_hash"
# Kill the same crawl at a deterministic file-operation crash-point…
set +e
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 crawl --store "$smoke_dir/crash-store" \
  --fail-at-op 4000 --fault-seed 9 >/dev/null 2>&1
crash_rc=$?
set -e
if [ "$crash_rc" -ne 3 ]; then
  echo "recovery smoke: expected simulated-crash exit code 3, got $crash_rc" >&2
  exit 1
fi
# …then resume: recovery + checkpoint replay must land on the same bytes.
resume_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 crawl --store "$smoke_dir/crash-store" --resume)"
resume_hash="$(echo "$resume_out" | sed -n 's/^store content hash: //p')"
if [ "$resume_hash" != "$full_hash" ]; then
  echo "recovery smoke: resumed hash $resume_hash != uninterrupted hash $full_hash" >&2
  exit 1
fi
echo "$resume_out" | grep -q "store.recovery.scans=[1-9]"

echo "==> column smoke (projection rebuilds from the crawled log, reloads committed, column.* counters recorded)"
# First open of the crawled store finds no committed projection: it must
# rebuild from the JSON log, persist the runs and count the work.
column_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 column --store "$smoke_dir/full-store")"
echo "$column_out" | grep -q "^rebuilt (absent, corrupt or stale)"
for counter in column.rebuilds column.bytes column.dict.entries; do
  if ! echo "$column_out" | grep -q "$counter=[1-9]"; then
    echo "column smoke: mandatory counter $counter missing or zero" >&2
    exit 1
  fi
done
# Second open must load the committed projection instead of rescanning.
column_out2="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 column --store "$smoke_dir/full-store")"
echo "$column_out2" | grep -q "^loaded committed"
# Columnar analysis path: the same experiment answered through typed
# columns, with the scan decode counted.
columnar_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" --columnar dataset-stats)"
echo "$columnar_out" | grep -q "columnar projection attached"
for counter in column.builds column.scan.docs; do
  if ! echo "$columnar_out" | grep -q "$counter=[1-9]"; then
    echo "column smoke: mandatory counter $counter missing or zero in --columnar run" >&2
    exit 1
  fi
done

echo "All checks passed."
