#!/usr/bin/env bash
# Full local gate: build, tests, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

echo "==> crowdnet-lint --workspace"
cargo run -q --offline -p crowdnet-lint -- --workspace

echo "All checks passed."
