#!/usr/bin/env bash
# Full local gate: build, tests, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

echo "==> crowdnet-lint --workspace"
cargo run -q --offline -p crowdnet-lint -- --workspace

echo "==> telemetry smoke (tiny pipeline -> report parses, mandatory counters present)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/run.json" dataset-stats >/dev/null
# telemetry-report validates the JSON and the mandatory counter set, and
# exits non-zero on a malformed or incomplete report.
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --out "$smoke_dir" telemetry-report | grep -q "crawl.angellist.attempts"

echo "==> serve smoke (every endpoint answers in-process, serve.* counters recorded)"
serve_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/serve.json" serve --smoke)"
echo "$serve_out" | grep -q "^  200 GET /stats"
if echo "$serve_out" | grep -q "^  [45]"; then
  echo "serve smoke: endpoint returned an error status" >&2
  exit 1
fi
# The serve run's report must validate AND carry the serving-tier counters
# alongside the mandatory pipeline set.
serve_summary="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --telemetry "$smoke_dir/telemetry/serve.json" --out "$smoke_dir" telemetry-report)"
echo "$serve_summary" | grep -q "serve.requests"
echo "$serve_summary" | grep -q "serve.cache."

echo "==> ingest smoke (live epochs publish into a pinned service, ingest.* counters recorded)"
ingest_out="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/ingest.json" ingest --smoke)"
echo "$ingest_out" | grep -q "epoch 0 pinned"
echo "$ingest_out" | grep -q "^  200 GET /stats"
if echo "$ingest_out" | grep -q "^  [45]"; then
  echo "ingest smoke: endpoint returned an error status" >&2
  exit 1
fi
# Mandatory ingest counters: the changefeed delivered events, documents
# and edges were applied, and epochs were published.
for counter in ingest.events ingest.docs ingest.edges ingest.epochs; do
  if ! echo "$ingest_out" | grep -q "$counter=[1-9]"; then
    echo "ingest smoke: mandatory counter $counter missing or zero" >&2
    exit 1
  fi
done
# The ingest run's telemetry report must validate and carry the
# ingest-tier counters alongside the mandatory pipeline set.
ingest_summary="$(cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --telemetry "$smoke_dir/telemetry/ingest.json" --out "$smoke_dir" telemetry-report)"
echo "$ingest_summary" | grep -q "ingest.events"
echo "$ingest_summary" | grep -q "ingest.epoch"

echo "All checks passed."
