#!/usr/bin/env bash
# Full local gate: build, tests, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

echo "==> crowdnet-lint --workspace"
cargo run -q --offline -p crowdnet-lint -- --workspace

echo "==> telemetry smoke (tiny pipeline -> report parses, mandatory counters present)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --scale tiny --seed 7 --out "$smoke_dir" \
  --telemetry "$smoke_dir/telemetry/run.json" dataset-stats >/dev/null
# telemetry-report validates the JSON and the mandatory counter set, and
# exits non-zero on a malformed or incomplete report.
cargo run -q --release --offline -p crowdnet-core --bin repro -- \
  --out "$smoke_dir" telemetry-report | grep -q "crawl.angellist.attempts"

echo "All checks passed."
