//! # CrowdNet
//!
//! A from-scratch Rust reproduction of *"Collection, Exploration and Analysis
//! of Crowdfunding Social Networks"* (Cheng, Sriramulu, Muralidhar, Loo,
//! Huang, Loh — ExploreDB'16, the SIGMOD/PODS 2016 workshop).
//!
//! This facade crate re-exports every subsystem; see the individual crates
//! for deep documentation:
//!
//! * [`json`] — JSON document model, parser and serializers (the platform's
//!   storage/wire format; the paper stores crawled records as JSON in HDFS).
//! * [`store`] — HDFS-like partitioned append-only document store.
//! * [`dataflow`] — Spark-like parallel dataset engine plus the statistics
//!   toolkit (ECDF, KDE, DKW bounds) used by the paper's analyses.
//! * [`socialsim`] — the synthetic crowdfunding ecosystem and simulated
//!   AngelList / CrunchBase / Facebook / Twitter APIs (the substitute for the
//!   live 2016 web services; see DESIGN.md §1).
//! * [`crawl`] — parallel BFS frontier crawler, rate limiting, token
//!   sharding, CrunchBase augmentation, longitudinal crawl scheduler.
//! * [`graph`] — bipartite investor–company graph analytics: CoDA community
//!   detection, baselines, and the paper's community-strength metrics.
//! * [`viz`] — force-directed layout and SVG/DOT rendering (Figure 7).
//! * [`core`] — the end-to-end pipeline and one driver per paper experiment.
//!
//! ## Quickstart
//!
//! ```
//! use crowdnet::core::pipeline::{Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::tiny(42); // deterministic toy-scale world
//! let outcome = Pipeline::new(cfg).run().expect("pipeline");
//! assert!(outcome.dataset.companies > 0);
//! ```

pub use crowdnet_core as core;
pub use crowdnet_crawl as crawl;
pub use crowdnet_dataflow as dataflow;
pub use crowdnet_graph as graph;
pub use crowdnet_json as json;
pub use crowdnet_socialsim as socialsim;
pub use crowdnet_store as store;
pub use crowdnet_viz as viz;
