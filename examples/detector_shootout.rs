//! Detector ablation: run CoDA against the four baselines on the same
//! crawled world and score each cover two ways — recovery of the planted
//! ground truth (best-match F1) and the paper's own community-strength
//! metrics.
//!
//! ```sh
//! cargo run --release --example detector_shootout
//! ```

use crowdnet::core::experiments::communities::MIN_INVESTMENTS;
use crowdnet::core::features::investment_edges;
use crowdnet::core::pipeline::{Pipeline, PipelineConfig};
use crowdnet::graph::bigclam::{BigClam, BigClamConfig};
use crowdnet::graph::eval::best_match_f1;
use crowdnet::graph::labelprop::{label_propagation, LabelPropConfig};
use crowdnet::graph::louvain::{louvain, LouvainConfig};
use crowdnet::graph::metrics::{self, Community};
use crowdnet::graph::projection::Projection;
use crowdnet::graph::sbm::{self, SbmConfig};
use crowdnet::graph::{BipartiteGraph, Coda, CodaConfig, Cover};
use crowdnet::socialsim::{Scale, WorldConfig};
use std::time::Instant;

fn score(name: &str, graph: &BipartiteGraph, cover: &Cover, truth: &Cover, ms: u128) {
    let f1 = best_match_f1(cover, truth);
    let pcts = metrics::cover_shared_investor_pcts(graph, cover, 2);
    let mean_pct = pcts.iter().sum::<f64>() / pcts.len().max(1) as f64;
    println!(
        "{name:<18} {:>4} communities  F1 vs planted {f1:.3}  mean shared-investor {mean_pct:>5.1}%  {ms:>6} ms",
        cover.len()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = PipelineConfig::tiny(11);
    config.world = WorldConfig::at_scale(
        11,
        Scale::Custom {
            companies: 25_000,
            users: 40_000,
        },
    );
    println!("crawling a 25k-company / 40k-user world…");
    let outcome = Pipeline::new(config).run()?;

    // The graph every detector sees: investors with ≥4 investments (§5.2).
    let graph =
        BipartiteGraph::from_edges(investment_edges(&outcome)?).filter_min_investments(MIN_INVESTMENTS);
    println!(
        "filtered graph: {} investors / {} companies / {} edges\n",
        graph.investor_count(),
        graph.company_count(),
        graph.edge_count()
    );

    // Planted ground truth, restricted to investors present in the graph.
    let truth: Cover = outcome
        .world
        .planted_communities
        .iter()
        .filter_map(|pc| {
            let members: Vec<u32> = pc
                .investors
                .iter()
                .filter_map(|u| graph.investor_index(u.0))
                .collect();
            (members.len() >= 3).then_some(Community { members })
        })
        .collect();
    println!("planted ground truth: {} communities with ≥3 surviving members\n", truth.len());

    let k = outcome.config.world.communities;

    let t = Instant::now();
    let coda_cfg = CodaConfig { communities: k, iterations: 25, ..Default::default() };
    let coda = Coda::fit(&graph, &coda_cfg);
    let coda_cover = coda.investor_communities(&graph, &coda_cfg);
    score("CoDA", &graph, &coda_cover, &truth, t.elapsed().as_millis());

    let t = Instant::now();
    let bc = BigClam::fit(&graph, &BigClamConfig { communities: k, iterations: 25, ..Default::default() });
    let bc_cover = bc.investor_communities(&graph);
    score("BigCLAM", &graph, &bc_cover, &truth, t.elapsed().as_millis());

    let t = Instant::now();
    let lpa_cover = label_propagation(&graph, &LabelPropConfig::default());
    score("label propagation", &graph, &lpa_cover, &truth, t.elapsed().as_millis());

    let projection = Projection::from_bipartite(&graph, 500);
    let t = Instant::now();
    let louvain_cover = louvain(&projection, &LouvainConfig::default());
    score("Louvain", &graph, &louvain_cover, &truth, t.elapsed().as_millis());

    let t = Instant::now();
    let sbm_model = sbm::fit(&projection, &SbmConfig { blocks: k, ..Default::default() });
    let sbm_cover = sbm::cover_of(&sbm_model, k);
    score("SBM (greedy)", &graph, &sbm_cover, &truth, t.elapsed().as_millis());

    println!(
        "\nCoDA is the paper's pick because it models the *directed bipartite*\n\
         structure natively; the undirected baselines must project or expand it."
    );
    Ok(())
}
