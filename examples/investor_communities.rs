//! Investor-community analysis end to end (paper §5): build the bipartite
//! investor→company graph from the crawl, run CoDA, score each community
//! with the paper's two strength metrics, and render the strongest and
//! weakest communities as SVG (Figure 7).
//!
//! ```sh
//! cargo run --release --example investor_communities
//! ```

use crowdnet::core::experiments::{communities, fig4, fig5, fig7, investor_graph};
use crowdnet::core::pipeline::{Pipeline, PipelineConfig};
use crowdnet::socialsim::{Scale, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mid-size world: large enough for the sparsity regime the paper's
    // metrics live in, small enough to run in seconds.
    let mut config = PipelineConfig::tiny(7);
    config.world = WorldConfig::at_scale(
        7,
        Scale::Custom {
            companies: 30_000,
            users: 30_000,
        },
    );
    println!("crawling a 30k-company world…");
    let outcome = Pipeline::new(config).run()?;

    let (graph_stats, _) = investor_graph::run(&outcome)?;
    println!("\n{graph_stats}");

    let (cover_stats, _, _, _) = communities::run(&outcome)?;
    println!(
        "CoDA: {} communities, average size {:.1} (paper: 96 communities, avg 190.2)",
        cover_stats.communities, cover_stats.avg_size
    );

    let f4 = fig4::run(&outcome)?;
    println!("\nstrongest communities (paper Figure 4):");
    for c in &f4.strong {
        println!(
            "  #{}: {} investors, mean shared investments {:.2}, max {:.0}",
            c.rank + 1,
            c.size,
            c.mean_shared,
            c.max_shared
        );
    }
    println!(
        "  global baseline over {} sampled pairs: mean {:.3} (DKW 99% band ±{:.4})",
        f4.global_samples, f4.global_mean_shared, f4.gc_epsilon_99
    );

    let f5 = fig5::run(&outcome)?;
    println!(
        "\nherding (paper Figure 5): mean shared-investor pct {:.1}% vs randomized {:.1}% (paper: 23.1% vs 5.8%)",
        f5.mean_pct, f5.randomized_mean_pct
    );

    let f7 = fig7::run(&outcome)?;
    std::fs::create_dir_all("results")?;
    std::fs::write("results/example_strong_community.svg", &f7.strong.svg)?;
    std::fs::write("results/example_weak_community.svg", &f7.weak.svg)?;
    println!(
        "\nFigure 7 drawings written to results/example_{{strong,weak}}_community.svg\n\
         strong: shared {:.2} / {:.1}%; weak: shared {:.3} / {:.1}%",
        f7.strong.mean_shared, f7.strong.shared_pct, f7.weak.mean_shared, f7.weak.shared_pct
    );
    Ok(())
}
