//! The §7 longitudinal extension: a daily crawl of all currently-raising
//! startups over 60 simulated days, snapshot per day, followed by the
//! event-study causality analysis the paper proposes ("determine whether
//! social media engagement directly impacts fundraising success").
//!
//! ```sh
//! cargo run --release --example longitudinal_study
//! ```

use crowdnet::core::experiments::causality;
use crowdnet::core::pipeline::PipelineConfig;
use crowdnet::crawl::longitudinal::{run_study, StudyConfig, NS_LONGITUDINAL};
use crowdnet::socialsim::{Scale, World, WorldConfig};
use crowdnet::store::Store;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = PipelineConfig::tiny(21);
    config.world = WorldConfig::at_scale(
        21,
        Scale::Custom {
            companies: 40_000,
            users: 2_000,
        },
    );

    // Low-level view: run the scheduler by hand and watch funding accrue.
    println!("running a 60-day daily crawl of the raising watchlist…");
    let store = Store::memory(config.partitions);
    let world = World::generate(&config.world);
    let watch = world.raising_companies().count();
    let records = run_study(
        world,
        &store,
        &StudyConfig {
            days: 60,
            interval_days: 1,
            evolution_seed: 99,
        },
    )?;
    println!(
        "watchlist: {watch} raising companies; {} snapshots in namespace {NS_LONGITUDINAL}",
        records.len()
    );
    for r in records.iter().step_by(10) {
        println!("  day {:>3}: {} watched companies now funded", r.day, r.funded_count);
    }

    // High-level view: the packaged event study.
    println!("\nevent study (treated = closed a round mid-study):");
    let result = causality::run(&config, 60)?;
    println!(
        "  treated {} vs controls {}\n  pre-event tweet velocity: {:.2} tweets/day (treated) vs {:.2} (controls)",
        result.treated, result.controls, result.treated_pre_growth, result.control_growth
    );
    if result.treated_pre_growth > result.control_growth {
        println!(
            "  → engagement growth precedes funding: the causal arrow the paper's\n\
             one-shot crawl could only describe as correlation."
        );
    }
    Ok(())
}
