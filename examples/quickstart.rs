//! Quickstart: generate a small crowdfunding world, crawl all four sources,
//! and print the headline result — social engagement's impact on
//! fundraising success (Figure 6 of the paper).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crowdnet::core::experiments::{dataset_stats, fig6};
use crowdnet::core::pipeline::{Pipeline, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic toy-scale world (~1500 companies). Crank the scale up
    // with PipelineConfig::default_eval or ::small for paper-shaped numbers.
    let config = PipelineConfig::tiny(42);
    println!("generating world and crawling (seed 42, tiny scale)…");
    let outcome = Pipeline::new(config).run()?;

    println!("\n--- dataset (paper §3) ---");
    println!("{}", dataset_stats::run(&outcome)?);

    println!("--- social engagement vs success (paper Figure 6) ---");
    let table = fig6::run(&outcome)?;
    println!("{table}");

    println!(
        "The paper's headline: companies with a social media presence are\n\
         ~30x more likely to succeed in fundraising. Measured here: {:.0}x.",
        table.facebook_lift
    );
    Ok(())
}
