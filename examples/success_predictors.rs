//! The §7 prediction extension: which profile and graph features best
//! predict fundraising success? Trains a from-scratch logistic regression
//! with greedy forward feature selection, exactly the "feature selection
//! methods for high-dimensional regression" the paper proposes.
//!
//! ```sh
//! cargo run --release --example success_predictors
//! ```

use crowdnet::core::experiments::predict;
use crowdnet::core::pipeline::{Pipeline, PipelineConfig};
use crowdnet::socialsim::{Scale, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = PipelineConfig::tiny(5);
    config.world = WorldConfig::at_scale(
        5,
        Scale::Custom {
            companies: 20_000,
            users: 6_000,
        },
    );
    println!("crawling a 20k-company world…");
    let outcome = Pipeline::new(config).run()?;

    let r = predict::run(&outcome)?;
    println!(
        "\nfunding base rate: {:.2}% of {} companies ({} train / {} test)",
        r.positive_rate * 100.0,
        r.train_rows + r.test_rows,
        r.train_rows,
        r.test_rows
    );
    println!("held-out AUC with all features: {:.3}", r.auc_full);
    println!("\nforward selection path (feature -> cumulative AUC):");
    for (i, (feature, auc)) in r.selection_path.iter().enumerate() {
        println!("  {}. {feature:<22} {auc:.3}", i + 1);
    }
    println!(
        "\nThe single best feature ({}) already reaches AUC {:.3} — engagement\n\
         dominates, which is the paper's §4 finding restated as a predictor.",
        r.selection_path.first().map(|(f, _)| f.as_str()).unwrap_or("?"),
        r.auc_best_single
    );
    Ok(())
}
