//! The "social scientist interface" (paper §3: "in future, we plan to
//! provide familiar interfaces to social scientists … a translation layer
//! will map the theories to Spark queries for execution"): ad-hoc SQL over
//! the crawled store, no Rust required beyond the harness.
//!
//! ```sh
//! cargo run --release --example sql_analytics
//! ```

use crowdnet::core::pipeline::{Pipeline, PipelineConfig};
use crowdnet::dataflow::dataset::scan_store;
use crowdnet::dataflow::sql::query;
use crowdnet::json::Value;
use crowdnet::store::SnapshotId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("crawling a toy world…");
    let outcome = Pipeline::new(PipelineConfig::tiny(42)).run()?;

    let docs = |ns: &str| -> Result<crowdnet::dataflow::Dataset<Value>, Box<dyn std::error::Error>> {
        Ok(scan_store(&outcome.store, ns, SnapshotId(0), outcome.ctx)?.map(|d| d.body))
    };

    println!("\n-- Who are the most-followed startups?");
    let sql = "SELECT name, follower_count FROM companies \
               ORDER BY follower_count DESC LIMIT 5";
    println!("{sql}\n{}", query(sql, docs("angellist/companies")?)?.render());

    println!("-- How rare is a social media presence? (paper Figure 6, first column)");
    let sql = "SELECT COUNT(*) AS companies, COUNT(twitter_url) AS with_twitter, \
               COUNT(facebook_url) AS with_facebook FROM companies";
    println!("{sql}\n{}", query(sql, docs("angellist/companies")?)?.render());

    println!("-- Twitter engagement distribution of crawled profiles");
    let sql = "SELECT COUNT(*) AS n, AVG(followers_count) AS avg_followers, \
               MIN(statuses_count) AS min_tweets, MAX(statuses_count) AS max_tweets \
               FROM twitter";
    println!("{sql}\n{}", query(sql, docs("twitter/profiles")?)?.render());

    println!("-- Role mix of the AngelList user base (paper §3)");
    let sql = "SELECT role, COUNT(*) AS n FROM users GROUP BY role ORDER BY n DESC";
    println!("{sql}\n{}", query(sql, docs("angellist/users")?)?.render());

    println!("-- CrunchBase: how much did multi-round companies raise?");
    let sql = "SELECT name, total_raised_usd FROM crunchbase \
               WHERE total_raised_usd > 2000000 ORDER BY total_raised_usd DESC LIMIT 5";
    println!("{sql}\n{}", query(sql, docs("crunchbase/companies")?)?.render());

    Ok(())
}
