//! Root-package mirror of the lint gate, so a bare `cargo test` from the
//! workspace root (the tier-1 command) runs the analyzer even without
//! `--workspace`. The full gate with staleness checks lives in
//! `tests/integration/tests/lint_gate.rs`.

use crowdnet_lint::{analyze_workspace, baseline::Baseline, run_rules, workspace};
use std::path::Path;

#[test]
fn workspace_is_clean_against_the_lint_baseline() {
    let root =
        workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let analysis = analyze_workspace(&root).expect("workspace lexes");
    let diags = run_rules(&analysis);
    let text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap_or_default();
    let baseline = Baseline::parse(&text).expect("lint-baseline.toml parses");
    let report = baseline.gate(diags);
    assert!(
        report.new.is_empty(),
        "new lint violations:\n{}",
        report
            .new
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Stale entries fail here too: the baseline is a ratchet, and a file
    // that got cleaner than its allowance must have the entry deleted.
    assert!(
        report.stale.is_empty(),
        "stale baseline entries (regenerate with `cargo run -p crowdnet-lint -- \
         --workspace --write-baseline`):\n{:?}",
        report.stale
    );
}
