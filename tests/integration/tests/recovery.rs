//! Crash-recovery integration: kill the full resumable crawl at seeded
//! crash-points and prove the store converges to the uninterrupted run's
//! exact content; recover the ingest/serve tier over a torn store while the
//! service keeps answering, flagged degraded.

use crowdnet_crawl::bfs::NS_CHECKPOINT;
use crowdnet_crawl::{CrawlConfig, Crawler};
use crowdnet_ingest::{IngestConfig, IngestEngine};
use crowdnet_json::{obj, Value};
use crowdnet_serve::artifacts::{NS_COMPANIES, NS_USERS};
use crowdnet_serve::{Request, Service, ServiceConfig};
use crowdnet_socialsim::{Scale, World, WorldConfig};
use crowdnet_store::{Document, FailpointFs, FaultPlan, MemFs, SnapshotId, Store, Vfs};
use crowdnet_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::sync::Arc;

const ROOT: &str = "/store";
const PARTITIONS: usize = 4;

fn world() -> Arc<World> {
    Arc::new(World::generate(&WorldConfig::at_scale(
        77,
        Scale::Custom { companies: 400, users: 400 },
    )))
}

/// Canonical content image: every data namespace, every snapshot, encoded
/// docs in key order. Two stores with equal images are byte-identical for
/// every consumer that reads through canonical scans.
fn content(store: &Store) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut namespaces = store.namespaces().unwrap();
    namespaces.sort();
    for ns in namespaces {
        if ns == NS_CHECKPOINT {
            continue;
        }
        let latest = store.latest_snapshot(&ns).unwrap();
        let mut all = Vec::new();
        for snap in 0..=latest.0 {
            let mut docs = store.scan_snapshot(&ns, SnapshotId(snap)).unwrap();
            docs.sort_by(|a, b| a.key.cmp(&b.key));
            all.extend(docs.into_iter().map(|d| d.encode()));
        }
        out.insert(ns, all);
    }
    out
}

fn run_crawl(world: &Arc<World>, store: &Store, telemetry: &Telemetry) -> Result<(), String> {
    let mut cfg = CrawlConfig::default();
    cfg.telemetry = telemetry.clone();
    Crawler::new(Arc::clone(world), cfg)
        .run_resumable(store)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// The acceptance gate for the tentpole: for every seeded crash-point, kill
/// the crawl mid-flight, restart over the surviving bytes, and converge to
/// the uninterrupted run's exact store content.
#[test]
fn killed_crawl_converges_to_uninterrupted_content_for_every_crash_point() {
    let world = world();
    let baseline = {
        let mem = Arc::new(MemFs::new());
        let store =
            Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&mem) as Arc<dyn Vfs>).unwrap();
        run_crawl(&world, &store, &Telemetry::new()).unwrap();
        content(&store)
    };

    let mut crashes_observed = 0;
    for (i, crash_at) in [40u64, 150, 600, 2_000, 4_500].into_iter().enumerate() {
        let mem = Arc::new(MemFs::new());
        let fs = Arc::new(FailpointFs::new(
            Arc::clone(&mem) as Arc<dyn Vfs>,
            FaultPlan::crash_at(i as u64 + 1, crash_at),
        ));
        let crashed = match Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&fs) as Arc<dyn Vfs>)
        {
            Ok(store) => run_crawl(&world, &store, &Telemetry::new()).is_err(),
            Err(_) => true, // crash-point fired during open
        };
        if crashed {
            assert!(fs.crashed(), "crawl failed for a non-injected reason");
            crashes_observed += 1;
        }

        // Restart: recovery scan at open, then resume from checkpoints.
        let telemetry = Telemetry::new();
        let store = Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&mem) as Arc<dyn Vfs>)
            .unwrap()
            .with_telemetry(&telemetry);
        run_crawl(&world, &store, &telemetry).unwrap();
        assert_eq!(
            content(&store),
            baseline,
            "crash at op {crash_at} did not converge to the uninterrupted content"
        );
        assert!(
            telemetry.counter("store.recovery.scans").value() >= 1,
            "recovery scan must be visible in counters"
        );
    }
    assert!(crashes_observed >= 3, "sweep too shallow: only {crashes_observed} crash(es) fired");
}

/// A crash that lands mid-append leaves a half-written record. Sweep
/// crash-points until one tears a record, then prove recovery truncates the
/// torn tail (counted, not silently dropped) and the replayed round
/// restores the lost document exactly.
#[test]
fn resume_repairs_a_torn_tail_and_recounts_it() {
    let world = world();
    let baseline = {
        let mem = Arc::new(MemFs::new());
        let store =
            Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&mem) as Arc<dyn Vfs>).unwrap();
        run_crawl(&world, &store, &Telemetry::new()).unwrap();
        content(&store)
    };

    let mut torn_seen = false;
    for crash_at in 60..110u64 {
        let mem = Arc::new(MemFs::new());
        let fs = Arc::new(FailpointFs::new(
            Arc::clone(&mem) as Arc<dyn Vfs>,
            FaultPlan::crash_at(5, crash_at),
        ));
        let Ok(store) = Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&fs) as Arc<dyn Vfs>)
        else {
            continue; // crash fired inside open; no append could tear
        };
        assert!(run_crawl(&world, &store, &Telemetry::new()).is_err(), "crash must fire");
        drop(store);
        if fs.injected().torn_writes == 0 {
            continue; // crash landed on a non-append op this time
        }

        let telemetry = Telemetry::new();
        let store = Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&mem) as Arc<dyn Vfs>)
            .unwrap()
            .with_telemetry(&telemetry);
        assert!(
            telemetry.counter("store.recovery.torn_tails").value() >= 1,
            "torn append at op {crash_at} must be counted at recovery"
        );
        run_crawl(&world, &store, &telemetry).unwrap();
        assert_eq!(content(&store), baseline, "torn record must be re-crawled, not lost");
        torn_seen = true;
        break;
    }
    assert!(torn_seen, "no crash-point in the sweep landed on an append");
}

/// Ingest/serve recovery: after a torn store is reopened, the engine
/// catches up by scan and republishes while the service keeps answering
/// from the last committed epoch with the degraded flag raised.
#[test]
fn serve_answers_degraded_from_last_epoch_while_ingest_recovers() {
    let mem = Arc::new(MemFs::new());
    let telemetry = Telemetry::new();
    let store = Arc::new(
        Store::open_with_vfs(ROOT, 2, Arc::clone(&mem) as Arc<dyn Vfs>)
            .unwrap()
            .with_telemetry(&telemetry),
    );
    for id in 0..8u32 {
        store
            .put(NS_COMPANIES, Document::new(format!("company:{id}"), obj! {"id" => u64::from(id), "name" => format!("c{id}")}))
            .unwrap();
        store
            .put(
                NS_USERS,
                Document::new(
                    format!("user:{}", 100 + id),
                    obj! {"id" => u64::from(100 + id), "role" => "investor", "investments" => Value::Arr(vec![Value::from(u64::from(id))])},
                ),
            )
            .unwrap();
    }
    let service = Service::new(Arc::clone(&store), ServiceConfig::default(), telemetry.clone());
    let mut engine =
        IngestEngine::new(Arc::clone(&store), IngestConfig::default(), telemetry.clone()).unwrap();
    let first = engine.publish(Some(&service));

    // "Crash": the process dies; the monitor flags the service degraded
    // while recovery runs. Requests keep answering from the pinned epoch.
    service.set_degraded(true);
    let stats_resp = service.handle(&Request::get("/stats"));
    assert_eq!(stats_resp.status, 200);
    let body = Value::parse(std::str::from_utf8(&stats_resp.body).unwrap()).unwrap();
    assert_eq!(body.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(body.get("version").and_then(Value::as_u64), Some(first.version));

    // New writes landed since the epoch (recovered scan picks them up).
    store
        .put(NS_COMPANIES, Document::new("company:99", obj! {"id" => 99u64, "name" => "late"}))
        .unwrap();
    let epoch = engine.recover(Some(&service)).unwrap();
    assert!(!service.is_degraded());
    assert!(epoch.version > first.version);
    let companies = epoch
        .stats
        .as_deref()
        .unwrap()
        .iter()
        .find(|s| s.namespace == NS_COMPANIES)
        .unwrap()
        .documents;
    assert_eq!(companies, 9, "recovered epoch must include the late write");
    assert_eq!(telemetry.counter("ingest.recoveries").value(), 1);
    let healthz = service.handle(&Request::get("/healthz"));
    let body = Value::parse(std::str::from_utf8(&healthz.body).unwrap()).unwrap();
    assert_eq!(body.get("degraded").and_then(Value::as_bool), Some(false));
}
