//! Property-based cross-crate invariants: for arbitrary seeds and world
//! shapes, the pipeline's structural guarantees hold.

use crowdnet_core::features::{company_records, investment_edges};
use crowdnet_core::pipeline::{Pipeline, PipelineConfig};
use crowdnet_graph::metrics::{self, Community};
use crowdnet_graph::BipartiteGraph;
use crowdnet_socialsim::{Scale, World, WorldConfig};
use proptest::prelude::*;

fn small_world_config(seed: u64, companies: u32, users: u32) -> WorldConfig {
    WorldConfig::at_scale(
        seed,
        Scale::Custom {
            companies: 400 + companies % 800,
            users: 400 + users % 800,
        },
    )
}

proptest! {
    // Pipelines are slow-ish; keep case counts modest but meaningful.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn world_invariants_hold_for_any_seed(seed in 0u64..10_000, c in 0u32..1000, u in 0u32..1000) {
        let world = World::generate(&small_world_config(seed, c, u));
        // Reciprocity of investments.
        for user in &world.users {
            for &cid in &user.investments {
                prop_assert!(world.companies[cid.0 as usize].investors.contains(&user.id));
            }
        }
        // Funding implies rounds; no funding implies none.
        for company in &world.companies {
            prop_assert_eq!(company.funded, !company.rounds.is_empty());
        }
        // Planted communities never share investors.
        let mut seen = std::collections::HashSet::new();
        for pc in &world.planted_communities {
            for inv in &pc.investors {
                prop_assert!(seen.insert(*inv));
            }
        }
    }

    #[test]
    fn crawl_never_fabricates_entities(seed in 0u64..1000) {
        let mut cfg = PipelineConfig::tiny(seed);
        cfg.world = small_world_config(seed, seed as u32, seed as u32 / 2);
        let outcome = Pipeline::new(cfg).run().unwrap();
        prop_assert!(outcome.dataset.companies <= outcome.world.companies.len());
        prop_assert!(outcome.dataset.users <= outcome.world.users.len());
        prop_assert!(outcome.dataset.facebook <= outcome.dataset.companies);
        prop_assert!(outcome.dataset.twitter <= outcome.dataset.companies);
        // Every joined record's engagement matches the world's account.
        let records = company_records(&outcome).unwrap();
        for r in records.iter().take(100) {
            let truth = &outcome.world.companies[r.id as usize];
            prop_assert_eq!(r.has_facebook, truth.facebook.is_some());
            prop_assert_eq!(r.has_twitter, truth.twitter.is_some());
            if let (Some(measured), Some(actual)) = (r.fb_likes, truth.facebook.as_ref()) {
                prop_assert_eq!(measured, actual.likes);
            }
        }
    }

    #[test]
    fn bipartite_graph_metrics_invariants(seed in 0u64..1000) {
        let mut cfg = PipelineConfig::tiny(seed);
        cfg.world = small_world_config(seed, 300, 900);
        let outcome = Pipeline::new(cfg).run().unwrap();
        let edges = investment_edges(&outcome).unwrap();
        prop_assume!(!edges.is_empty());
        let graph = BipartiteGraph::from_edges(edges.clone());
        // Edge conservation through construction (after dedup ≤ raw count).
        prop_assert!(graph.edge_count() <= edges.len());
        // Degree concentration is monotone in k.
        let mut last = (1.1, 1.1);
        for k in 1..6 {
            let cur = graph.degree_concentration(k);
            prop_assert!(cur.0 <= last.0 + 1e-12);
            prop_assert!(cur.1 <= last.1 + 1e-12);
            last = cur;
        }
        // Metric bounds: percentages in [0, 100], shared sizes ≥ 0.
        let everyone = Community { members: (0..graph.investor_count() as u32).collect() };
        if let Some(pct) = metrics::pct_companies_with_shared_investors(&graph, &everyone, 2) {
            prop_assert!((0.0..=100.0).contains(&pct));
        }
        if let Some(avg) = metrics::avg_shared_investment(&graph, &everyone) {
            prop_assert!(avg >= 0.0);
        }
    }

    #[test]
    fn filter_min_investments_is_a_subgraph(seed in 0u64..1000, k in 1usize..6) {
        let mut cfg = PipelineConfig::tiny(seed);
        cfg.world = small_world_config(seed, 500, 500);
        let outcome = Pipeline::new(cfg).run().unwrap();
        let edges = investment_edges(&outcome).unwrap();
        prop_assume!(!edges.is_empty());
        let graph = BipartiteGraph::from_edges(edges);
        let filtered = graph.filter_min_investments(k);
        prop_assert!(filtered.investor_count() <= graph.investor_count());
        prop_assert!(filtered.company_count() <= graph.company_count());
        prop_assert!(filtered.edge_count() <= graph.edge_count());
        for i in 0..filtered.investor_count() as u32 {
            prop_assert!(filtered.companies_of(i).len() >= k);
        }
    }
}
