//! Telemetry end-to-end: a seeded single-worker pipeline run produces a
//! byte-deterministic report whose counters reconcile with the crawl and
//! store statistics the run reports through its normal return values.

use crowdnet_core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use crowdnet_json::Value;
use crowdnet_telemetry::report;

/// Single-worker, faulty, seeded config: the fault model's shared RNG makes
/// per-request faults interleaving-dependent, so one worker per stage is
/// what makes the telemetry byte-reproducible.
fn seeded_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::tiny(7);
    cfg.crawl.workers = 1;
    cfg.crawl.fault_rate = 0.1;
    cfg.crawl.fault_seed = 5;
    cfg
}

fn run() -> (PipelineOutcome, Value) {
    let outcome = Pipeline::new(seeded_config()).run().expect("pipeline");
    let rep = report::build(&outcome.telemetry);
    (outcome, rep)
}

fn counter(rep: &Value, name: &str) -> u64 {
    rep.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing counter {name}"))
}

#[test]
fn report_is_byte_identical_across_runs() {
    let (_, a) = run();
    let (_, b) = run();
    assert_eq!(a.to_pretty(), b.to_pretty());
}

#[test]
fn report_reconciles_with_pipeline_stats() {
    let (outcome, rep) = run();
    assert_eq!(report::validate(&rep), Ok(()));

    // BFS counters mirror CrawlStats.
    assert_eq!(counter(&rep, "crawl.bfs.companies"), outcome.crawl.bfs.companies as u64);
    assert_eq!(counter(&rep, "crawl.bfs.users"), outcome.crawl.bfs.users as u64);
    assert_eq!(
        counter(&rep, "crawl.facebook.pages"),
        outcome.crawl.facebook.facebook_pages as u64
    );
    assert_eq!(
        counter(&rep, "crawl.twitter.profiles"),
        outcome.crawl.twitter.twitter_profiles as u64
    );
    assert_eq!(counter(&rep, "crawl.syndicates.docs"), outcome.crawl.syndicates as u64);
    assert_eq!(
        counter(&rep, "crawl.augment.direct") + counter(&rep, "crawl.augment.by_search"),
        outcome.crawl.augment.resolved() as u64
    );

    // Store appends reconcile with Store::stats byte-for-byte.
    let stats = outcome.store.stats().expect("store stats");
    let docs: u64 = stats.iter().map(|s| s.documents as u64).sum();
    let bytes: u64 = stats.iter().map(|s| s.encoded_bytes as u64).sum();
    assert_eq!(counter(&rep, "store.append.docs"), docs);
    assert_eq!(counter(&rep, "store.append.bytes"), bytes);

    // Per-source attempt identity for every instrumented source.
    for source in ["angellist", "crunchbase", "facebook", "twitter"] {
        let attempts = counter(&rep, &format!("crawl.{source}.attempts"));
        let resolved = counter(&rep, &format!("crawl.{source}.success"))
            + counter(&rep, &format!("crawl.{source}.retry_transient"))
            + counter(&rep, &format!("crawl.{source}.retry_ratelimit"))
            + counter(&rep, &format!("crawl.{source}.fail_permanent"));
        assert_eq!(attempts, resolved, "attempt identity broken for {source}");
    }
}

#[test]
fn fault_injection_shows_up_in_wait_histogram() {
    let (_, rep) = run();
    // fault_rate = 0.1 over thousands of AngelList requests guarantees
    // retries, each of which records its backoff into the wait histogram.
    let retries = counter(&rep, "crawl.angellist.retry_transient")
        + counter(&rep, "crawl.angellist.retry_ratelimit");
    assert!(retries > 0, "no retries under fault_rate 0.1");
    let wait_count = rep
        .get("histograms")
        .and_then(|h| h.get("crawl.angellist.wait_ms"))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_u64)
        .expect("missing crawl.angellist.wait_ms histogram");
    assert_eq!(wait_count, retries);
}

#[test]
fn spans_cover_every_crawl_stage() {
    let (_, rep) = run();
    let spans = rep.get("spans").and_then(Value::as_arr).expect("spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    for stage in [
        "pipeline",
        "world.generate",
        "crawl.angellist",
        "crawl.syndicates",
        "crawl.crunchbase",
        "crawl.facebook",
        "crawl.twitter",
    ] {
        assert!(names.contains(&stage), "missing span {stage}");
    }
    // Every span closed (virtual timestamps from the bound SimClock).
    for s in spans {
        assert!(s.get("end_ms").and_then(Value::as_u64).is_some(), "open span");
    }
}
