//! Cross-crate integration: the full pipeline from world generation through
//! crawl, store, dataflow joins and every experiment driver.

use crowdnet_core::experiments::{communities, dataset_stats, fig3, fig4, fig5, fig6, fig7, investor_graph, predict};
use crowdnet_core::features::{company_records, investment_edges};
use crowdnet_core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use std::sync::OnceLock;

/// One shared pipeline run: the experiments are read-only over it.
fn outcome() -> &'static PipelineOutcome {
    static OUTCOME: OnceLock<PipelineOutcome> = OnceLock::new();
    // Seed 7: a tiny world dense enough that every experiment has input —
    // fig7 in particular needs at least two communities with 3+ members.
    OUTCOME.get_or_init(|| Pipeline::new(PipelineConfig::tiny(7)).run().expect("pipeline"))
}

#[test]
fn crawl_counters_match_store_contents() {
    let o = outcome();
    let store = &o.store;
    assert_eq!(
        store.doc_count("angellist/companies").unwrap(),
        o.dataset.companies
    );
    assert_eq!(store.doc_count("angellist/users").unwrap(), o.dataset.users);
    assert_eq!(
        store.doc_count("crunchbase/companies").unwrap(),
        o.dataset.crunchbase
    );
    assert_eq!(store.doc_count("facebook/pages").unwrap(), o.dataset.facebook);
    assert_eq!(store.doc_count("twitter/profiles").unwrap(), o.dataset.twitter);
}

#[test]
fn every_experiment_runs_on_one_outcome() {
    let o = outcome();
    assert!(dataset_stats::run(o).is_ok());
    assert!(fig3::run(o).is_ok());
    assert!(fig6::run(o).is_ok());
    assert!(investor_graph::run(o).is_ok());
    assert!(communities::run(o).is_ok());
    assert!(fig4::run(o).is_ok());
    assert!(fig5::run(o).is_ok());
    assert!(fig7::run(o).is_ok());
    assert!(predict::run(o).is_ok());
}

#[test]
fn joined_records_are_internally_consistent() {
    let o = outcome();
    let records = company_records(o).unwrap();
    // AngelList is the spine: every record came from a crawled company doc.
    assert_eq!(records.len(), o.dataset.companies);
    // Social joins never invent engagement for unlinked companies.
    for r in &records {
        if !r.has_facebook {
            assert!(r.fb_likes.is_none());
        }
        if !r.has_twitter {
            assert!(r.tw_followers.is_none());
        }
        if !r.funded {
            assert_eq!(r.total_raised_usd, 0);
        }
    }
}

#[test]
fn investment_edges_reference_real_companies() {
    let o = outcome();
    let edges = investment_edges(o).unwrap();
    assert!(!edges.is_empty());
    // Company ids in edges are ids the world can hold (u32 index range).
    let max_company = o.world.companies.len() as u32;
    for (_, c) in &edges {
        assert!(*c < max_company);
    }
}

#[test]
fn experiment_results_are_deterministic_across_full_reruns() {
    let a = Pipeline::new(PipelineConfig::tiny(9)).run().unwrap();
    let b = Pipeline::new(PipelineConfig::tiny(9)).run().unwrap();
    let fa = fig3::run(&a).unwrap();
    let fb = fig3::run(&b).unwrap();
    assert_eq!(fa.cdf_points, fb.cdf_points);
    let ta = fig6::run(&a).unwrap();
    let tb = fig6::run(&b).unwrap();
    for (ra, rb) in ta.rows.iter().zip(&tb.rows) {
        assert_eq!(ra.count, rb.count);
        assert_eq!(ra.success_rate, rb.success_rate);
    }
    let (ga, _) = investor_graph::run(&a).unwrap();
    let (gb, _) = investor_graph::run(&b).unwrap();
    assert_eq!(ga.edges, gb.edges);
    assert_eq!(ga.investors, gb.investors);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = Pipeline::new(PipelineConfig::tiny(1)).run().unwrap();
    let b = Pipeline::new(PipelineConfig::tiny(2)).run().unwrap();
    let fa = fig3::run(&a).unwrap();
    let fb = fig3::run(&b).unwrap();
    assert_ne!(fa.cdf_points, fb.cdf_points);
}
