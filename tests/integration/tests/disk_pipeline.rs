//! Disk-backed crawling: the full crawler writing to an on-disk store, a
//! resumable crawl surviving "process restarts", and analyses running over
//! the reopened files — the deployment shape of the paper's HDFS setup.

use crowdnet_crawl::bfs::{crawl_angellist_resumable, load_checkpoint, BfsConfig};
use crowdnet_crawl::{CrawlConfig, Crawler};
use crowdnet_socialsim::clock::SimClock;
use crowdnet_socialsim::sources::angellist::AngelListApi;
use crowdnet_socialsim::{Clock, World, WorldConfig};
use crowdnet_store::Store;
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("crowdnet-diskpipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_crawl_to_disk_and_reopen() {
    let root = temp_dir("full");
    let world = Arc::new(World::generate(&WorldConfig::tiny(42)));
    let companies;
    {
        let store = Store::open(&root, 4).unwrap();
        let crawler = Crawler::new(Arc::clone(&world), CrawlConfig::default());
        let stats = crawler.run(&store).unwrap();
        companies = stats.bfs.companies;
        assert!(companies > 0);
    }
    // "Restart": reopen the directory and verify contents are intact.
    let store = Store::open(&root, 4).unwrap();
    assert_eq!(store.doc_count("angellist/companies").unwrap(), companies);
    // Five core namespaces plus the syndicate directory when the world has
    // public syndicates.
    let stats = store.stats().unwrap();
    assert!(stats.len() >= 5 && stats.len() <= 6, "namespaces: {stats:?}");
    assert!(stats.iter().all(|s| s.encoded_bytes > 0));
}

#[test]
fn resumable_crawl_survives_process_restart() {
    let root = temp_dir("resume");
    let world = Arc::new(World::generate(&WorldConfig::tiny(7)));
    let clock: Arc<dyn Clock> = Arc::new(SimClock::new());

    // "Process 1": two rounds, then the process dies (store dropped).
    {
        let store = Store::open(&root, 4).unwrap();
        let api = AngelListApi::reliable(Arc::clone(&world));
        let partial = crawl_angellist_resumable(
            &api,
            &store,
            &clock,
            &BfsConfig {
                max_rounds: 2,
                ..BfsConfig::default()
            },
        )
        .unwrap();
        assert_eq!(partial.rounds, 2);
    }

    // "Process 2": reopen the same directory and finish the crawl.
    let store = Store::open(&root, 4).unwrap();
    let checkpoint = load_checkpoint(&store).unwrap().expect("checkpoint persisted");
    assert!(!checkpoint.complete);
    assert!(!checkpoint.frontier.is_empty());

    let api = AngelListApi::reliable(Arc::clone(&world));
    let finished =
        crawl_angellist_resumable(&api, &store, &clock, &BfsConfig::default()).unwrap();
    assert!(finished.companies > checkpoint.stats.companies);
    assert!(load_checkpoint(&store).unwrap().unwrap().complete);

    // Coverage equals a fresh single-shot crawl of the same world.
    let fresh_store = Store::memory(4);
    let fresh_api = AngelListApi::reliable(Arc::clone(&world));
    let fresh = crowdnet_crawl::bfs::crawl_angellist(
        &fresh_api,
        &fresh_store,
        &clock,
        &BfsConfig::default(),
    )
    .unwrap();
    assert_eq!(finished.companies, fresh.companies);
    assert_eq!(finished.users, fresh.users);
}
