//! Consolidated shape guard: one 1/64-scale pipeline run, every headline
//! qualitative claim of the paper checked against it. This is the test that
//! fails if a refactor silently breaks the reproduction.

use crowdnet_core::experiments::{
    communities, correlations, dataset_stats, fig3, fig4, fig5, fig6, investor_graph, predict,
};
use crowdnet_core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use std::sync::OnceLock;

fn outcome() -> &'static PipelineOutcome {
    static OUTCOME: OnceLock<PipelineOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| Pipeline::new(PipelineConfig::small(42)).run().expect("pipeline"))
}

#[test]
fn s3_dataset_proportions() {
    let r = dataset_stats::run(outcome()).unwrap();
    // Twitter > Facebook coverage; both a small share of companies.
    assert!(r.twitter > r.facebook);
    assert!((r.facebook as f64 / r.companies as f64 - 0.05).abs() < 0.02);
    assert!((r.twitter as f64 / r.companies as f64 - 0.095).abs() < 0.03);
    // Investors follow two orders of magnitude more than they invest.
    assert!(r.mean_investor_follows / r.mean_investments > 30.0);
}

#[test]
fn fig3_long_tail() {
    let r = fig3::run(outcome()).unwrap();
    assert_eq!(r.median, 1.0);
    assert!(r.mean > 2.0 && r.mean < 5.0);
    assert!(r.max / r.mean > 10.0, "tail too short: max {} mean {}", r.max, r.mean);
}

#[test]
fn fig6_engagement_ordering() {
    let r = fig6::run(outcome()).unwrap();
    let rate = |prefix: &str| {
        r.rows
            .iter()
            .find(|row| row.label.starts_with(prefix))
            .unwrap()
            .success_rate
    };
    let none = rate("No social media");
    let fb = rate("Facebook");
    let video = rate("Presence of demo video");
    let no_video = rate("No demo video");
    // The paper's two headline multipliers, as orderings with floors.
    assert!(r.facebook_lift > 8.0, "fb lift {}", r.facebook_lift);
    assert!(fb > none * 5.0);
    assert!(video > no_video * 3.0);
    // Engagement rows top their presence rows.
    let fb_high = r.rows.iter().find(|row| row.label.contains("likes)")).unwrap();
    assert!(fb_high.success_rate > fb);
}

#[test]
fn s51_concentration() {
    let (r, _) = investor_graph::run(outcome()).unwrap();
    assert!(r.mean_investors_per_company > 1.5 && r.mean_investors_per_company < 6.0);
    let k3 = &r.concentration[0];
    // A minority of investors holds a clear majority of edges.
    assert!(k3.investor_share < 0.4);
    assert!(k3.edge_share > 0.5);
}

#[test]
fn s52_to_fig5_herding() {
    let (c, ..) = communities::run(outcome()).unwrap();
    assert!(c.communities >= 4);
    let f4 = fig4::run(outcome()).unwrap();
    assert!(f4.strong[0].mean_shared > 1.0);
    assert!(f4.strong[0].mean_shared > 4.0 * f4.global_mean_shared.max(0.01));
    let f5 = fig5::run(outcome()).unwrap();
    assert!(f5.mean_pct > f5.randomized_mean_pct);
}

#[test]
fn s4_correlations_significant() {
    let r = correlations::run(outcome()).unwrap();
    let social = r
        .rows
        .iter()
        .find(|x| x.signal == "has_social_presence")
        .unwrap();
    assert!(social.pearson_r > 0.1);
    assert!(social.p_value < 0.05);
}

#[test]
fn s7_prediction_beats_chance() {
    let r = predict::run(outcome()).unwrap();
    assert!(r.auc_full > 0.7, "AUC {}", r.auc_full);
    // Engagement leads the selection path.
    let first = &r.selection_path.first().unwrap().0;
    assert!(
        first.contains("tw") || first.contains("fb") || first.contains("follower"),
        "unexpected first feature {first}"
    );
}
