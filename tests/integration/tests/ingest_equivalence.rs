//! Equivalence property for the ingest tier: artifacts maintained
//! incrementally by [`IngestEngine`] — catch-up scan plus changefeed
//! deltas, at any drain cadence and maintainer thread count — must match
//! a from-scratch [`Artifacts::build`] rebuild at the same store version.
//!
//! Equality is checked in *id space* (AngelList investor/company ids):
//! the incremental engine discovers nodes in event order while the
//! rebuild discovers them in canonical scan order, so dense indices may
//! differ while the graphs are the same. Edge sets, degree tables and
//! epoch stats must be exact; PageRank must agree within the combined
//! solver tolerance. Identical runs must also be byte-identical.

use crowdnet_dataflow::ExecCtx;
use crowdnet_graph::BipartiteGraph;
use crowdnet_ingest::{IngestConfig, IngestEngine};
use crowdnet_json::{obj, Value};
use crowdnet_serve::artifacts::{NS_COMPANIES, NS_USERS};
use crowdnet_serve::{Artifacts, ArtifactsConfig};
use crowdnet_store::{Document, Store};
use crowdnet_telemetry::Telemetry;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A non-graph namespace: only the stats maintainer watches it, and its
/// snapshot rotations exercise the per-snapshot accounting.
const NS_JOURNAL: &str = "journal/daily";

/// One random write against the store, spanning every event class the
/// engine routes: graph-bearing investor appends (including re-appends
/// that grow or shrink the listed portfolio), entity-only company
/// appends, stats-only journal appends, and snapshot rotations.
#[derive(Debug, Clone)]
enum Op {
    Company(u32),
    Investor { id: u32, portfolio: Vec<u32> },
    Journal(u32),
    JournalSnapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24).prop_map(Op::Company),
        ((100u32..116), proptest::collection::vec(0u32..24, 0..6))
            .prop_map(|(id, portfolio)| Op::Investor { id, portfolio }),
        (0u32..8).prop_map(Op::Journal),
        Just(Op::JournalSnapshot),
    ]
}

fn apply(store: &Store, op: &Op) {
    match op {
        Op::Company(id) => store
            .put(
                NS_COMPANIES,
                Document::new(
                    format!("company:{id}"),
                    obj! {"id" => u64::from(*id), "name" => format!("c{id}")},
                ),
            )
            .expect("put company"),
        Op::Investor { id, portfolio } => {
            let arr: Vec<Value> = portfolio
                .iter()
                .map(|&c| Value::from(u64::from(c)))
                .collect();
            store
                .put(
                    NS_USERS,
                    Document::new(
                        format!("user:{id}"),
                        obj! {
                            "id" => u64::from(*id),
                            "role" => "investor",
                            "investments" => Value::Arr(arr)
                        },
                    ),
                )
                .expect("put investor")
        }
        Op::Journal(day) => store
            .put(
                NS_JOURNAL,
                Document::new(
                    format!("day:{day}"),
                    obj! {"day" => u64::from(*day), "funded" => u64::from(*day % 3)},
                ),
            )
            .expect("put journal"),
        Op::JournalSnapshot => {
            store.new_snapshot(NS_JOURNAL).expect("rotate snapshot");
        }
    }
}

/// Drive a full incremental scenario: the first `split` ops land before
/// the engine exists (covered by its catch-up scan), the rest flow
/// through the changefeed with a drain every `drain_every` ops, and one
/// epoch is published at the end.
fn run_incremental(
    ops: &[Op],
    split: usize,
    drain_every: usize,
    threads: usize,
) -> (Arc<Store>, Arc<Artifacts>) {
    let store = Arc::new(Store::memory(2));
    let split = split.min(ops.len());
    for op in &ops[..split] {
        apply(&store, op);
    }
    let mut engine = IngestEngine::new(
        Arc::clone(&store),
        IngestConfig::default(),
        Telemetry::new(),
    )
    .expect("engine");
    for (i, op) in ops[split..].iter().enumerate() {
        apply(&store, op);
        if i % drain_every == drain_every - 1 {
            engine.drain_with_threads(threads).expect("drain");
        }
    }
    engine.drain_with_threads(threads).expect("final drain");
    let epoch = engine.publish(None);
    (store, epoch)
}

/// Adjacency in id space: investor id → set of company ids.
fn edges_by_id(g: &BipartiteGraph) -> BTreeMap<u32, BTreeSet<u32>> {
    (0..g.investor_count() as u32)
        .map(|i| {
            (
                g.investor_id(i),
                g.companies_of(i).iter().map(|&c| g.company_id(c)).collect(),
            )
        })
        .collect()
}

/// Investor degree table in id space.
fn degrees_by_id(g: &BipartiteGraph) -> BTreeMap<u32, u64> {
    let degrees = g.investor_degrees();
    (0..g.investor_count() as u32)
        .map(|i| (g.investor_id(i), degrees[i as usize]))
        .collect()
}

/// PageRank scores in id space.
fn ranks_by_id(g: &BipartiteGraph, ranks: &[f64]) -> BTreeMap<u32, f64> {
    (0..g.investor_count() as u32)
        .map(|i| (g.investor_id(i), ranks[i as usize]))
        .collect()
}

proptest! {
    // Scenarios are in-memory store writes, no pipeline: cases are cheap.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental == from-scratch at the same version, for any op mix,
    /// catch-up/feed split, drain cadence and thread count.
    #[test]
    fn incremental_artifacts_match_from_scratch_rebuild(
        ops in proptest::collection::vec(op_strategy(), 0..48),
        split in 0usize..48,
        drain_every in 1usize..6,
        threads in 1usize..5,
    ) {
        let (store, inc) = run_incremental(&ops, split, drain_every, threads);
        let rebuilt = Artifacts::build(
            &store,
            ExecCtx::new(2),
            &Telemetry::new(),
            &ArtifactsConfig::default(),
        )
        .expect("rebuild");

        // Both views are stamped with the live store version.
        prop_assert_eq!(inc.version, store.version());
        prop_assert_eq!(rebuilt.version, store.version());

        // Graph and cleaned graph agree edge-for-edge in id space.
        prop_assert_eq!(edges_by_id(&inc.graph), edges_by_id(&rebuilt.graph));
        prop_assert_eq!(edges_by_id(&inc.filtered), edges_by_id(&rebuilt.filtered));
        prop_assert_eq!(degrees_by_id(&inc.graph), degrees_by_id(&rebuilt.graph));

        // PageRank agrees per investor within the combined solver slack:
        // both sides settle residuals below 1e-9 of total mass, so 1e-6
        // on sum-1-normalized scores is generous yet still far below any
        // meaningful rank difference.
        let a = ranks_by_id(&inc.graph, &inc.pagerank);
        let b = ranks_by_id(&rebuilt.graph, &rebuilt.pagerank);
        prop_assert_eq!(a.len(), b.len());
        for (id, ra) in &a {
            let rb = b.get(id).copied();
            prop_assert!(rb.is_some(), "investor {} missing from rebuild", id);
            let rb = rb.unwrap();
            prop_assert!(
                (ra - rb).abs() <= 1e-6,
                "pagerank diverged for investor {}: {} vs {}", id, ra, rb
            );
        }

        // The published epoch freezes stats that reconcile exactly with
        // the store at that version (the rebuild reads stats live).
        let frozen = inc.stats.clone().expect("published epoch freezes stats");
        prop_assert_eq!(frozen, store.stats().expect("store stats"));
    }

    /// The same op sequence replayed — even at a different maintainer
    /// thread count — publishes a byte-identical epoch: graph layout,
    /// PageRank bit patterns and frozen stats all match exactly.
    #[test]
    fn identical_runs_publish_byte_identical_epochs(
        ops in proptest::collection::vec(op_strategy(), 0..32),
        split in 0usize..32,
        drain_every in 1usize..5,
    ) {
        let (_, a) = run_incremental(&ops, split, drain_every, 1);
        let (_, b) = run_incremental(&ops, split, drain_every, 2);
        prop_assert_eq!(a.version, b.version);
        prop_assert_eq!(edges_by_id(&a.graph), edges_by_id(&b.graph));
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&a.pagerank), bits(&b.pagerank));
        prop_assert_eq!(a.stats.clone(), b.stats.clone());
        prop_assert_eq!(a.communities.len(), b.communities.len());
    }
}
