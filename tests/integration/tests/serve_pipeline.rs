//! Serving tier end-to-end: a seeded pipeline feeds an in-process
//! [`Service`]; every endpoint answers, `/stats` reconciles exactly with
//! `Store::stats`, ad-hoc SQL matches `dataflow::sql::query` run directly,
//! and a second identical run produces byte-identical responses.

use crowdnet_core::pipeline::{Pipeline, PipelineConfig};
use crowdnet_dataflow::dataset::scan_store;
use crowdnet_dataflow::sql;
use crowdnet_json::Value;
use crowdnet_serve::{Request, Service, ServiceConfig};
use crowdnet_store::SnapshotId;
use crowdnet_telemetry::Telemetry;
use std::sync::Arc;

/// Seeded config at the default worker count: the store's canonical
/// per-partition key ordering at scan time makes document order (and
/// therefore every served byte) independent of crawl-thread interleaving.
fn seeded_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::tiny(7);
    cfg.crawl.fault_rate = 0.1;
    cfg.crawl.fault_seed = 5;
    cfg
}

fn seeded_service() -> Service {
    let outcome = Pipeline::new(seeded_config()).run().expect("pipeline");
    let mut cfg = ServiceConfig::default();
    cfg.artifacts.seed = 7;
    Service::new(Arc::new(outcome.store), cfg, Telemetry::new())
}

fn get(svc: &Service, target: &str) -> (u16, Value) {
    let resp = svc.handle(&Request::get(target));
    let body = std::str::from_utf8(&resp.body).expect("response is utf-8");
    (resp.status, Value::parse(body).expect("response is JSON"))
}

#[test]
fn every_endpoint_answers_200() {
    let svc = seeded_service();
    let targets = svc.example_targets().expect("targets");
    // The example surface covers every route in the endpoint table.
    for prefix in [
        "/healthz",
        "/stats",
        "/entity/",
        "/investor/",
        "/company/",
        "/communities",
        "/top/investors",
        "/sql",
    ] {
        assert!(
            targets.iter().any(|t| t.starts_with(prefix)),
            "no example target for {prefix}: {targets:?}"
        );
    }
    for target in targets {
        let (status, _) = get(&svc, &target);
        assert_eq!(status, 200, "endpoint {target} failed");
    }
}

#[test]
fn stats_reconciles_exactly_with_store_stats() {
    let svc = seeded_service();
    let (status, served) = get(&svc, "/stats");
    assert_eq!(status, 200);
    let direct = svc.store().stats().expect("store stats");
    let namespaces = served
        .get("namespaces")
        .and_then(Value::as_arr)
        .expect("namespaces array");
    assert_eq!(namespaces.len(), direct.len());
    for (s, d) in namespaces.iter().zip(&direct) {
        assert_eq!(
            s.get("namespace").and_then(Value::as_str),
            Some(d.namespace.as_str())
        );
        assert_eq!(
            s.get("documents").and_then(Value::as_u64),
            Some(d.documents as u64),
            "documents mismatch in {}",
            d.namespace
        );
        assert_eq!(
            s.get("encoded_bytes").and_then(Value::as_u64),
            Some(d.encoded_bytes as u64)
        );
        assert_eq!(
            s.get("snapshots").and_then(Value::as_u64),
            Some(d.snapshots as u64)
        );
    }
    assert_eq!(
        served.get("version").and_then(Value::as_u64),
        Some(svc.store().version())
    );
}

#[test]
fn sql_endpoint_matches_direct_dataflow_query() {
    let svc = seeded_service();
    let query_text = "SELECT role, COUNT(*) AS n FROM docs GROUP BY role ORDER BY n DESC";
    let encoded = "SELECT+role,+COUNT(*)+AS+n+FROM+docs+GROUP+BY+role+ORDER+BY+n+DESC";
    let (status, served) = get(
        &svc,
        &format!("/sql?ns=angellist%2Fusers&q={encoded}"),
    );
    assert_eq!(status, 200);

    let docs = scan_store(
        svc.store(),
        "angellist/users",
        SnapshotId(0),
        crowdnet_dataflow::ExecCtx::new(2),
    )
    .expect("scan");
    let direct = sql::query(query_text, docs.map(|d| d.body)).expect("direct query");

    let served_columns: Vec<&str> = served
        .get("columns")
        .and_then(Value::as_arr)
        .expect("columns")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(served_columns, direct.columns);
    let served_rows = served.get("rows").and_then(Value::as_arr).expect("rows");
    assert_eq!(served_rows.len(), direct.rows.len());
    for (s, d) in served_rows.iter().zip(&direct.rows) {
        assert_eq!(s.as_arr().expect("row is array"), d.as_slice());
    }
    assert_eq!(served.get("truncated"), Some(&Value::Bool(false)));
}

#[test]
fn graph_endpoints_reconcile_with_each_other() {
    let svc = seeded_service();
    let (_, top) = get(&svc, "/top/investors?by=degree&k=3");
    let investors = top.get("investors").and_then(Value::as_arr).expect("rows");
    assert!(!investors.is_empty());
    for row in investors {
        let id = row.get("id").and_then(Value::as_u64).expect("id");
        let degree = row.get("score").and_then(Value::as_u64).expect("score");
        let (status, portfolio) = get(&svc, &format!("/investor/{id}/portfolio"));
        assert_eq!(status, 200);
        assert_eq!(
            portfolio.get("degree").and_then(Value::as_u64),
            Some(degree),
            "top score and portfolio degree disagree for investor {id}"
        );
        // Entity lookup resolves the same investor.
        let (s2, entity) = get(&svc, &format!("/entity/user/{id}"));
        assert_eq!(s2, 200);
        assert_eq!(
            entity.get("body").and_then(|b| b.get("id")).and_then(Value::as_u64),
            Some(id)
        );
    }
}

#[test]
fn community_strength_metrics_are_served() {
    let svc = seeded_service();
    let (status, cover) = get(&svc, "/communities");
    assert_eq!(status, 200);
    let count = cover.get("count").and_then(Value::as_u64).expect("count");
    assert!(count > 0, "seeded world should detect communities");
    let list = cover
        .get("communities")
        .and_then(Value::as_arr)
        .expect("list");
    assert_eq!(list.len(), count as usize);
    // Detail endpoint agrees with the listing for each community.
    for summary in list {
        let id = summary.get("id").and_then(Value::as_u64).expect("id");
        let (s2, detail) = get(&svc, &format!("/communities/{id}"));
        assert_eq!(s2, 200);
        assert_eq!(detail.get("size"), summary.get("size"));
        assert_eq!(
            detail.get("avg_shared_investment"),
            summary.get("avg_shared_investment")
        );
        let members = detail.get("members").and_then(Value::as_arr).expect("members");
        assert_eq!(members.len() as u64, detail.get("size").and_then(Value::as_u64).expect("size"));
        // Every member's membership endpoint points back here.
        if let Some(first) = members.first().and_then(Value::as_u64) {
            let (_, membership) = get(&svc, &format!("/investor/{first}/communities"));
            let cids: Vec<u64> = membership
                .get("communities")
                .and_then(Value::as_arr)
                .expect("communities")
                .iter()
                .filter_map(Value::as_u64)
                .collect();
            assert!(cids.contains(&id));
        }
    }
}

/// Live-update scenario: an [`IngestEngine`] pins an epoch into the
/// service, a store append flows through the changefeed into a new epoch,
/// and every response after the swap reflects the new epoch — the result
/// cache never serves a stale body, and `/stats` reconciles exactly with
/// `Store::stats` frozen at the pinned epoch's version.
#[test]
fn live_append_swaps_epochs_without_serving_stale_responses() {
    use crowdnet_ingest::{IngestConfig, IngestEngine};
    use crowdnet_json::obj;
    use crowdnet_serve::artifacts::NS_USERS;
    use crowdnet_store::Document;

    let outcome = Pipeline::new(seeded_config()).run().expect("pipeline");
    let store = Arc::new(outcome.store);
    let mut cfg = ServiceConfig::default();
    cfg.artifacts.seed = 7;
    let svc = Service::new(Arc::clone(&store), cfg, Telemetry::new());
    let mut engine = IngestEngine::new(
        Arc::clone(&store),
        IngestConfig::default(),
        Telemetry::new(),
    )
    .expect("engine");
    let epoch0 = engine.publish(Some(&svc));

    // Pick a served investor and a company they have not invested in yet.
    let inv_idx = 0u32;
    let inv_id = epoch0.graph.investor_id(inv_idx);
    let held: Vec<u64> = epoch0.graph.companies_of(inv_idx)
        .iter()
        .map(|&c| u64::from(epoch0.graph.company_id(c)))
        .collect();
    let fresh_company = (0..epoch0.graph.company_count() as u32)
        .map(|c| u64::from(epoch0.graph.company_id(c)))
        .find(|cid| !held.contains(cid))
        .expect("an unheld company exists");

    // Warm the cache at epoch 0 and record the pre-append view.
    let (s0, stats0) = get(&svc, "/stats");
    assert_eq!(s0, 200);
    assert_eq!(
        stats0.get("version").and_then(Value::as_u64),
        Some(epoch0.version)
    );
    let (sp, portfolio0) = get(&svc, &format!("/investor/{inv_id}/portfolio"));
    assert_eq!(sp, 200);
    let degree0 = portfolio0.get("degree").and_then(Value::as_u64).expect("degree");
    assert_eq!(degree0, held.len() as u64);

    // Append the grown portfolio (full-array re-append; edges dedup).
    let grown: Vec<Value> = held
        .iter()
        .copied()
        .chain(std::iter::once(fresh_company))
        .map(Value::from)
        .collect();
    store
        .put(
            NS_USERS,
            Document::new(
                format!("user:{inv_id}"),
                obj! {
                    "id" => u64::from(inv_id),
                    "role" => "investor",
                    "investments" => Value::Arr(grown)
                },
            ),
        )
        .expect("append");
    let report = engine.drain().expect("drain");
    assert_eq!(report.docs, 1, "the append flows through the changefeed");
    let epoch1 = engine.publish(Some(&svc));
    assert!(epoch1.version > epoch0.version);
    assert_eq!(epoch1.version, store.version());
    let pinned = svc.pinned_artifacts().expect("service is pinned");
    assert!(Arc::ptr_eq(&pinned, &epoch1), "service serves the new epoch");

    // The cached pre-append portfolio must not be served: the response
    // now reflects the extra edge.
    let (sp2, portfolio1) = get(&svc, &format!("/investor/{inv_id}/portfolio"));
    assert_eq!(sp2, 200);
    assert_eq!(
        portfolio1.get("degree").and_then(Value::as_u64),
        Some(degree0 + 1),
        "stale cached portfolio served after epoch swap"
    );

    // `/stats` answers from the new epoch and reconciles exactly with
    // the store at that version.
    let (s1, stats1) = get(&svc, "/stats");
    assert_eq!(s1, 200);
    assert_ne!(stats0, stats1, "stale cached /stats served after epoch swap");
    assert_eq!(
        stats1.get("version").and_then(Value::as_u64),
        Some(epoch1.version)
    );
    let direct = store.stats().expect("store stats");
    let namespaces = stats1
        .get("namespaces")
        .and_then(Value::as_arr)
        .expect("namespaces array");
    assert_eq!(namespaces.len(), direct.len());
    for (s, d) in namespaces.iter().zip(&direct) {
        assert_eq!(
            s.get("namespace").and_then(Value::as_str),
            Some(d.namespace.as_str())
        );
        assert_eq!(
            s.get("documents").and_then(Value::as_u64),
            Some(d.documents as u64),
            "documents mismatch in {}",
            d.namespace
        );
        assert_eq!(
            s.get("encoded_bytes").and_then(Value::as_u64),
            Some(d.encoded_bytes as u64)
        );
        assert_eq!(
            s.get("snapshots").and_then(Value::as_u64),
            Some(d.snapshots as u64)
        );
    }
}

#[test]
fn second_identical_run_is_byte_identical() {
    let collect = || {
        let svc = seeded_service();
        let mut bytes: Vec<u8> = Vec::new();
        for target in svc.example_targets().expect("targets") {
            if target == "/healthz" {
                continue; // reports live cache occupancy, not corpus data
            }
            bytes.extend_from_slice(&svc.handle(&Request::get(&target)).body);
            bytes.push(b'\n');
        }
        bytes
    };
    assert_eq!(collect(), collect(), "served bytes differ across runs");
}
